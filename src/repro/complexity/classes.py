"""The complexity-class landscape of the paper.

Two structures are provided:

* the *machine* classes the SRL family is measured against (L, NL, P,
  PSPACE, PrimRec, ...), each knowing which language restriction captures it
  (Theorem 3.10, Theorem 4.13, Corollaries 4.2/4.4, Theorem 5.2);
* the *query* classes of Figure 1 — the polynomial-time query classes whose
  proper containments Section 7 discusses — as a small containment lattice
  with a witness attached to every edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.logic.eval import define_relation
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

__all__ = [
    "ComplexityClass",
    "LOGSPACE",
    "NLOGSPACE",
    "PTIME",
    "PSPACE",
    "PRIMREC",
    "MACHINE_CLASSES",
    "QueryClass",
    "Containment",
    "Figure1Lattice",
    "figure1_lattice",
]


@dataclass(frozen=True)
class ComplexityClass:
    """A machine-based complexity class and the SRL restriction capturing it."""

    name: str
    description: str
    captured_by: str
    paper_reference: str


LOGSPACE = ComplexityClass(
    name="L",
    description="deterministic logarithmic space",
    captured_by="BASRL (flat bounded-width accumulators); also SRFO+DTC",
    paper_reference="Theorem 4.13, Corollary 4.4",
)

NLOGSPACE = ComplexityClass(
    name="NL",
    description="nondeterministic logarithmic space",
    captured_by="SRFO+TC",
    paper_reference="Corollary 4.2",
)

PTIME = ComplexityClass(
    name="P",
    description="deterministic polynomial time",
    captured_by="SRL (set-height <= 1, bounded tuple width)",
    paper_reference="Theorem 3.10",
)

PSPACE = ComplexityClass(
    name="PSPACE",
    description="polynomial space",
    captured_by="(FO + while), not an SRL restriction studied here",
    paper_reference="Section 7, footnote 4",
)

PRIMREC = ComplexityClass(
    name="PrimRec",
    description="the primitive recursive functions",
    captured_by="unrestricted SRL + new (equivalently LRL, or SRL + cons)",
    paper_reference="Theorem 5.2, Corollary 5.5",
)

MACHINE_CLASSES: tuple[ComplexityClass, ...] = (
    LOGSPACE, NLOGSPACE, PTIME, PSPACE, PRIMREC,
)


@dataclass(frozen=True)
class QueryClass:
    """A node of Figure 1."""

    key: str
    name: str
    description: str


@dataclass(frozen=True)
class Containment:
    """An edge of Figure 1: ``lower`` is properly contained in ``upper``."""

    lower: str
    upper: str
    proper: bool
    witness: str
    evidence: str


@dataclass
class Figure1Lattice:
    """Figure 1: the polynomial-time query classes and their containments."""

    classes: dict[str, QueryClass] = field(default_factory=dict)
    containments: list[Containment] = field(default_factory=list)
    # (class count, containment count) -> closure; the lattice is append-only
    # through the two add_* methods, so the counts identify the state.
    _closure_cache: tuple[tuple[int, int], set[tuple[str, str]]] | None = \
        field(default=None, repr=False, compare=False)

    def add_class(self, query_class: QueryClass) -> None:
        self.classes[query_class.key] = query_class

    def add_containment(self, containment: Containment) -> None:
        if containment.lower not in self.classes or containment.upper not in self.classes:
            raise KeyError("both endpoints of a containment must be registered classes")
        self.containments.append(containment)

    def chain(self) -> list[QueryClass]:
        """The classes ordered from smallest to largest along the chain."""
        order = ["fo_lfp_unordered", "fo_lfp_count_unordered", "order_independent_p", "p"]
        return [self.classes[key] for key in order if key in self.classes]

    def containment_closure(self) -> set[tuple[str, str]]:
        """The reflexive-transitive containment relation over the recorded
        edges, computed (once per lattice state) through the logic layer's
        plan backend: the lattice is encoded as a finite structure (one
        universe element per class, ``E`` the recorded edges) and the
        Fact 4.1 TC formula is compiled and executed set-at-a-time."""
        state = (len(self.classes), len(self.containments))
        if self._closure_cache is not None and self._closure_cache[0] == state:
            return self._closure_cache[1]
        keys = list(self.classes)
        index = {key: position for position, key in enumerate(keys)}
        structure = Structure(
            Vocabulary.of(E=2), len(keys),
            {"E": frozenset((index[c.lower], index[c.upper])
                            for c in self.containments)},
        )
        query = CANONICAL_QUERIES["tc"]
        pairs = define_relation(query.formula(), structure, query.variables,
                                backend="plan")
        closure = {(keys[lower], keys[upper]) for lower, upper in pairs}
        self._closure_cache = (state, closure)
        return closure

    def is_contained(self, lower: str, upper: str) -> bool:
        """Reflexive-transitive containment along the recorded edges."""
        if lower == upper:
            return True
        return (lower, upper) in self.containment_closure()

    def edges(self) -> Iterator[Containment]:
        return iter(self.containments)


def figure1_lattice() -> Figure1Lattice:
    """The lattice of Figure 1 with the paper's witnesses attached."""
    lattice = Figure1Lattice()
    lattice.add_class(QueryClass(
        key="fo_lfp_unordered",
        name="(FO(wo<=) + LFP)",
        description="fixed-point logic without an order on the universe",
    ))
    lattice.add_class(QueryClass(
        key="fo_lfp_count_unordered",
        name="(FO(wo<=) + LFP + count)",
        description="fixed-point logic with counting quantifiers, no order",
    ))
    lattice.add_class(QueryClass(
        key="order_independent_p",
        name="order-independent P",
        description="polynomial-time queries whose answer never depends on the order",
    ))
    lattice.add_class(QueryClass(
        key="p",
        name="(FO + LFP) = P",
        description="fixed-point logic with an order — all polynomial-time queries",
    ))
    lattice.add_containment(Containment(
        lower="fo_lfp_unordered",
        upper="fo_lfp_count_unordered",
        proper=True,
        witness="EVEN",
        evidence="EVEN (parity of |universe|) needs counting: Fact 7.5; it is "
                 "expressible with a counting quantifier / proper hom (Prop. 7.6).",
    ))
    lattice.add_containment(Containment(
        lower="fo_lfp_count_unordered",
        upper="order_independent_p",
        proper=True,
        witness="CFI-style pairs",
        evidence="Cai-Furer-Immerman structures agree on bounded-variable counting "
                 "logic yet are separated by an order-independent P property "
                 "(Theorem 7.7).",
    ))
    lattice.add_containment(Containment(
        lower="order_independent_p",
        upper="p",
        proper=True,
        witness="Purple(First(S))",
        evidence="Any order-dependent query (the first element satisfies a "
                 "predicate) is in P with an order but is not order-independent.",
    ))
    return lattice
