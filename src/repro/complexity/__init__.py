"""The complexity-class landscape: Figure 1, the SRL_h hierarchy, and the
program classifier."""

from .classes import (
    Containment,
    ComplexityClass,
    Figure1Lattice,
    LOGSPACE,
    MACHINE_CLASSES,
    NLOGSPACE,
    PRIMREC,
    PSPACE,
    PTIME,
    QueryClass,
    figure1_lattice,
)
from .classify import Classification, classify_program
from .hierarchy import (
    HierarchyLevel,
    hierarchy_containments,
    hierarchy_level,
    iterated_powerset_size,
    level_contained_in,
    tower,
)

__all__ = [name for name in dir() if not name.startswith("_")]
