"""Corollary 6.4: the set-height hierarchy SRL_h = DTIME(2_h # n).

``2_h # n`` is a stack of ``h`` twos topped by ``n``::

    2_0 # n = n^{O(1)},   2_{h+1} # n = 2 ^ (2_h # n)

so SRL with set-height 1 is P, set-height 2 reaches exponential time
(Example 3.12's powerset), set-height 3 doubly exponential, and so on.
This module provides the tower function, the class descriptions, and the
expected output-size law the Corollary 6.4 benchmark checks (an iterated
powerset at height h has size 2_{h-1} # n for a base set of size n).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.eval import define_relation
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

__all__ = [
    "tower",
    "HierarchyLevel",
    "hierarchy_level",
    "hierarchy_containments",
    "level_contained_in",
    "iterated_powerset_size",
]


def tower(height: int, n: int) -> int:
    """``2_height # n``: a stack of ``height`` twos with ``n`` on top.

    ``tower(0, n) = n`` (up to the polynomial the paper absorbs into
    ``n^{O(1)}``); ``tower(h+1, n) = 2 ** tower(h, n)``.
    """
    if height < 0:
        raise ValueError("height must be non-negative")
    value = n
    for _ in range(height):
        value = 2 ** value
    return value


@dataclass(frozen=True)
class HierarchyLevel:
    """One level of the Corollary 6.4 hierarchy."""

    set_height: int
    time_class: str
    example: str


def hierarchy_level(set_height: int) -> HierarchyLevel:
    """The class captured by SRL with the given maximum set-height."""
    if set_height < 1:
        raise ValueError("the hierarchy starts at set-height 1")
    if set_height == 1:
        return HierarchyLevel(1, "DTIME(n^{O(1)}) = P", "AGAP (Lemma 3.6)")
    return HierarchyLevel(
        set_height,
        f"DTIME(2_{set_height - 1}#n)" + (" = EXPTIME" if set_height == 2 else ""),
        "iterated powerset" if set_height > 2 else "powerset (Example 3.12)",
    )


def hierarchy_containments(max_height: int) -> frozenset[tuple[int, int]]:
    """The containment relation ``{(h, h') | SRL_h ⊆ SRL_{h'}}`` up to
    ``max_height``.

    Corollary 6.4 gives the proper chain ``SRL_1 ⊊ SRL_2 ⊊ ...`` (each
    level adds one two to the tower), so the containments are the
    reflexive-transitive closure of the successor edges ``h -> h + 1`` —
    computed, like the Figure 1 lattice, through the logic layer's plan
    backend: the chain becomes a path-graph structure (level ``h`` is
    universe element ``h - 1``) and the Fact 4.1 TC formula runs
    set-at-a-time over it.
    """
    if max_height < 1:
        raise ValueError("the hierarchy starts at set-height 1")
    structure = Structure(
        Vocabulary.of(E=2), max_height,
        {"E": frozenset((h - 1, h) for h in range(1, max_height))},
    )
    query = CANONICAL_QUERIES["tc"]
    pairs = define_relation(query.formula(), structure, query.variables,
                            backend="plan")
    return frozenset((lower + 1, upper + 1) for lower, upper in pairs)


def level_contained_in(lower: int, upper: int) -> bool:
    """Whether ``SRL_lower ⊆ SRL_upper`` in the Corollary 6.4 hierarchy.

    Because the hierarchy is a total chain, membership in the closure
    reduces to ``lower <= upper`` — no need to materialize
    :func:`hierarchy_containments` (which exists for callers that want the
    relation itself).
    """
    if min(lower, upper) < 1:
        raise ValueError("the hierarchy starts at set-height 1")
    return lower <= upper


def iterated_powerset_size(iterations: int, base_size: int) -> int:
    """The cardinality of ``powerset^iterations({0..base_size-1})`` — the
    output-size law the set-height benchmark verifies (``iterations`` nested
    powersets need set-height ``iterations + 1``)."""
    size = base_size
    for _ in range(iterations):
        size = 2 ** size
    return size
