"""Mapping SRL programs to complexity classes (the Section 6 audit).

This is a thin bridge between :mod:`repro.core.analysis` /
:mod:`repro.core.restrictions` and the class descriptors of
:mod:`repro.complexity.classes`: given a program (and, optionally, its input
types), produce the machine class the syntax guarantees, together with the
evidence (the restriction that matched and the Proposition 6.1 bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core import Program
from repro.core.analysis import ProgramAnalysis, analyze
from repro.core.restrictions import BASRL, SRL, Restriction, strictest_restriction
from repro.core.types import Type

from .classes import ComplexityClass, LOGSPACE, PRIMREC, PTIME
from .hierarchy import HierarchyLevel, hierarchy_level

__all__ = ["Classification", "classify_program"]


@dataclass
class Classification:
    """The verdict of the syntactic audit."""

    machine_class: Optional[ComplexityClass]
    restriction: Restriction
    analysis: ProgramAnalysis
    hierarchy: Optional[HierarchyLevel] = None

    def summary(self) -> str:
        lines = [self.analysis.summary()]
        lines.append(f"strictest restriction = {self.restriction.name} "
                     f"({self.restriction.paper_reference})")
        if self.machine_class is not None:
            lines.append(f"machine class        = {self.machine_class.name}")
        if self.hierarchy is not None:
            lines.append(f"hierarchy level      = {self.hierarchy.time_class}")
        return "\n".join(lines)


def classify_program(program: Program,
                     input_types: Mapping[str, Type] | None = None) -> Classification:
    """Audit a program: which restriction it satisfies, which machine class
    that guarantees, and where it sits in the set-height hierarchy."""
    analysis = analyze(program, input_types=input_types)
    restriction = strictest_restriction(program, input_types)

    machine_class: Optional[ComplexityClass]
    hierarchy: Optional[HierarchyLevel] = None
    if restriction is BASRL:
        machine_class = LOGSPACE
    elif restriction is SRL:
        machine_class = PTIME
        hierarchy = hierarchy_level(max(analysis.set_height, 1))
    elif analysis.uses_new or analysis.uses_lists or analysis.has_set_of_naturals:
        # Invented values, lists or sets of naturals: all of PrimRec
        # (Theorem 5.2 / Corollary 5.5).
        machine_class = PRIMREC
    else:
        # No SRL-escaping operator, but a set-height above 1: the program
        # sits in the Corollary 6.4 hierarchy rather than a named machine
        # class.
        machine_class = None
    if analysis.set_height >= 2:
        hierarchy = hierarchy_level(analysis.set_height)
    return Classification(
        machine_class=machine_class,
        restriction=restriction,
        analysis=analysis,
        hierarchy=hierarchy,
    )
