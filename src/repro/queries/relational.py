"""A small relational workload (the database reading of Section 7).

The paper motivates order-independence with everyday database sets — e.g.
printing "a set of employees in order of their names, or date of hire".
This module provides a synthetic company database in the SRL encoding and a
handful of classical relational queries written against the public API
(selection, projection, join, universal quantification), all of them
order-independent, plus one deliberately order-*dependent* query ("the
employee that happens to come first in the arbitrary ordering") mirroring
the ``Purple(First(S))`` example.  They are used by the
``company_database.py`` example and the Section 7 tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import Atom, Database, Program, make_set, make_tuple, with_standard_library
from repro.core import builders as b
from repro.core.stdlib import forall_expr, join_expr, project_expr, select_expr

__all__ = [
    "CompanyData",
    "build_company_data",
    "company_database",
    "employees_in_department_program",
    "departments_fully_senior_program",
    "colleague_pairs_program",
    "first_employee_is_senior_program",
]


@dataclass
class CompanyData:
    """The plain-Python view of the synthetic company (for baselines)."""

    employees: list[tuple[int, int, int]]  # (employee, department, seniority level)
    departments: list[int]
    senior_level: int

    def employees_in(self, department: int) -> frozenset[int]:
        return frozenset(e for e, d, _ in self.employees if d == department)

    def fully_senior_departments(self) -> frozenset[int]:
        result = set()
        for department in self.departments:
            levels = [lvl for _, d, lvl in self.employees if d == department]
            if levels and all(level >= self.senior_level for level in levels):
                result.add(department)
        return frozenset(result)

    def colleague_pairs(self) -> frozenset[tuple[int, int]]:
        return frozenset(
            (e1, e2)
            for e1, d1, _ in self.employees
            for e2, d2, _ in self.employees
            if d1 == d2 and e1 != e2
        )


def build_company_data(num_employees: int = 12, num_departments: int = 3,
                       senior_level: int = 2, levels: int = 3,
                       seed: int = 0) -> CompanyData:
    """A deterministic synthetic company."""
    rng = random.Random(seed)
    departments = list(range(num_departments))
    employees = []
    for employee in range(num_employees):
        employees.append((
            num_departments + levels + employee,     # employee ids after the small codes
            rng.randrange(num_departments),
            rng.randrange(levels),
        ))
    return CompanyData(employees=employees, departments=departments,
                       senior_level=senior_level)


def company_database(data: CompanyData) -> Database:
    """The SRL encoding: ``EMP`` is a set of ``[employee, department, level]``
    tuples, ``DEPTS`` the departments, ``SENIOR`` the senior threshold."""
    return Database({
        "EMP": make_set(*(
            make_tuple(Atom(e), Atom(d), Atom(level)) for e, d, level in data.employees
        )),
        "DEPTS": make_set(*(Atom(d) for d in data.departments)),
        "SENIOR": Atom(data.senior_level),
    })


def employees_in_department_program(department: int) -> Program:
    """Selection + projection: the employees of one department."""
    program = with_standard_library(Program())
    selected = select_expr(
        b.var("EMP"), lambda row, _e: b.eq(b.sel(2, row), b.atom(department))
    )
    program.main = project_expr(selected, [1])
    return program


def departments_fully_senior_program() -> Program:
    """Universal quantification: departments all of whose employees are at or
    above the SENIOR level (departments with no employees do not qualify —
    the emptiness guard is the inner ``forsome``)."""
    program = with_standard_library(Program())

    def staffed(dept, _extra):
        return b.call(
            "member", dept,
            project_expr(b.var("EMP"), [2]),
        )

    def all_senior(dept, _extra):
        return forall_expr(
            b.var("EMP"),
            lambda row, dd: b.or_(
                b.not_(b.eq(b.sel(2, row), dd)),
                b.leq(b.var("SENIOR"), b.sel(3, row)),
            ),
            extra=dept,
        )

    program.main = select_expr(
        b.var("DEPTS"),
        lambda dept, _e: b.and_(staffed(dept, _e), all_senior(dept, _e)),
    )
    return program


def colleague_pairs_program() -> Program:
    """Join: ordered pairs of distinct employees sharing a department."""
    program = with_standard_library(Program())
    program.main = join_expr(
        b.var("EMP"), b.var("EMP"),
        condition=lambda r1, r2: b.and_(
            b.eq(b.sel(2, r1), b.sel(2, r2)),
            b.not_(b.eq(b.sel(1, r1), b.sel(1, r2))),
        ),
        output=lambda r1, r2: b.tup(b.sel(1, r1), b.sel(1, r2)),
    )
    return program


def first_employee_is_senior_program() -> Program:
    """The order-dependent query of Section 7 (``Purple(First(S))``): is the
    employee that happens to come *first in the implementation order* at or
    above the senior level?  Used to demonstrate the order-dependence
    detector."""
    program = with_standard_library(Program())
    program.main = b.leq(b.var("SENIOR"), b.sel(3, b.choose(b.var("EMP"))))
    return program
