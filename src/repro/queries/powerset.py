"""Example 3.12 and the Section 3 remarks: escaping polynomial time.

Two programs witness what happens when SRL's restrictions are lifted:

* :func:`powerset_program` — the paper's Example 3.12: with set-height 2 the
  ``powerset`` function constructs a set of size ``2^|S|``, so no polynomial
  bound on the output (or running time) can hold;
* :func:`doubling_list_program` — the LRL remark: with lists (order and
  multiplicity preserved), repeatedly appending a list to itself produces a
  list of length ``2^|S|`` — the function
  ``F((1, 2, ..., n)) = (1, 1, ..., 1)`` (``2^n`` ones) that shows
  ℱ(LRL) ⊄ FP.

Both come with Python baselines and database builders.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable

from repro.core import Atom, Database, Program, make_set, with_standard_library
from repro.core import builders as b

__all__ = [
    "powerset_baseline",
    "powerset_program",
    "powerset_database",
    "doubling_list_program",
]


def powerset_baseline(elements: Iterable[int]) -> frozenset[frozenset[int]]:
    """All subsets of the given elements."""
    items = list(elements)
    return frozenset(
        frozenset(subset)
        for subset in chain.from_iterable(combinations(items, r) for r in range(len(items) + 1))
    )


def powerset_database(size: int) -> Database:
    """``S = {0, ..., size-1}`` as atoms."""
    return Database({"S": make_set(*(Atom(i) for i in range(size)))})


def _finsert_definition():
    """``finsert([y, x], T) = T ∪ {y} ∪ {y ∪ {x}}`` — the paper's finsert,
    phrased on the pair produced by sift's app."""
    pair = b.var("p")
    subset = b.sel(1, pair)
    element = b.sel(2, pair)
    body = b.insert(subset, b.insert(b.insert(element, subset), b.var("T")))
    return b.define("finsert", ["p", "T"], body)


def _sift_definition():
    """``sift(x, T)``: for every subset ``y`` already in ``T``, keep ``y``
    and add ``y ∪ {x}`` (Example 3.12)."""
    body = b.set_reduce(
        b.var("T"),
        b.lam("y", "x", b.tup(b.var("y"), b.var("x"))),
        b.lam("a", "r", b.call("finsert", b.var("a"), b.var("r"))),
        b.emptyset(),
        b.var("x"),
    )
    return b.define("sift", ["x", "T"], body)


def _powerset_definition():
    """``powerset(S) = set-reduce(S, identity, sift, {{}})``."""
    body = b.set_reduce(
        b.var("S"),
        b.lam("x", "e", b.var("x")),
        b.lam("a", "T", b.call("sift", b.var("a"), b.var("T"))),
        b.insert(b.emptyset(), b.emptyset()),
        b.emptyset(),
    )
    return b.define("powerset", ["S"], body)


def powerset_program() -> Program:
    """Example 3.12: ``powerset(S)`` (a set-height-2 program)."""
    program = Program()
    for definition in (_finsert_definition(), _sift_definition(), _powerset_definition()):
        program.define(definition)
    program.main = b.call("powerset", b.var("S"))
    return with_standard_library(program)


def _append_list_definition():
    """``append-list(A, B)``: list concatenation via list-reduce."""
    body = b.list_reduce(
        b.var("A"),
        b.lam("x", "e", b.var("x")),
        b.lam("a", "r", b.cons(b.var("a"), b.var("r"))),
        b.var("B"),
        b.emptylist(),
    )
    return b.define("append-list", ["A", "B"], body)


def _double_definition():
    return b.define("double", ["L"], b.call("append-list", b.var("L"), b.var("L")))


def doubling_list_program() -> Program:
    """The LRL remark after Theorem 3.10: starting from a one-element list
    and doubling once per element of ``S`` yields a list of length
    ``2^|S|`` — an output no polynomial-time function can produce."""
    program = Program()
    program.define(_append_list_definition())
    program.define(_double_definition())
    program.main = b.set_reduce(
        b.var("S"),
        b.lam("x", "e", b.var("x")),
        b.lam("a", "L", b.call("double", b.var("L"))),
        b.cons(b.atom(0), b.emptylist()),
        b.emptyset(),
    )
    return with_standard_library(program)
