"""Definition 4.8 / Lemma 4.10: iterated permutation multiplication in BASRL.

``IM_Sn``: given permutations ``pi_1, ..., pi_m`` of ``[degree]``, decide
whether their composition maps ``i`` to ``j``.  The problem is complete for
L under first-order reductions with BIT (Fact 4.9), and Lemma 4.10 expresses
it in BASRL: scan the input tuples ``[perm-index, [from, to]]`` in ascending
order, tracking only the flat pair ``[which permutation applies next,
current value]`` — a bounded-width accumulator.

The input encoding follows the paper: each permutation is a set of nested
pairs ``[i, [j, k]]`` meaning "the i-th permutation maps j to k" (so the
input has set-height 1 with width-2 tuples, nesting 2).
"""

from __future__ import annotations

from typing import Sequence

from repro.core import Atom, Database, Program, Session, make_set, make_tuple
from repro.core import builders as b

from .arithmetic_basrl import arithmetic_program, rank_of

__all__ = [
    "compose_permutations_baseline",
    "im_baseline",
    "im_database",
    "ip_program",
    "im_program",
    "run_iterated_product",
]


def compose_permutations_baseline(perms: Sequence[Sequence[int]]) -> list[int]:
    """The iterated product ``pi_1 * pi_2 * ... * pi_m`` where
    ``(pi * sigma)(i) = sigma(pi(i))`` (Definition 4.8)."""
    if not perms:
        raise ValueError("need at least one permutation")
    degree = len(perms[0])
    result = list(range(degree))
    for pi in perms:
        result = [pi[value] for value in result]
    return result


def im_baseline(perms: Sequence[Sequence[int]], i: int, j: int) -> bool:
    """Does the iterated product map ``i`` to ``j``?"""
    return compose_permutations_baseline(perms)[i] == j


def im_database(perms: Sequence[Sequence[int]], i: int | None = None) -> Database:
    """The paper's encoding: ``PERMS`` is the set of ``[index, [from, to]]``
    tuples; ``D`` is a domain large enough for both the permutation indices
    (plus one, so the "next permutation" counter never saturates) and the
    permuted elements; ``START`` is the element the product is applied to."""
    count = len(perms)
    degree = len(perms[0]) if perms else 0
    domain_size = max(count + 1, degree, 1)
    rows = []
    for index, pi in enumerate(perms):
        for source, target in enumerate(pi):
            rows.append(make_tuple(Atom(index), make_tuple(Atom(source), Atom(target))))
    database = Database({
        "D": make_set(*(Atom(v) for v in range(domain_size))),
        "ZERO": Atom(0),
        "PERMS": make_set(*rows),
        "START": Atom(i if i is not None else 0),
    })
    return database


def _ip_definition():
    """``ip(i)``: the Lemma 4.10 scan.  The accumulator is the flat pair
    ``[next permutation index, current value]``; a tuple ``x = [index,
    [from, to]]`` fires exactly when it belongs to the permutation we are
    currently applying and its ``from`` equals the current value."""
    body = b.set_reduce(
        b.var("PERMS"),
        b.lam("x", "e", b.var("x")),
        b.lam(
            "x", "p",
            b.if_(
                b.and_(
                    b.eq(b.sel(1, b.var("x")), b.sel(1, b.var("p"))),
                    b.eq(b.sel(1, b.sel(2, b.var("x"))), b.sel(2, b.var("p"))),
                ),
                b.tup(
                    b.call("increment", b.sel(1, b.var("p"))),
                    b.sel(2, b.sel(2, b.var("x"))),
                ),
                b.var("p"),
            ),
        ),
        b.tup(b.var("ZERO"), b.var("i")),
        b.emptyset(),
    )
    return b.define("ip", ["i"], body)


def ip_program() -> Program:
    """A program whose ``ip`` definition computes ``[m, product(i)]`` — the
    iterated product applied to ``i`` (the first component just records that
    all ``m`` permutations were consumed)."""
    program = arithmetic_program()
    program.define(_ip_definition())
    return program


def im_program() -> Program:
    """The IM_Sn decision program: does the iterated product map ``START``
    to ``TARGET``?"""
    program = ip_program()
    program.main = b.eq(b.sel(2, b.call("ip", b.var("START"))), b.var("TARGET"))
    return program


def run_iterated_product(perms: Sequence[Sequence[int]], i: int) -> int:
    """Evaluate the BASRL program and return where the product sends ``i``."""
    session = Session(ip_program())
    result = session.call("ip", Atom(i), database=im_database(perms, i))
    return rank_of(result[1])  # type: ignore[index]
