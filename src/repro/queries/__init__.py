"""The paper's concrete programs and problems, with direct Python baselines.

* :mod:`repro.queries.agap` — alternating reachability (Definition 3.4,
  Lemma 3.6), the P-completeness witness of Theorem 3.10;
* :mod:`repro.queries.transitive_closure` — TC and DTC in SRL (Section 4);
* :mod:`repro.queries.arithmetic_basrl` — Proposition 4.5 / Lemma 4.6
  arithmetic in BASRL;
* :mod:`repro.queries.permutations` — iterated permutation multiplication
  IM_Sn (Definition 4.8, Lemma 4.10);
* :mod:`repro.queries.powerset` — Example 3.12's set-height-2 powerset and
  the LRL doubling list;
* :mod:`repro.queries.counting` — EVEN and cardinality parity (Section 7);
* :mod:`repro.queries.relational` — a company-database workload exercising
  the Fact 2.4 relational operators.
"""

from .agap import (
    agap_baseline,
    agap_database,
    agap_plan,
    agap_program,
    apath_baseline,
    apath_plan,
    apath_program,
)
from .arithmetic_basrl import (
    arithmetic_database,
    arithmetic_program,
    evaluate_arithmetic,
    rank_of,
)
from .counting import (
    cardinality_parity_program,
    even_baseline,
    even_database,
    even_program,
    even_via_counting,
)
from .permutations import (
    compose_permutations_baseline,
    im_baseline,
    im_database,
    im_program,
    ip_program,
    run_iterated_product,
)
from .powerset import (
    doubling_list_program,
    powerset_baseline,
    powerset_database,
    powerset_program,
)
from .relational import (
    CompanyData,
    build_company_data,
    colleague_pairs_program,
    company_database,
    departments_fully_senior_program,
    employees_in_department_program,
    first_employee_is_senior_program,
)
from .transitive_closure import (
    deterministic_reachability_program,
    deterministic_reachable_baseline,
    dtc_program,
    graph_database,
    reachability_program,
    reachable_baseline,
    tc_program,
    transitive_closure_baseline,
    transitive_closure_plan,
)

__all__ = [name for name in dir() if not name.startswith("_")]
