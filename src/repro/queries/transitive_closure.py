"""Section 4: transitive closure and deterministic transitive closure in SRL.

Corollary 4.2 characterises NL as SRFO + TC and Corollary 4.4 characterises
L as SRFO + DTC; the TC and DTC operators themselves are computed in SRL by
iterating a composition step |D| times, which is what the programs below do
(the ``bothsides``/``add`` construction of Section 4, phrased with the
Fact 2.4 relational operators).

Provided here:

* Python baselines (:func:`reachable_baseline`,
  :func:`deterministic_reachable_baseline`, :func:`transitive_closure_baseline`);
* SRL programs (:func:`tc_program`, :func:`dtc_program`,
  :func:`reachability_program`, :func:`deterministic_reachability_program`);
* the database encoding (:func:`graph_database`).
"""

from __future__ import annotations

from repro.core import Atom, Database, Program, make_set, make_tuple, with_standard_library
from repro.core import builders as b
from repro.core.engine import transitive_closure
from repro.core.stdlib import forall_expr, join_expr, select_expr
from repro.structures.structure import Structure

__all__ = [
    "reachable_baseline",
    "deterministic_reachable_baseline",
    "transitive_closure_baseline",
    "transitive_closure_plan",
    "graph_database",
    "tc_program",
    "dtc_program",
    "reachability_program",
    "deterministic_reachability_program",
]


# ---------------------------------------------------------------- baselines


def transitive_closure_baseline(structure: Structure,
                                deterministic: bool = False,
                                seminaive: bool = True) -> frozenset[tuple[int, int]]:
    """The reflexive transitive closure of the edge relation (restricted to
    out-degree-one vertices when ``deterministic``), via the engine's
    shared closure kernel (``seminaive=False`` for the naive oracle)."""
    successors: dict[int, list[int]] = {v: [] for v in structure.universe}
    for u, v in structure.relation("E"):
        successors[u].append(v)
    return frozenset(transitive_closure(successors, deterministic=deterministic,
                                        seminaive=seminaive))


def transitive_closure_plan(structure: Structure,
                            deterministic: bool = False
                            ) -> frozenset[tuple[int, int]]:
    """The same closure through the logic layer's plan backend: the TC/DTC
    *formula* (Facts 4.1 / 4.3) compiled to a relational plan — edge scan,
    closure node over the semi-naive kernel — instead of this module's
    hand-built successor map.  Observationally identical to
    :func:`transitive_closure_baseline`."""
    from repro.logic.eval import define_relation
    from repro.logic.queries import CANONICAL_QUERIES
    query = CANONICAL_QUERIES["dtc" if deterministic else "tc"]
    return define_relation(query.formula(), structure, query.variables,
                           backend="plan")


def reachable_baseline(structure: Structure, source: int | None = None,
                       target: int | None = None) -> bool:
    source = 0 if source is None else source
    target = structure.size - 1 if target is None else target
    return (source, target) in transitive_closure_baseline(structure)


def deterministic_reachable_baseline(structure: Structure, source: int | None = None,
                                     target: int | None = None) -> bool:
    source = 0 if source is None else source
    target = structure.size - 1 if target is None else target
    return (source, target) in transitive_closure_baseline(structure, deterministic=True)


# ------------------------------------------------------------ SRL programs


def graph_database(structure: Structure, source: int | None = None,
                   target: int | None = None) -> Database:
    """``NODES``, ``EDGES`` plus the two reachability endpoints."""
    source = 0 if source is None else source
    target = structure.size - 1 if target is None else target
    return Database({
        "NODES": make_set(*(Atom(v) for v in structure.universe)),
        "EDGES": make_set(*(make_tuple(Atom(u), Atom(v)) for u, v in structure.relation("E"))),
        "SOURCE": Atom(source),
        "TARGET": Atom(target),
    })


def _compose_definition():
    """``compose(R, S) = { [x, z] | [x, y] in R, [y, z] in S }``."""
    body = join_expr(
        b.var("R"), b.var("S"),
        condition=lambda t1, t2: b.eq(b.sel(2, t1), b.sel(1, t2)),
        output=lambda t1, t2: b.tup(b.sel(1, t1), b.sel(2, t2)),
    )
    return b.define("compose", ["R", "S"], body)


def _identity_pairs_definition():
    """``identity-pairs() = { [x, x] | x in NODES }``."""
    body = b.set_reduce(
        b.var("NODES"),
        b.lam("x", "e", b.tup(b.var("x"), b.var("x"))),
        b.lam("a", "r", b.insert(b.var("a"), b.var("r"))),
        b.emptyset(),
        b.emptyset(),
    )
    return b.define("identity-pairs", [], body)


def _tc_step_definition():
    """``tc-step(R) = R ∪ compose(R, EDGES)`` — Section 4's ``add`` step."""
    return b.define(
        "tc-step", ["R"],
        b.call("union", b.var("R"), b.call("compose", b.var("R"), b.var("EDGES"))),
    )


def _tc_definition():
    """``tc()``: the reflexive transitive closure of ``EDGES``, by iterating
    the step |NODES| times from the identity relation."""
    body = b.set_reduce(
        b.var("NODES"),
        b.lam("d", "e", b.var("d")),
        b.lam("a", "R", b.call("tc-step", b.var("R"))),
        b.call("union", b.call("identity-pairs"), b.var("EDGES")),
        b.emptyset(),
    )
    return b.define("tc", [], body)


def _det_edges_definition():
    """``det-edges()``: the edges ``[x, y]`` such that ``y`` is the *unique*
    successor of ``x`` (the ``phi_d`` of the DTC definition)."""
    body = select_expr(
        b.var("EDGES"),
        lambda p, _extra: forall_expr(
            b.var("EDGES"),
            lambda q, pp: b.or_(
                b.not_(b.eq(b.sel(1, q), b.sel(1, pp))),
                b.eq(b.sel(2, q), b.sel(2, pp)),
            ),
            extra=p,
        ),
    )
    return b.define("det-edges", [], body)


def _dtc_step_definition():
    return b.define(
        "dtc-step", ["R"],
        b.call("union", b.var("R"), b.call("compose", b.var("R"), b.call("det-edges"))),
    )


def _dtc_definition():
    body = b.set_reduce(
        b.var("NODES"),
        b.lam("d", "e", b.var("d")),
        b.lam("a", "R", b.call("dtc-step", b.var("R"))),
        b.call("union", b.call("identity-pairs"), b.call("det-edges")),
        b.emptyset(),
    )
    return b.define("dtc", [], body)


def tc_program() -> Program:
    """A program whose ``tc`` definition computes the reflexive transitive
    closure of ``EDGES``."""
    program = Program()
    for definition in (_compose_definition(), _identity_pairs_definition(),
                       _tc_step_definition(), _tc_definition()):
        program.define(definition)
    return with_standard_library(program)


def dtc_program() -> Program:
    """Like :func:`tc_program` but for the deterministic closure."""
    program = Program()
    for definition in (_compose_definition(), _identity_pairs_definition(),
                       _det_edges_definition(), _dtc_step_definition(), _dtc_definition()):
        program.define(definition)
    return with_standard_library(program)


def reachability_program() -> Program:
    """GAP: is ``[SOURCE, TARGET]`` in the transitive closure?"""
    program = tc_program()
    program.main = b.call("member", b.tup(b.var("SOURCE"), b.var("TARGET")), b.call("tc"))
    return program


def deterministic_reachability_program() -> Program:
    """Deterministic GAP: reachability along out-degree-one vertices only."""
    program = dtc_program()
    program.main = b.call("member", b.tup(b.var("SOURCE"), b.var("TARGET")), b.call("dtc"))
    return program
