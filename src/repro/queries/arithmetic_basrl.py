"""Proposition 4.5 and Lemma 4.6: arithmetic in BASRL.

The paper treats the elements of the ordered domain ``D`` as numbers (an
element's value is its rank in the implementation order) and shows that
increment, decrement, addition, multiplication, exponentiation, halving
(SHIFT), PARITY, REM and BIT are all expressible with *flat bounded-width
tuple accumulators* — i.e. inside BASRL, hence in logspace.

Every definition below is such a program: the only sets ever traversed are
the input domain ``D``; the accumulators are tuples of booleans and atoms.
Arithmetic saturates at the ends of the domain (``increment`` of the last
element stays put, ``decrement`` of the first stays put), exactly as in the
paper's treatment of the boundary cases.

The programs expect two database bindings:

* ``D``    — the domain, a set of atoms;
* ``ZERO`` — the first element of the domain (the paper's ``0``; it is
  first-order definable, but passing it as a constant keeps the programs
  readable).

Use :func:`arithmetic_database` to build them and :func:`arithmetic_program`
to get a program containing all the definitions (plus the standard library).
"""

from __future__ import annotations

from repro.core import Atom, Database, Program, Session, make_set, with_standard_library
from repro.core import builders as b
from repro.core.values import SRLTuple, Value

__all__ = [
    "arithmetic_program",
    "arithmetic_database",
    "rank_of",
    "evaluate_arithmetic",
]


def _increment_definition():
    """``increment(a)``: the successor of ``a`` in ``D`` (clamped at the
    maximum) — the Proposition 4.5 scan with a [found, captured, result]
    accumulator."""
    accumulator = b.lam(
        "x", "r",
        b.if_(
            b.and_(b.sel(1, b.var("r")), b.not_(b.sel(2, b.var("r")))),
            b.tup(b.true(), b.true(), b.sel(1, b.var("x"))),
            b.if_(
                b.eq(b.sel(1, b.var("x")), b.sel(2, b.var("x"))),
                b.tup(b.true(), b.sel(2, b.var("r")), b.sel(3, b.var("r"))),
                b.var("r"),
            ),
        ),
    )
    scan = b.set_reduce(
        b.var("D"),
        b.lam("d", "aa", b.tup(b.var("d"), b.var("aa"))),
        accumulator,
        b.tup(b.false(), b.false(), b.var("a")),
        b.var("a"),
    )
    return b.define("increment", ["a"], b.sel(3, scan))


def _decrement_definition():
    """``decrement(a)``: the predecessor of ``a`` in ``D`` (clamped at the
    minimum), tracking the previously scanned element."""
    accumulator = b.lam(
        "x", "r",
        b.if_(
            b.sel(1, b.var("r")),
            b.var("r"),
            b.if_(
                b.eq(b.sel(1, b.var("x")), b.sel(2, b.var("x"))),
                b.tup(
                    b.true(),
                    b.sel(2, b.var("r")),
                    b.sel(3, b.var("r")),
                    b.if_(b.sel(2, b.var("r")), b.sel(3, b.var("r")), b.sel(2, b.var("x"))),
                ),
                b.tup(b.false(), b.true(), b.sel(1, b.var("x")), b.sel(4, b.var("r"))),
            ),
        ),
    )
    scan = b.set_reduce(
        b.var("D"),
        b.lam("d", "aa", b.tup(b.var("d"), b.var("aa"))),
        accumulator,
        b.tup(b.false(), b.false(), b.var("a"), b.var("a")),
        b.var("a"),
    )
    return b.define("decrement", ["a"], b.sel(4, scan))


def _add_definition():
    """``add(a, bb) = a + bb`` (saturating): repeatedly increment the first
    component and decrement the second until the counter reaches ZERO —
    the accumulator is the flat pair ``[partial sum, counter]``."""
    accumulator = b.lam(
        "p", "r",
        b.if_(
            b.eq(b.sel(2, b.var("r")), b.var("ZERO")),
            b.var("r"),
            b.tup(
                b.call("increment", b.sel(1, b.var("r"))),
                b.call("decrement", b.sel(2, b.var("r"))),
            ),
        ),
    )
    scan = b.set_reduce(
        b.var("D"),
        b.lam("d", "e", b.var("d")),
        accumulator,
        b.tup(b.var("a"), b.var("bb")),
        b.emptyset(),
    )
    return b.define("add", ["a", "bb"], b.sel(1, scan))


def _mult_definition():
    """``mult(a, bb) = a * bb`` (saturating): ``bb`` repeated additions of
    ``a``, with ``a`` threaded through ``extra`` as in the paper's MULT."""
    accumulator = b.lam(
        "p", "r",
        b.if_(
            b.eq(b.sel(2, b.var("r")), b.var("ZERO")),
            b.var("r"),
            b.tup(
                b.call("add", b.sel(1, b.var("r")), b.var("p")),
                b.call("decrement", b.sel(2, b.var("r"))),
            ),
        ),
    )
    scan = b.set_reduce(
        b.var("D"),
        b.lam("s", "aa", b.var("aa")),
        accumulator,
        b.tup(b.var("ZERO"), b.var("bb")),
        b.var("a"),
    )
    return b.define("mult", ["a", "bb"], b.sel(1, scan))


def _expn_definition():
    """``expn(a, bb) = a ** bb`` (saturating): ``bb`` repeated
    multiplications, as in the paper's EXP."""
    accumulator = b.lam(
        "p", "r",
        b.if_(
            b.eq(b.sel(2, b.var("r")), b.var("ZERO")),
            b.var("r"),
            b.tup(
                b.call("mult", b.sel(1, b.var("r")), b.var("p")),
                b.call("decrement", b.sel(2, b.var("r"))),
            ),
        ),
    )
    scan = b.set_reduce(
        b.var("D"),
        b.lam("s", "aa", b.var("aa")),
        accumulator,
        b.tup(b.call("increment", b.var("ZERO")), b.var("bb")),
        b.var("a"),
    )
    return b.define("expn", ["a", "bb"], b.sel(1, scan))


def _shift_scan_definition():
    """``shift-scan(a)``: the Lemma 4.6 SHIFT scan, returning the triple
    ``[found, a div 2, a mod 2 = 1]`` — the first ``d`` with ``d + d = a`` or
    ``d + d + 1 = a`` wins (the ``found`` flag stops later, saturated matches
    from overwriting it)."""
    double = b.call("add", b.sel(1, b.var("p")), b.sel(1, b.var("p")))
    accumulator = b.lam(
        "p", "r",
        b.if_(
            b.and_(b.not_(b.sel(1, b.var("r"))), b.eq(double, b.sel(2, b.var("p")))),
            b.tup(b.true(), b.sel(1, b.var("p")), b.false()),
            b.if_(
                b.and_(
                    b.not_(b.sel(1, b.var("r"))),
                    b.eq(b.call("increment", double), b.sel(2, b.var("p"))),
                ),
                b.tup(b.true(), b.sel(1, b.var("p")), b.true()),
                b.var("r"),
            ),
        ),
    )
    scan = b.set_reduce(
        b.var("D"),
        b.lam("d", "aa", b.tup(b.var("d"), b.var("aa"))),
        accumulator,
        b.tup(b.false(), b.var("ZERO"), b.false()),
        b.var("a"),
    )
    return b.define("shift-scan", ["a"], scan)


def _shift_definition():
    return b.define("shift", ["a"], b.sel(2, b.call("shift-scan", b.var("a"))))


def _parity_definition():
    """``parity(a)``: true iff ``a`` is odd (Lemma 4.6's PARITY)."""
    return b.define("parity", ["a"], b.sel(3, b.call("shift-scan", b.var("a"))))


def _rem_definition():
    """``rem(i, a) = a div 2**i`` — ``i`` repeated halvings (the paper's
    REM)."""
    accumulator = b.lam(
        "p", "r",
        b.if_(
            b.eq(b.sel(1, b.var("r")), b.var("ZERO")),
            b.var("r"),
            b.tup(
                b.call("decrement", b.sel(1, b.var("r"))),
                b.call("shift", b.sel(2, b.var("r"))),
            ),
        ),
    )
    scan = b.set_reduce(
        b.var("D"),
        b.lam("d", "e", b.var("d")),
        accumulator,
        b.tup(b.var("i"), b.var("a")),
        b.emptyset(),
    )
    return b.define("rem", ["i", "a"], b.sel(2, scan))


def _bit_definition():
    """``bit(i, a)``: the ``i``-th bit of ``a`` (Lemma 4.6's BIT) — the
    parity of ``a`` shifted right ``i`` times."""
    return b.define("bit", ["i", "a"], b.call("parity", b.call("rem", b.var("i"), b.var("a"))))


def arithmetic_program() -> Program:
    """A program containing all the BASRL arithmetic definitions (plus the
    Fact 2.4 standard library)."""
    program = Program()
    for definition in (
        _increment_definition(),
        _decrement_definition(),
        _add_definition(),
        _mult_definition(),
        _expn_definition(),
        _shift_scan_definition(),
        _shift_definition(),
        _parity_definition(),
        _rem_definition(),
        _bit_definition(),
    ):
        program.define(definition)
    return with_standard_library(program)


def arithmetic_database(size: int) -> Database:
    """The domain ``D = {0, ..., size-1}`` plus the ``ZERO`` constant."""
    if size < 1:
        raise ValueError("the domain needs at least one element")
    return Database({
        "D": make_set(*(Atom(i) for i in range(size))),
        "ZERO": Atom(0),
    })


def rank_of(value: Value) -> int:
    """Decode a result back to a number (the rank of the atom)."""
    if isinstance(value, Atom):
        return value.rank
    if isinstance(value, SRLTuple) and value and isinstance(value[0], Atom):
        return value[0].rank
    raise TypeError(f"cannot read a rank from {value!r}")


def evaluate_arithmetic(operation: str, *arguments: int, size: int = 16,
                        session: Session | None = None):
    """Run one of the arithmetic definitions on numeric arguments.

    Booleans come back as booleans; numbers as their rank.  ``size`` is the
    domain size (results saturate at ``size - 1``).  Pass a ``session`` to
    reuse one compiled program across many evaluations.
    """
    if session is None:
        session = Session(arithmetic_program())
    database = arithmetic_database(size)
    result = session.call(operation, *(Atom(value) for value in arguments),
                          database=database)
    if isinstance(result, bool):
        return result
    return rank_of(result)
