"""Definition 3.4 / Lemma 3.6: alternating graph accessibility (AGAP).

``APATH(x, y)`` is the smallest relation with

1. ``APATH(x, x)``;
2. if ``x`` is existential and some edge ``(x, z)`` has ``APATH(z, y)``,
   then ``APATH(x, y)``;
3. if ``x`` is universal, has at least one outgoing edge, and *every* edge
   ``(x, z)`` has ``APATH(z, y)``, then ``APATH(x, y)``.

``AGAP`` asks whether ``APATH(v0, vmax)`` holds.  AGAP is complete for P
under first-order reductions (Fact 3.5), and Lemma 3.6 expresses it in SRL
by iterating the monotone operator ``F`` with nested set-reduces — that SRL
program is the witness for P ⊆ ℒ(SRL) (Theorem 3.10).

This module provides the direct Python baseline, the SRL program, and the
database encoding of an alternating-graph structure.
"""

from __future__ import annotations

from repro.core import Atom, Database, IndexedRelation, Program, make_set, make_tuple, with_standard_library
from repro.core import builders as b
from repro.core.engine import least_fixpoint
from repro.core.stdlib import forall_expr, forsome_expr, product_expr
from repro.structures.structure import Structure

__all__ = [
    "apath_baseline", "apath_plan", "agap_baseline", "agap_plan",
    "agap_database", "apath_program", "agap_program",
]


# ---------------------------------------------------------------- baseline


def apath_baseline(structure: Structure,
                   seminaive: bool = True) -> frozenset[tuple[int, int]]:
    """The APATH relation (the reference implementation the SRL program is
    checked against), computed through the engine's fixed-point kernel.

    The derivation is phrased as a delta step over the edge relation's
    per-column indexes: a freshly derived ``APATH(z, y)`` can only enable
    ``APATH(x, y)`` for the *predecessors* ``x`` of ``z``, so each round
    probes the target-column index of ``E`` with the previous round's delta
    instead of re-sweeping every ``(x, y)`` pair.  ``seminaive=False`` runs
    the same step naively (the whole relation is the delta every round).
    """
    edges = IndexedRelation(structure.relation("E"), arity=2)
    universal = {row[0] for row in structure.relation("A")}
    predecessors = edges.index(1)  # target -> edge rows into it
    successors = edges.index(0)    # source -> edge rows out of it

    def holds(x: int, y: int, apath) -> bool:
        if x in universal:
            return all((edge[1], y) in apath for edge in successors[x])
        return True  # the triggering edge is the existential witness

    def delta_step(delta: frozenset, apath: set) -> set[tuple[int, int]]:
        derived: set[tuple[int, int]] = set()
        for z, y in delta:
            for edge in predecessors.get(z, ()):
                x = edge[0]
                if (x, y) not in apath and holds(x, y, apath):
                    derived.add((x, y))
        return derived

    initial = frozenset((v, v) for v in structure.universe)
    return least_fixpoint(initial=initial, delta_step=delta_step,
                          seminaive=seminaive)


def agap_baseline(structure: Structure, source: int | None = None,
                  target: int | None = None) -> bool:
    """AGAP: APATH from vertex 0 to vertex n-1 (or the given endpoints)."""
    source = 0 if source is None else source
    target = structure.size - 1 if target is None else target
    return (source, target) in apath_baseline(structure)


def apath_plan(structure: Structure) -> frozenset[tuple[int, int]]:
    """The APATH relation through the logic layer's plan backend: the
    Section 3 LFP formula compiled to a relational plan whose fixed-point
    node iterates the same semi-naive kernel :func:`apath_baseline`'s
    hand-written delta step uses — the set-at-a-time route from the
    *formula* (rather than from this module's bespoke derivation rules)
    to the same relation."""
    from repro.logic.eval import define_relation
    from repro.logic.formula import var
    from repro.logic.queries import apath_lfp
    return define_relation(apath_lfp(var("u"), var("v")), structure,
                           ("u", "v"), backend="plan")


def agap_plan(structure: Structure, source: int | None = None,
              target: int | None = None) -> bool:
    """AGAP decided by the plan backend (see :func:`apath_plan`)."""
    source = 0 if source is None else source
    target = structure.size - 1 if target is None else target
    return (source, target) in apath_plan(structure)


# -------------------------------------------------------------- SRL program


def agap_database(structure: Structure, source: int | None = None,
                  target: int | None = None) -> Database:
    """Encode an alternating graph for the SRL program: ``NODES``, ``EDGES``,
    ``ANDS`` (the universal vertices) plus the two endpoints."""
    source = 0 if source is None else source
    target = structure.size - 1 if target is None else target
    nodes = make_set(*(Atom(v) for v in structure.universe))
    edges = make_set(*(make_tuple(Atom(u), Atom(v)) for u, v in structure.relation("E")))
    ands = make_set(*(Atom(row[0]) for row in structure.relation("A")))
    return Database({
        "NODES": nodes,
        "EDGES": edges,
        "ANDS": ands,
        "SOURCE": Atom(source),
        "TARGET": Atom(target),
    })


def _f_cond_definition():
    """``f-cond(p, R)``: the paper's monotone operator ``F`` applied to the
    pair ``p = [x, y]`` and the current stage relation ``R``::

        F(x, y, R) = (x = y)
                   \\/ [ forsome z. E(x,z) /\\ R(z,y)
                        /\\ ( ~ANDS(x) \\/ forall z. E(x,z) -> R(z,y) ) ]
    """
    context = b.tup(b.var("p"), b.var("R"))

    def x_of(ctx):
        return b.sel(1, b.sel(1, ctx))

    def y_of(ctx):
        return b.sel(2, b.sel(1, ctx))

    def stage_of(ctx):
        return b.sel(2, ctx)

    exists_part = forsome_expr(
        b.var("NODES"),
        lambda z, ctx: b.and_(
            b.call("member", b.tup(x_of(ctx), z), b.var("EDGES")),
            b.call("member", b.tup(z, y_of(ctx)), stage_of(ctx)),
        ),
        extra=context,
    )
    forall_part = forall_expr(
        b.var("NODES"),
        lambda z, ctx: b.or_(
            b.not_(b.call("member", b.tup(x_of(ctx), z), b.var("EDGES"))),
            b.call("member", b.tup(z, y_of(ctx)), stage_of(ctx)),
        ),
        extra=context,
    )
    body = b.or_(
        b.eq(b.sel(1, b.var("p")), b.sel(2, b.var("p"))),
        b.and_(
            exists_part,
            b.or_(
                b.not_(b.call("member", b.sel(1, b.var("p")), b.var("ANDS"))),
                forall_part,
            ),
        ),
    )
    return b.define("f-cond", ["p", "R"], body)


def _one_step_definition():
    """``one-step(R)``: add to ``R`` every pair the operator derives from it
    (one stage of the least-fixed-point iteration)."""
    pairs = product_expr(b.var("NODES"), b.var("NODES"))
    body = b.set_reduce(
        pairs,
        b.lam("p", "Rv", b.tup(b.var("p"), b.call("f-cond", b.var("p"), b.var("Rv")))),
        b.lam(
            "a", "r",
            b.if_(b.sel(2, b.var("a")), b.insert(b.sel(1, b.var("a")), b.var("r")), b.var("r")),
        ),
        b.var("R"),
        b.var("R"),
    )
    return b.define("one-step", ["R"], body)


def _apath_iterate_definition(quadratic: bool):
    """``apath-iterate()``: iterate ``one-step`` |NODES| times (or |NODES|^2
    times with ``quadratic=True``, the worst-case stage count of the fixed
    point, as in Lemma 3.6)."""
    inner = b.set_reduce(
        b.var("NODES"),
        b.lam("d2", "e2", b.var("d2")),
        b.lam("a2", "X", b.call("one-step", b.var("X"))),
        b.var("Z"),
        b.emptyset(),
    )
    if quadratic:
        body = b.set_reduce(
            b.var("NODES"),
            b.lam("d", "e", b.var("d")),
            b.lam("a", "Z", inner),
            b.emptyset(),
            b.emptyset(),
        )
    else:
        body = b.set_reduce(
            b.var("NODES"),
            b.lam("d", "e", b.var("d")),
            b.lam("a", "Z", b.call("one-step", b.var("Z"))),
            b.emptyset(),
            b.emptyset(),
        )
    return b.define("apath-iterate", [], body)


def apath_program(quadratic: bool = False) -> Program:
    """A program whose ``apath-iterate`` definition computes the APATH
    relation as a set of pairs.

    ``quadratic=True`` runs the full |NODES|^2 stages of Lemma 3.6;
    the default runs |NODES| stages, which already reaches the fixed point
    on every workload the benchmarks use (each stage is itself a full pass
    over all pairs) and keeps the polynomial degree low enough to sweep
    larger graphs.
    """
    program = Program()
    program.define(_f_cond_definition())
    program.define(_one_step_definition())
    program.define(_apath_iterate_definition(quadratic))
    return with_standard_library(program)


def agap_program(quadratic: bool = False) -> Program:
    """The AGAP decision program: is ``[SOURCE, TARGET]`` in APATH?"""
    program = apath_program(quadratic)
    program.main = b.call(
        "member", b.tup(b.var("SOURCE"), b.var("TARGET")), b.call("apath-iterate")
    )
    return program
