"""Cardinality-parity queries (Section 7's EVEN and friends).

``EVEN`` — "the size of the universe is even" — is the paper's canonical
example of an order-independent polynomial-time query that is *not*
expressible in (FO(wo<=) + LFP) (Fact 7.5), *is* expressible once counting
is added (the proper-hom count of Proposition 7.6), and is trivially
expressible in ordered SRL: a single boolean toggle scanned over the domain,
which is even a BASRL (logspace) program.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import Atom, Database, Program, make_set, with_standard_library
from repro.core import builders as b
from repro.core.hom import count_hom

__all__ = [
    "even_baseline",
    "even_via_counting",
    "even_program",
    "even_database",
    "cardinality_parity_program",
]


def even_baseline(elements: Iterable[object]) -> bool:
    """|S| is even (direct Python)."""
    return len(list(elements)) % 2 == 0


def even_via_counting(elements: Iterable[object]) -> bool:
    """EVEN via the Machiavelli proper hom of Proposition 7.6: count with
    ``hom(λx.1, +, 0, S)`` and test the parity of the number."""
    return count_hom(elements) % 2 == 0


def even_database(size: int) -> Database:
    """A pure set (no relations) of the given cardinality."""
    return Database({"S": make_set(*(Atom(i) for i in range(size)))})


def cardinality_parity_program(set_name: str = "S") -> Program:
    """The BASRL parity toggle: start at ``true`` and negate once per
    element — the accumulator is a single boolean, so this is also a
    logspace witness for EVEN."""
    program = Program()
    program.main = b.set_reduce(
        b.var(set_name),
        b.lam("x", "e", b.var("x")),
        b.lam("a", "r", b.call("not", b.var("r"))),
        b.true(),
        b.emptyset(),
    )
    return with_standard_library(program)


def even_program() -> Program:
    """EVEN of the input set ``S`` (alias of the parity-toggle program)."""
    return cardinality_parity_program("S")
