"""Test-support utilities shipped with the library (fault injection)."""

from .chaos import (
    ChaosError,
    ChaosPolicy,
    Fault,
    INJECTION_POINTS,
    active_policy,
    chaos,
    chaos_point,
    install_policy,
    uninstall_policy,
)

__all__ = [
    "ChaosError",
    "ChaosPolicy",
    "Fault",
    "INJECTION_POINTS",
    "active_policy",
    "chaos",
    "chaos_point",
    "install_policy",
    "uninstall_policy",
]
