"""The nightly fuzz corpus: generated formulas under generated updates.

The frozen 120-formula differential corpus
(``tests/logic/test_plan_differential.py``) pins the backends against
each other on *static* structures.  This module is its open-ended,
update-aware sibling (ROADMAP item 4): a seeded generator draws a
formula from one of three adversarial profiles, a random structure, and
a random single-fact update sequence, then runs the **four-way
differential with maintenance in the loop** — after every update batch,

* four live checkers (columnar / optimized plan / raw plan / tuple),
  each maintaining its own memo through
  :meth:`~repro.logic.eval.ModelChecker.apply_update`, must agree with
* a from-scratch tuple-oracle recompute on a pristine copy of the
  post-update structure,

and the four mutated structures must be equal.  Any divergence prints
the case seed and the exact replay command.

Profiles shape the generator's constructor weights:

``deep-nesting``
    depth 4, quantifiers and connectives favored — stresses plan shape,
    pushdown, and the maintainability analysis' recursion handling.
``counting-heavy``
    ``CountAtLeast`` favored at every level — almost everything lands on
    the recompute fallback; stresses the drop-never-stale path.
``adversarial-negation``
    negation / implication favored — stresses the anti-monotone
    analysis (Difference/AntiJoin right sides) and DRed's boundaries.

Run it directly (the CI ``fuzz-corpus`` job)::

    python -m repro.testing.fuzz --cases 150
    python -m repro.testing.fuzz --seed 912882340   # replay one failure
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.logic.formula import (
    And,
    CountAtLeast,
    DTCAtom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    LFPAtom,
    MAX,
    Not,
    Or,
    TCAtom,
    Term,
    TrueFormula,
    VarTerm,
    ZERO,
    aux,
    eq,
    free_variables_of,
    leq,
    rel,
)
from repro.structures.changeset import Changeset
from repro.structures.graphs import random_alternating_graph
from repro.structures.structure import Structure

__all__ = ["PROFILES", "FuzzFailure", "generate_formula",
           "generate_updates", "run_case", "main"]

#: Profile name -> (depth, constructor weights).  Weights index the
#: generator's constructor table: not, and, or, implies, exists, forall,
#: count, tc, dtc, lfp.
PROFILES: dict[str, tuple[int, tuple[int, ...]]] = {
    "deep-nesting": (4, (1, 3, 3, 2, 4, 3, 1, 1, 1, 2)),
    "counting-heavy": (3, (1, 2, 2, 1, 2, 1, 8, 1, 1, 1)),
    "adversarial-negation": (3, (6, 2, 2, 5, 2, 3, 1, 1, 1, 1)),
}

#: The free variables every generated formula is defined over.
FREE_VARIABLES = ("u", "v")


class FuzzFailure(AssertionError):
    """One divergent case, carrying its replay seed."""

    def __init__(self, seed: int, profile: str, detail: str):
        super().__init__(
            f"fuzz divergence (profile={profile}, seed={seed}): {detail}\n"
            f"replay: python -m repro.testing.fuzz --seed {seed}")
        self.seed = seed
        self.profile = profile


# ----------------------------------------------------------- the generator


class _Generator:
    """The profile-weighted formula generator (a weighted cousin of the
    differential suite's ``FormulaGenerator`` — every constructor is
    reachable under every profile, only the odds differ)."""

    def __init__(self, rng: random.Random, weights: tuple[int, ...]):
        self.rng = rng
        self.weights = weights
        self.fresh = 0

    def fresh_name(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    def term(self, scope: tuple[str, ...]) -> Term:
        choices: list[Term] = [ZERO, MAX]
        choices.extend(VarTerm(name) for name in scope)
        choices.extend(VarTerm(name) for name in scope)
        return self.rng.choice(choices)

    def atom(self, scope, aux_stack) -> Formula:
        kind = self.rng.randrange(6 if aux_stack else 5)
        if kind == 0:
            return rel("E", self.term(scope), self.term(scope))
        if kind == 1:
            return rel("A", self.term(scope))
        if kind == 2:
            return eq(self.term(scope), self.term(scope))
        if kind == 3:
            return leq(self.term(scope), self.term(scope))
        if kind == 4:
            return TrueFormula() if self.rng.random() < 0.5 else FalseFormula()
        name, arity = self.rng.choice(aux_stack)
        return aux(name, *(self.term(scope) for _ in range(arity)))

    def formula(self, depth: int, scope: tuple[str, ...],
                aux_stack: tuple[tuple[str, int], ...] = ()) -> Formula:
        if depth <= 0:
            return self.atom(scope, aux_stack)
        kind = self.rng.choices(range(10), weights=self.weights)[0]
        if kind == 0:
            return Not(self.formula(depth - 1, scope, aux_stack))
        if kind == 1:
            return And(tuple(self.formula(depth - 1, scope, aux_stack)
                             for _ in range(2)))
        if kind == 2:
            return Or(tuple(self.formula(depth - 1, scope, aux_stack)
                            for _ in range(2)))
        if kind == 3:
            return Implies(self.formula(depth - 1, scope, aux_stack),
                           self.formula(depth - 1, scope, aux_stack))
        if kind in (4, 5):
            variable = self.fresh_name("q")
            body = self.formula(depth - 1, scope + (variable,), aux_stack)
            return (Exists if kind == 4 else Forall)(variable, body)
        if kind == 6:
            variable = self.fresh_name("q")
            threshold = self.rng.choice([0, 1, 2, "half"])
            body = self.formula(depth - 1, scope + (variable,), aux_stack)
            return CountAtLeast(threshold, variable, body)
        if kind in (7, 8):
            source, target = self.fresh_name("s"), self.fresh_name("t")
            body = self.formula(depth - 1, (source, target), aux_stack)
            operator = TCAtom if kind == 7 else DTCAtom
            return operator((source,), (target,), body,
                            (self.term(scope),), (self.term(scope),))
        relation = self.fresh_name("R")
        arity = self.rng.choice((1, 2))
        variables = tuple(self.fresh_name("f") for _ in range(arity))
        body = self.formula(depth - 1, variables,
                            aux_stack + ((relation, arity),))
        terms = tuple(self.term(scope) for _ in range(arity))
        return LFPAtom(relation, variables, body, terms)


def generate_formula(seed: int, profile: str) -> Formula:
    """The case's formula: deterministic in ``(seed, profile)``.  Depth
    varies up to the profile's maximum so the corpus also draws shallow
    monotone formulas — the ones the maintenance layer patches with the
    delta/closure/fixpoint strategies rather than the recompute fallback."""
    max_depth, weights = PROFILES[profile]
    rng = random.Random(seed)
    generator = _Generator(rng, weights)
    return generator.formula(rng.randrange(1, max_depth + 1), FREE_VARIABLES)


def generate_updates(seed: int, size: int,
                     batches: int = 3) -> list[Changeset]:
    """A deterministic sequence of update batches over ``E`` (binary) and
    ``A`` (unary), mixing inserts, deletes, no-ops (deleting absent
    facts), and same-batch insert/delete cancellations."""
    rng = random.Random(seed ^ 0x5EED)
    sequence = []
    for _ in range(batches):
        changes = []
        for _ in range(rng.randrange(1, 4)):
            op = rng.choice(["insert", "delete"])
            if rng.random() < 0.3:
                changes.append((op, "A", (rng.randrange(size),)))
            else:
                changes.append((op, "E", (rng.randrange(size),
                                          rng.randrange(size))))
        if len(changes) > 1 and rng.random() < 0.25:
            op, name, row = changes[0]
            changes.append(("delete" if op == "insert" else "insert",
                            name, row))
        sequence.append(Changeset.from_json(
            [[op, name, list(row)] for op, name, row in changes]))
    return sequence


# ------------------------------------------------------------ the harness


def _copy(structure: Structure) -> Structure:
    return Structure(structure.vocabulary, structure.size,
                     dict(structure.relations), intern=structure.intern)


def _normalized(columns: tuple[str, ...], rows: frozenset) -> frozenset:
    """Rows permuted into sorted-column order, so backends that lay the
    free variables out differently still compare equal."""
    order = sorted(range(len(columns)), key=lambda i: columns[i])
    return frozenset(tuple(row[i] for i in order) for row in rows)


def run_case(seed: int, profile: str | None = None,
             size: int | None = None) -> dict[str, int]:
    """One fuzz case; raises :class:`FuzzFailure` on any divergence.
    Returns the merged per-strategy maintenance counters (so sweeps can
    report which strategies the corpus actually exercised)."""
    from repro.logic.eval import ModelChecker, define_relation

    rng = random.Random(seed)
    if profile is None:
        profile = rng.choice(sorted(PROFILES))
    if size is None:
        size = rng.randrange(3, 6)
    formula = generate_formula(seed, profile)
    base = random_alternating_graph(size, seed=seed)
    layout = tuple(sorted(free_variables_of(formula)))

    checkers = {
        "columnar": ModelChecker(_copy(base), backend="columnar"),
        "optimized": ModelChecker(_copy(base), backend="plan"),
        "raw": ModelChecker(_copy(base), backend="plan", optimize=False),
        "tuple": ModelChecker(_copy(base), backend="tuple"),
    }
    for checker in checkers.values():
        checker.defined_relation(formula)  # prime the memo

    exercised: dict[str, int] = {}
    for step, changeset in enumerate(generate_updates(seed, size)):
        for checker in checkers.values():
            checker.apply_update(Changeset(changeset.changes))
        reference = checkers["tuple"].structure
        for name, checker in checkers.items():
            if checker.structure != reference:
                raise FuzzFailure(
                    seed, profile,
                    f"step {step}: {name} structure diverged after "
                    f"{changeset!r}")
        oracle = define_relation(formula, _copy(reference), layout,
                                 backend="tuple")
        for name, checker in checkers.items():
            columns, rows = checker.defined_relation(formula)
            if _normalized(columns, rows) != _normalized(layout, oracle):
                raise FuzzFailure(
                    seed, profile,
                    f"step {step}: {name} relation diverged from the "
                    f"recompute oracle after {changeset!r}")
        for checker in checkers.values():
            for strategy, count in checker.ivm_stats.items():
                exercised[strategy] = exercised.get(strategy, 0) + count
            checker.ivm_stats.clear()
    return exercised


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Fuzz the four logic backends under random formulas "
                    "and random update sequences.")
    parser.add_argument("--cases", type=int, default=50,
                        help="number of cases to run (default: 50)")
    parser.add_argument("--seed", type=int, default=None,
                        help="replay exactly one case by its printed seed")
    parser.add_argument("--base-seed", type=int, default=None,
                        help="first seed of the sweep (default: random, "
                             "printed so the whole run is replayable)")
    parser.add_argument("--profile", choices=sorted(PROFILES), default=None,
                        help="pin every case to one profile (default: the "
                             "case seed picks)")
    args = parser.parse_args(argv)

    if args.seed is not None:
        try:
            exercised = run_case(args.seed, profile=args.profile)
        except FuzzFailure as failure:
            print(failure, file=sys.stderr)
            return 1
        print(f"seed {args.seed}: OK (maintenance: {exercised or 'none'})")
        return 0

    base = args.base_seed if args.base_seed is not None \
        else random.SystemRandom().randrange(2 ** 31)
    print(f"fuzz sweep: {args.cases} cases from base seed {base} "
          f"(replay the sweep with --base-seed {base})")
    exercised: dict[str, int] = {}
    # Ctrl-C / SIGTERM between cases ends the sweep as a typed exit 3
    # with the partial tally, not a KeyboardInterrupt traceback.
    from repro.core.governor import CancelToken, cancel_on_signals

    token = CancelToken()
    with cancel_on_signals(token):
        for index in range(args.cases):
            if token.cancelled:
                summary = ", ".join(
                    f"{name}={count}"
                    for name, count in sorted(exercised.items()))
                print(f"fuzz sweep cancelled after {index} of "
                      f"{args.cases} cases (maintenance exercised: "
                      f"{summary or 'none'})", file=sys.stderr)
                return 3
            seed = base + index
            try:
                for strategy, count in run_case(
                        seed, profile=args.profile).items():
                    exercised[strategy] = exercised.get(strategy, 0) + count
            except FuzzFailure as failure:
                print(failure, file=sys.stderr)
                return 1
    summary = ", ".join(f"{name}={count}"
                        for name, count in sorted(exercised.items()))
    print(f"fuzz sweep: {args.cases} cases OK "
          f"(maintenance exercised: {summary or 'none'})")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
