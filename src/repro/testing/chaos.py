"""Deterministic fault injection for the engine stack.

The engine's degradation ladder (optimized plan -> raw plan -> tuple
oracle) and its restore-on-exception guarantees are only trustworthy if
they are *exercised*.  This module plants named injection points at the
seams where real failures happen, and lets a seeded
:class:`ChaosPolicy` make each of them raise, delay, or hand back
corrupt-on-purpose data:

==========================  ================================================
injection point             where it fires
==========================  ================================================
``relalg.join.probe``       once per Join / JoinProject execution, before
                            the probe loop (corrupt: the probe-side index
                            is built over a wrong-arity row)
``optimize.pass.<name>``    before each optimizer pass (``simplify``,
                            ``pushdown``, ``prune``, ``reorder``, ``fuse``,
                            ``delta``, ``share``); corrupt: the pass
                            returns a plan with the wrong output columns
``plan.fixpoint.round``     once per fixpoint round (corrupt: a
                            wrong-arity row is smuggled into the round's
                            derived rows)
``engine.memo.store``       before a memo table stores an entry (corrupt:
                            the stored rows are garbage)
``service.worker.crash``    in a query-service worker, between receiving a
                            request and evaluating it; a ``raise`` here is
                            escalated by the worker main loop to
                            ``os._exit`` — a real process death, not an
                            exception the ladder could absorb
``service.net.drop``        around one protocol frame write (raise: the
                            frame never leaves; corrupt: the frame is
                            truncated mid-payload)
``service.queue.overflow``  in admission control, before capacity is
                            checked; a ``raise`` forces a load-shed as if
                            the queue were full
==========================  ================================================

Corruption is *detectable by construction*: every corrupt payload a site
offers is one the engine's own validation (arity checks in
``IndexedRelation``, the optimizer's output-columns invariant, memo-row
validation) must catch.  The chaos differential suite asserts that under
every fault the engine either returns the correct answer via fallback or
raises a clean typed error — never a wrong answer.

The module is dependency-light on purpose (stdlib only, no imports from
``repro.core``): the engine imports *us*, and the hot-path cost when no
policy is installed is one global load and a ``None`` check.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "ChaosError",
    "ChaosPolicy",
    "Fault",
    "INJECTION_POINTS",
    "active_policy",
    "chaos",
    "chaos_point",
    "install_policy",
    "uninstall_policy",
]

#: Every injection point the engine registers, for sweep-style tests.
#: (``optimize.pass.<name>`` is one logical point per optimizer pass.)
INJECTION_POINTS: tuple[str, ...] = (
    "relalg.join.probe",
    "optimize.pass.simplify",
    "optimize.pass.pushdown",
    "optimize.pass.prune",
    "optimize.pass.reorder",
    "optimize.pass.fuse",
    "optimize.pass.delta",
    "optimize.pass.share",
    "plan.fixpoint.round",
    "engine.memo.store",
    "ivm.dred.overdelete",
    "ivm.dred.rederive",
    "ivm.memo.patch",
    "service.worker.crash",
    "service.net.drop",
    "service.queue.overflow",
)

ACTIONS = ("raise", "delay", "corrupt")


class ChaosError(RuntimeError):
    """The exception an injected ``raise`` fault throws.

    Deliberately *not* an :class:`~repro.core.errors.SRLError`: injected
    faults model internal bugs and infrastructure failures, which the
    degradation ladder must absorb without a matching except clause for
    this specific type.
    """

    def __init__(self, point: str):
        super().__init__(f"chaos fault injected at {point}")
        self.point = point


@dataclass(frozen=True)
class Fault:
    """One arming rule: *what* to do *where*, and how often.

    ``point`` matches an injection point exactly, by ``"prefix.*"`` glob,
    or everything with ``"*"``.  ``probability`` is evaluated against the
    policy's seeded RNG, so a sweep is reproducible.  ``max_fires`` caps
    how many times this fault triggers (``None`` = unlimited); a fault
    that fires on every fixpoint round would otherwise starve a fallback
    that re-enters the same code path.
    """

    point: str
    action: str = "raise"
    probability: float = 1.0
    delay_seconds: float = 0.0
    max_fires: int | None = 1

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown chaos action {self.action!r}; "
                             f"expected one of {ACTIONS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("Fault.probability must be in [0, 1]")

    def matches(self, point: str) -> bool:
        if self.point == "*" or self.point == point:
            return True
        if self.point.endswith(".*"):
            return point.startswith(self.point[:-1])
        return False


@dataclass
class ChaosPolicy:
    """A seeded, deterministic set of armed faults plus a fire log.

    ``fired`` records ``(point, action)`` per trigger, so tests can
    assert a sweep actually exercised the site it aimed at.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0
    fired: list[tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.faults = tuple(self.faults)
        self.rng = random.Random(self.seed)
        self._fires: dict[int, int] = {}

    def apply(self, point: str, payload: Any,
              corrupt: Callable[[Any], Any] | None) -> Any:
        """Run the armed faults for ``point``.  Returns the payload —
        possibly replaced by a corrupt variant — after raising/delaying
        as configured."""
        for index, fault in enumerate(self.faults):
            if not fault.matches(point):
                continue
            if fault.max_fires is not None and \
                    self._fires.get(index, 0) >= fault.max_fires:
                continue
            if fault.probability < 1.0 and \
                    self.rng.random() >= fault.probability:
                continue
            self._fires[index] = self._fires.get(index, 0) + 1
            self.fired.append((point, fault.action))
            if fault.action == "delay":
                time.sleep(fault.delay_seconds)
            elif fault.action == "raise":
                raise ChaosError(point)
            elif corrupt is not None:  # "corrupt"
                payload = corrupt(payload)
            # "corrupt" at a site that offers no corrupt payload degrades
            # to a no-op: the site has nothing it could hand back wrong.
        return payload


#: The single installed policy.  ``None`` keeps :func:`chaos_point` to a
#: global load + comparison on the hot path.
_ACTIVE: ChaosPolicy | None = None


def chaos_point(point: str, payload: Any = None,
                corrupt: Callable[[Any], Any] | None = None) -> Any:
    """The engine-side hook.  With no policy installed this is a no-op
    returning ``payload`` unchanged; with one installed, the policy
    decides whether to raise, delay, or substitute ``corrupt(payload)``."""
    policy = _ACTIVE
    if policy is None:
        return payload
    return policy.apply(point, payload, corrupt)


def install_policy(policy: ChaosPolicy) -> None:
    global _ACTIVE
    _ACTIVE = policy


def uninstall_policy() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_policy() -> ChaosPolicy | None:
    return _ACTIVE


@contextmanager
def chaos(*faults: Fault, seed: int = 0) -> Iterator[ChaosPolicy]:
    """Scoped installation: ``with chaos(Fault("relalg.join.probe")):``."""
    policy = ChaosPolicy(tuple(faults), seed=seed)
    install_policy(policy)
    try:
        yield policy
    finally:
        uninstall_policy()


# ----------------------------------------------------- cross-process arming
#
# Query-service workers are separate processes: a policy installed in the
# parent does not exist in the child.  The pool serializes the policy into
# the child's environment; the worker main() arms it before serving.

#: The environment variable a worker reads its chaos policy from.
CHAOS_ENV = "REPRO_CHAOS"


def policy_to_json(policy: ChaosPolicy) -> str:
    """The policy as a JSON string fit for :data:`CHAOS_ENV`."""
    import json

    return json.dumps({
        "seed": policy.seed,
        "faults": [
            {"point": fault.point, "action": fault.action,
             "probability": fault.probability,
             "delay_seconds": fault.delay_seconds,
             "max_fires": fault.max_fires}
            for fault in policy.faults
        ],
    })


def policy_from_json(raw: str) -> ChaosPolicy:
    """Rebuild a policy from :func:`policy_to_json` output.  Raises
    ``ValueError`` on anything malformed (a worker would rather die loudly
    at spawn than serve with a half-armed policy)."""
    import json

    data = json.loads(raw)
    if not isinstance(data, dict) or not isinstance(data.get("faults"), list):
        raise ValueError(f"chaos policy JSON must be an object with a "
                         f"'faults' list, got {raw!r}")
    faults = tuple(
        Fault(point=spec["point"], action=spec.get("action", "raise"),
              probability=spec.get("probability", 1.0),
              delay_seconds=spec.get("delay_seconds", 0.0),
              max_fires=spec.get("max_fires", 1))
        for spec in data["faults"]
    )
    return ChaosPolicy(faults, seed=int(data.get("seed", 0)))


def install_policy_from_env() -> ChaosPolicy | None:
    """Arm the policy serialized in :data:`CHAOS_ENV`, if any — the worker
    process's half of the cross-process handshake.  Returns the installed
    policy (or ``None`` when the variable is unset)."""
    import os

    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return None
    policy = policy_from_json(raw)
    install_policy(policy)
    return policy
