"""The relational-plan IR: set-at-a-time evaluation for the logic layer.

The classic FO = relational-algebra correspondence (the descriptive-
complexity bridge the paper's Figure 1 rests on) says every first-order
formula — and, with fixed-point nodes, every FO(+TC/DTC/LFP) formula —
denotes a relational-algebra expression over the input structure.  This
module is the *plan* side of that correspondence: a small tree IR of
relational operators, each node knowing its output **column layout** (a
tuple of variable names) and how to :meth:`~Plan.execute` itself into an
:class:`~repro.core.relalg.IndexedRelation` over the structure's ordered
universe.

The nodes:

=========================  ==================================================
:class:`RelationScan`        an input relation of the structure
:class:`AuxScan`             an auxiliary (fixed-point stage) relation
:class:`DeltaScan`           the frontier of a fixed-point stage relation
:class:`DomainProduct`       the full active-domain product ``universe^k``
:class:`ConstrainedDomain`   the domain product constrained during
                             enumeration (never materializing ``n^k``)
:class:`Empty`               the empty relation (``false``)
:class:`Select`              rows satisfying constant/column comparisons
:class:`Project`             column subset (with reorder; duplicates collapse)
:class:`Rename`              pure column relabeling, no row change
:class:`Join`                natural join on the shared column names
:class:`JoinProject`         natural join emitting only the named columns
:class:`SemiJoin`            left rows with a match in the right relation
:class:`AntiJoin`            left rows with no match in the right relation
:class:`Product`             cross product against disjoint columns
:class:`Union`               set union of layout-aligned operands
:class:`Difference`          set difference on all columns
:class:`CountSelect`         grouped counting (the ``exists>=t`` quantifier)
:class:`Fixpoint`            LFP, optionally with a delta-rewritten body
:class:`Closure`             TC/DTC via the engine's semi-naive closure kernel
:class:`Shared`              a common subplan memoized per execution
:class:`Cumulative`          a monotone subplan maintained incrementally
                             across fixed-point rounds
=========================  ==================================================

Negation and universal quantification compile (in
:mod:`repro.logic.compile`) to :class:`Difference` against a
:class:`DomainProduct` — the active-domain complement rule — and the two
fixed-point nodes reuse the PR 3 delta-propagating kernels through
:func:`repro.core.engine.least_fixpoint` / ``transitive_closure``, so the
whole logic layer bottoms out in the same relational machinery as the
query baselines.  The second half of the node table
(:class:`ConstrainedDomain`, :class:`SemiJoin`, :class:`AntiJoin`,
:class:`DeltaScan`, :class:`Shared`, ``Fixpoint.delta_body``) is never
emitted by the compiler directly: those nodes are introduced by the
rewrite passes of :mod:`repro.logic.optimize`.

Every node renders itself through :meth:`Plan.explain` — an indented tree
of one-line labels — which the compiler's ``explain()`` helper pairs with
the formula pretty-printer.  Execution threads an
:class:`ExecutionContext` carrying the structure, the auxiliary relations
in scope, the delta (frontier) relations of delta-rewritten fixed points,
an optional per-execution memo for :class:`Shared` nodes, and optional
:class:`PlanStats` counters (rows materialized, index probes, fixpoint
rounds) that the CLI surfaces via ``--stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as cartesian
from typing import Iterable, Mapping

from repro.core.engine import least_fixpoint, transitive_closure
from repro.core.governor import Governor
from repro.core.relalg import IndexedRelation
from repro.structures.structure import Structure
from repro.testing.chaos import chaos_point

__all__ = [
    "ExecutionContext",
    "PlanStats",
    "Col",
    "Const",
    "Comparison",
    "Plan",
    "RelationScan",
    "AuxScan",
    "DeltaScan",
    "DomainProduct",
    "ConstrainedDomain",
    "Empty",
    "Select",
    "Project",
    "Rename",
    "Join",
    "JoinProject",
    "SemiJoin",
    "AntiJoin",
    "Product",
    "Union",
    "Difference",
    "CountSelect",
    "Fixpoint",
    "Closure",
    "Shared",
    "Cumulative",
]


# ------------------------------------------------------------------ counters


@dataclass
class PlanStats:
    """Execution counters, accumulated across every plan executed under one
    context (one checker / one ``define_relation`` call).

    * ``rows_materialized`` — total rows written into result relations, one
      count per plan node that builds a relation (:class:`Rename` and memo
      hits on :class:`Shared` nodes materialize nothing and count nothing).
    * ``index_probes`` — hash-index lookups performed by the join kernels.
    * ``fixpoint_rounds`` — iterations taken by :class:`Fixpoint` nodes.
    * ``fixpoint_round_rows`` — rows materialized per fixpoint round (the
      O(Δ) evidence: on a delta-rewritten body each entry is bounded by the
      frontier, not the accumulated relation).
    * ``shared_hits`` — :class:`Shared` executions answered from the memo.
    * ``codegen_cache_hits`` — columnar plans answered from the compiled-
      closure cache instead of re-running codegen (see
      :mod:`repro.logic.codegen`).
    * ``peak_rows_resident`` — the largest number of rows simultaneously
      live in one kernel's working set (frontier + accumulated result for
      closures; the O(frontier) memory claim made observable).
    * ``bytes_resident`` — peak structural byte estimate of packed columnar
      payloads (bitset words, CSR offset/target arrays) held at once.
      Both peaks are max-merged, never summed, across plans.
    """

    rows_materialized: int = 0
    index_probes: int = 0
    fixpoint_rounds: int = 0
    shared_hits: int = 0
    codegen_cache_hits: int = 0
    peak_rows_resident: int = 0
    bytes_resident: int = 0
    fixpoint_round_rows: list[int] = field(default_factory=list)

    def note_resident(self, rows: int | None = None,
                      byte_count: int | None = None) -> None:
        """Max-merge a kernel's current working-set size into the peaks."""
        if rows is not None and rows > self.peak_rows_resident:
            self.peak_rows_resident = rows
        if byte_count is not None and byte_count > self.bytes_resident:
            self.bytes_resident = byte_count

    def as_dict(self) -> dict[str, int]:
        return {
            "rows_materialized": self.rows_materialized,
            "index_probes": self.index_probes,
            "fixpoint_rounds": self.fixpoint_rounds,
            "shared_hits": self.shared_hits,
            "codegen_cache_hits": self.codegen_cache_hits,
            "peak_rows_resident": self.peak_rows_resident,
            "bytes_resident": self.bytes_resident,
            "max_fixpoint_round_rows": max(self.fixpoint_round_rows, default=0),
        }


# ----------------------------------------------------------------- context


@dataclass(frozen=True)
class ExecutionContext:
    """Everything a plan needs at run time: the structure (universe and
    input relations), the auxiliary relations in scope (fixed-point stages
    and caller-supplied interpretations), the fixed-point strategy, and —
    for optimized plans — the per-stage delta relations, the per-execution
    :class:`Shared` memo, and the :class:`PlanStats` counters."""

    structure: Structure
    auxiliary: Mapping[str, frozenset] = field(default_factory=dict)
    seminaive: bool = True
    delta: Mapping[str, frozenset] = field(default_factory=dict)
    stats: PlanStats | None = None
    memo: dict | None = None
    round_memo: dict | None = None
    accumulators: dict | None = None
    governor: Governor | None = None

    def with_auxiliary(self, name: str, rows: frozenset,
                       delta: frozenset | None = None,
                       fresh_round: bool = False,
                       accumulators: dict | None = None) -> "ExecutionContext":
        """A child context with one auxiliary relation rebound (the per-stage
        view a :class:`Fixpoint` body executes under) and, optionally, that
        relation's frontier for :class:`DeltaScan` nodes.  The persistent
        memo is carried over unchanged — non-volatile :class:`Shared` only
        ever wraps auxiliary-free subplans, whose results cannot depend on
        the rebinding — while ``fresh_round`` starts an empty *round* memo,
        the per-round scope volatile (auxiliary-dependent) shared subplans
        are cached in.  ``accumulators`` installs the store a
        delta-rewritten fixed point keeps its :class:`Cumulative` subplans
        in (the same dict across all of that fixed point's rounds)."""
        overlay = dict(self.auxiliary)
        overlay[name] = rows
        deltas = dict(self.delta)
        if delta is not None:
            deltas[name] = delta
        round_memo = {} if fresh_round else self.round_memo
        store = accumulators if accumulators is not None else self.accumulators
        return ExecutionContext(self.structure, overlay, self.seminaive,
                                deltas, self.stats, self.memo, round_memo,
                                store, self.governor)


# ------------------------------------------------------------- comparisons


@dataclass(frozen=True)
class Col:
    """A reference to a column of the node's input, by position."""

    index: int


@dataclass(frozen=True)
class Const:
    """One of the two constant symbols: ``"zero"`` or ``"max"`` (n-1)."""

    which: str


_OPERATORS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "leq": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
}

_OPERATOR_SYMBOLS = {"eq": "=", "ne": "!=", "leq": "<=", "gt": ">"}


@dataclass(frozen=True)
class Comparison:
    """A selection predicate ``left op right`` over columns and constants.

    Comparisons are data, not closures, so plans stay hashable, printable
    and structure-independent (``max`` resolves against the executing
    structure's size).
    """

    op: str  # "eq" | "ne" | "leq" | "gt"
    left: Col | Const
    right: Col | Const

    def evaluate(self, row: tuple, size: int) -> bool:
        return _OPERATORS[self.op](self._value(self.left, row, size),
                                   self._value(self.right, row, size))

    @staticmethod
    def _value(ref: Col | Const, row: tuple, size: int) -> int:
        if isinstance(ref, Col):
            return row[ref.index]
        return 0 if ref.which == "zero" else size - 1

    def columns_used(self) -> tuple[int, ...]:
        """The column positions this comparison reads (constants excluded)."""
        return tuple(ref.index for ref in (self.left, self.right)
                     if isinstance(ref, Col))

    def remap(self, mapping: Mapping[int, int]) -> "Comparison":
        """The same predicate with every column reference repositioned
        through ``mapping`` (how the optimizer pushes a selection below an
        operator that reorders columns)."""

        def move(ref: Col | Const) -> Col | Const:
            if isinstance(ref, Col):
                return Col(mapping[ref.index])
            return ref

        return Comparison(self.op, move(self.left), move(self.right))

    def describe(self, columns: tuple[str, ...]) -> str:
        def name(ref: Col | Const) -> str:
            if isinstance(ref, Col):
                return columns[ref.index]
            return "0" if ref.which == "zero" else "max"

        return f"{name(self.left)} {_OPERATOR_SYMBOLS[self.op]} {name(self.right)}"


# ------------------------------------------------------------------- nodes


class Plan:
    """Base class of plan nodes.

    Every node exposes ``columns`` (its output layout: one variable name
    per column), ``children()`` (sub-plans, for traversal), a one-line
    :meth:`label` that :meth:`explain` assembles into an indented tree, and
    :meth:`execute`, which delegates to the node's ``_run`` and accounts
    the materialized rows on the context's :class:`PlanStats` (nodes that
    materialize nothing set ``_materializes = False``).
    """

    columns: tuple[str, ...]

    #: Whether ``_run`` builds a fresh relation (and so should count its
    #: rows as materialized).  ``Rename`` and ``Shared`` override this.
    _materializes = True

    def children(self) -> tuple["Plan", ...]:
        return ()

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        result = self._run(context)
        stats = context.stats
        if stats is not None and self._materializes:
            stats.rows_materialized += len(result)
        governor = context.governor
        if governor is not None:
            if self._materializes:
                governor.note_rows(len(result))
            governor.tick()
        return result

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    def explain(self, annotate=None) -> str:
        """The plan as an indented tree, one node per line.  ``annotate``
        optionally maps a node to a suffix string (the optimizer passes the
        estimated cardinalities through this hook)."""
        lines: list[str] = []

        def walk(node: "Plan", depth: int) -> None:
            suffix = annotate(node) if annotate is not None else ""
            lines.append("  " * depth + node.label() + suffix)
            for child in node.children():
                walk(child, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    def _layout(self) -> str:
        return f"({', '.join(self.columns)})"


@dataclass(frozen=True)
class RelationScan(Plan):
    """Scan an input relation of the structure.

    ``order`` (attached by the optimizer's scan fusion) is a column
    permutation applied *during* emission: output column ``i`` reads raw
    column ``order[i]``, so a ``Project``/``Rename`` reordering above a
    scan costs nothing instead of a full extra copy.
    """

    name: str
    columns: tuple[str, ...]
    order: tuple[int, ...] | None = None

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        rows = context.structure.relation(self.name)
        if self.order is not None:
            return _permuted_scan(rows, self.order)
        return _scan(rows, len(self.columns))

    def label(self) -> str:
        permuted = f" perm{list(self.order)}" if self.order is not None else ""
        return f"Scan {self.name}{permuted} -> {self._layout()}"


@dataclass(frozen=True)
class AuxScan(Plan):
    """Scan an auxiliary relation (a fixed-point stage, or a caller-supplied
    interpretation); unknown names read as empty, like the tuple evaluator.

    Caller-supplied auxiliary rows are filtered to the structure's
    universe: the tuple evaluator only ever *tests* in-universe tuples, so
    out-of-range rows are unobservable there and must stay unobservable
    set-at-a-time (they would otherwise leak through joins, counts and the
    closure's successor map)."""

    name: str
    columns: tuple[str, ...]
    order: tuple[int, ...] | None = None

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        rows = context.auxiliary.get(self.name, frozenset())
        arity = len(self.columns)
        size = context.structure.size
        if self.order is not None:
            order = self.order
            return IndexedRelation.adopt(
                {tuple(row[i] for i in order) for row in rows
                 if len(row) == arity
                 and all(0 <= value < size for value in row)},
                arity=arity,
            )
        return IndexedRelation(
            (row for row in rows
             if len(row) == arity and all(0 <= value < size for value in row)),
            arity=arity,
        )

    def label(self) -> str:
        permuted = f" perm{list(self.order)}" if self.order is not None else ""
        return f"ScanAux {self.name}{permuted} -> {self._layout()}"


@dataclass(frozen=True)
class DeltaScan(Plan):
    """Scan the *frontier* of a fixed-point stage relation — the rows added
    in the previous round — inside a delta-rewritten :class:`Fixpoint`
    body.  Frontier rows are produced by plan execution over the universe,
    so no re-filtering is needed (unlike :class:`AuxScan`)."""

    name: str
    columns: tuple[str, ...]
    order: tuple[int, ...] | None = None

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        rows = context.delta.get(self.name, frozenset())
        arity = len(self.columns)
        if self.order is not None:
            return _permuted_scan(rows, self.order)
        return IndexedRelation.adopt(
            {row for row in rows if len(row) == arity}, arity=arity)

    def label(self) -> str:
        permuted = f" perm{list(self.order)}" if self.order is not None else ""
        return f"ScanDelta {self.name}{permuted} -> {self._layout()}"


def _scan(rows: Iterable[tuple], arity: int) -> IndexedRelation:
    # An atom whose term count disagrees with the stored arity holds of no
    # tuple (the tuple evaluator's membership test is silently false), so
    # mismatched rows are filtered rather than raised on.
    return IndexedRelation((row for row in rows if len(row) == arity),
                           arity=arity)


def _permuted_scan(rows: Iterable[tuple], order: tuple[int, ...]
                   ) -> IndexedRelation:
    """A scan emitting rows pre-permuted (same arity-mismatch filtering as
    :func:`_scan`; a permutation cannot collapse rows, so adopting the set
    comprehension is exact)."""
    arity = len(order)
    return IndexedRelation.adopt(
        {tuple(row[i] for i in order) for row in rows if len(row) == arity},
        arity=arity)


@dataclass(frozen=True)
class DomainProduct(Plan):
    """The full active-domain product ``universe^k`` — the complement space
    for negation/universal quantification and the padding for columns a
    sub-formula leaves unconstrained.  Zero columns give the unit relation
    ``{()}`` (the relational encoding of *true*)."""

    columns: tuple[str, ...]

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        universe = context.structure.universe
        if context.governor is not None:
            context.governor.check_rows_ahead(
                len(universe) ** len(self.columns))
        return IndexedRelation(cartesian(universe, repeat=len(self.columns)),
                               arity=len(self.columns))

    def label(self) -> str:
        return f"Domain^{len(self.columns)} -> {self._layout()}"


@dataclass(frozen=True)
class ConstrainedDomain(Plan):
    """``Select`` over a :class:`DomainProduct`, fused: the comparisons are
    applied *during* enumeration, column by column, so an equality atom
    (``x = y`` over ``n^2``) or a constant binding costs its output size
    instead of the full product.

    Enumeration fixes columns left to right; when a comparison's last
    column comes up, its other operand is already known, so ``eq`` pins the
    candidate list to one value and ``leq``/``gt`` shrink it to a range.
    """

    columns: tuple[str, ...]
    comparisons: tuple[Comparison, ...]

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        size = context.structure.size
        k = len(self.columns)
        # Comparisons bucketed by the last column they mention; column-free
        # ones (constant vs constant) gate the whole enumeration.
        by_last: list[list[Comparison]] = [[] for _ in range(k)]
        for comparison in self.comparisons:
            used = comparison.columns_used()
            if used:
                by_last[max(used)].append(comparison)
            elif not comparison.evaluate((), size):
                return IndexedRelation(arity=k)

        rows: set[tuple] = set()
        row: list[int] = [0] * k

        def value_of(ref: Col | Const) -> int:
            if isinstance(ref, Col):
                return row[ref.index]
            return 0 if ref.which == "zero" else size - 1

        def extend(position: int) -> None:
            if position == k:
                rows.add(tuple(row))
                return
            low, high = 0, size - 1
            for comparison in by_last[position]:
                left, right = comparison.left, comparison.right
                here_left = isinstance(left, Col) and left.index == position
                other = right if here_left else left
                if isinstance(other, Col) and other.index == position:
                    continue  # self-comparison (x op x): checked below
                bound = value_of(other)
                if comparison.op == "eq":
                    low, high = max(low, bound), min(high, bound)
                elif comparison.op == "leq":
                    if here_left:
                        high = min(high, bound)
                    else:
                        low = max(low, bound)
                elif comparison.op == "gt":
                    if here_left:
                        low = max(low, bound + 1)
                    else:
                        high = min(high, bound - 1)
            for candidate in range(low, high + 1):
                row[position] = candidate
                if all(c.evaluate(row, size) for c in by_last[position]):
                    extend(position + 1)

        extend(0)
        return IndexedRelation.adopt(rows, arity=k)

    def label(self) -> str:
        conditions = " and ".join(c.describe(self.columns)
                                  for c in self.comparisons)
        return f"Domain^{len(self.columns)} [{conditions}] -> {self._layout()}"


@dataclass(frozen=True)
class Empty(Plan):
    """The empty relation (the relational encoding of *false*)."""

    columns: tuple[str, ...]

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        return IndexedRelation(arity=len(self.columns))

    def label(self) -> str:
        return f"Empty -> {self._layout()}"


@dataclass(frozen=True)
class Select(Plan):
    """The rows of the child satisfying every comparison."""

    child: Plan
    comparisons: tuple[Comparison, ...]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        size = context.structure.size
        comparisons = self.comparisons
        return self.child.execute(context).select(
            lambda row: all(c.evaluate(row, size) for c in comparisons)
        )

    def label(self) -> str:
        conditions = " and ".join(c.describe(self.child.columns)
                                  for c in self.comparisons)
        return f"Select [{conditions}] -> {self._layout()}"


@dataclass(frozen=True)
class Project(Plan):
    """The projection onto the named columns (which also reorders;
    duplicate result rows collapse, giving ``exists`` its semantics)."""

    child: Plan
    columns: tuple[str, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        source = self.child.columns
        indices = tuple(source.index(name) for name in self.columns)
        relation = self.child.execute(context)
        if len(indices) == len(source):
            # A pure column permutation (the layout-canonicalisation case):
            # no rows can collapse, so take the validated rename fast path.
            return relation.rename(indices)
        return relation.project(indices)

    def label(self) -> str:
        return f"Project -> {self._layout()}"


@dataclass(frozen=True)
class Rename(Plan):
    """Pure column relabeling: same rows, new names (how an atom's
    positional columns take on the atom's variable names)."""

    child: Plan
    columns: tuple[str, ...]

    _materializes = False

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        return self.child.execute(context)

    def label(self) -> str:
        return f"Rename -> {self._layout()}"


@dataclass(frozen=True)
class Join(Plan):
    """The natural join on the shared column names (a cross product when
    none are shared) — conjunction, set-at-a-time.

    The probe side is the right operand's *persistent* column index
    (:meth:`~repro.core.relalg.IndexedRelation.index` /
    :meth:`~repro.core.relalg.IndexedRelation.index_on` for composite
    keys), so a relation reused across joins or fixed-point rounds —
    a :class:`Shared` subplan — is indexed once, not once per execution.
    """

    left: Plan
    right: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        left = self.left.columns
        return left + tuple(c for c in self.right.columns if c not in left)

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        left_relation = self.left.execute(context)
        right_relation = self.right.execute(context)
        probe = _probe_scaffolding(self.left.columns, self.right.columns,
                                   right_relation)
        if probe is None:
            return left_relation.product(right_relation)
        index, key_of, keep = probe
        if context.stats is not None:
            context.stats.index_probes += len(left_relation)
        result = IndexedRelation(arity=len(self.columns))
        empty: frozenset = frozenset()
        governor = context.governor
        if governor is None:
            for row in left_relation.rows:
                for match in index.get(key_of(row), empty):
                    result.add(row + tuple(match[i] for i in keep))
            return result
        # Governed probe loop: an amortized deadline check every chunk of
        # probes, so a pathological join observes cancellation mid-node.
        countdown = _PROBE_CHUNK
        for row in left_relation.rows:
            countdown -= 1
            if countdown <= 0:
                countdown = _PROBE_CHUNK
                governor.check_time()
            for match in index.get(key_of(row), empty):
                result.add(row + tuple(match[i] for i in keep))
        return result

    def label(self) -> str:
        shared = [c for c in self.right.columns if c in self.left.columns]
        on = ", ".join(shared) if shared else "nothing: cross"
        return f"Join on [{on}] -> {self._layout()}"


@dataclass(frozen=True)
class JoinProject(Plan):
    """A natural join that emits only the named output columns — the
    optimizer's fusion of ``Project(Join(left, right))``.

    The combined rows are never materialized: each probe hit builds the
    projected row directly and duplicates collapse as they are emitted, so
    a join whose intermediate result is ``|L|·deg`` rows but whose
    projection is ``n^2``-bounded (the ``exists z`` composition pattern)
    skips a full materialize-then-project pass.
    """

    left: Plan
    right: Plan
    columns: tuple[str, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        left_columns, right_columns = self.left.columns, self.right.columns
        combined = left_columns + tuple(c for c in right_columns
                                        if c not in left_columns)
        out = tuple(combined.index(c) for c in self.columns)
        left_relation = self.left.execute(context)
        right_relation = self.right.execute(context)
        rows: set[tuple] = set()
        probe = _probe_scaffolding(left_columns, right_columns, right_relation)
        if probe is None:
            for row in left_relation.rows:
                for match in right_relation.rows:
                    full = row + match
                    rows.add(tuple(full[i] for i in out))
            return IndexedRelation.adopt(rows, arity=len(self.columns))
        index, key_of, keep = probe
        if context.stats is not None:
            context.stats.index_probes += len(left_relation)
        add = rows.add
        governor = context.governor
        if governor is None:
            for row in left_relation.rows:
                match_rows = index.get(key_of(row))
                if match_rows:
                    for match in match_rows:
                        full = row + tuple(match[i] for i in keep)
                        add(tuple(full[i] for i in out))
            return IndexedRelation.adopt(rows, arity=len(self.columns))
        countdown = _PROBE_CHUNK
        for row in left_relation.rows:
            countdown -= 1
            if countdown <= 0:
                countdown = _PROBE_CHUNK
                governor.check_time()
            match_rows = index.get(key_of(row))
            if match_rows:
                for match in match_rows:
                    full = row + tuple(match[i] for i in keep)
                    add(tuple(full[i] for i in out))
        return IndexedRelation.adopt(rows, arity=len(self.columns))

    def label(self) -> str:
        shared = [c for c in self.right.columns if c in self.left.columns]
        on = ", ".join(shared) if shared else "nothing: cross"
        return f"JoinProject on [{on}] -> {self._layout()}"


#: Rows probed between deadline checks inside a governed join loop.
_PROBE_CHUNK = 4096


def _probe_scaffolding(left_columns: tuple[str, ...],
                       right_columns: tuple[str, ...],
                       right_relation: IndexedRelation):
    """The natural-join probe machinery shared by :class:`Join` and
    :class:`JoinProject`: ``None`` when no columns are shared (a cross
    product), else ``(index, key_of, keep)`` — the right side's
    *persistent* single- or composite-key index, the key extractor for
    left rows, and the right-column positions to append."""
    shared = tuple(c for c in right_columns if c in left_columns)
    if not shared:
        return None
    # Corruption is detectable by construction: the smuggled empty row
    # breaks the index build (IndexError) before any result row exists,
    # so the fault surfaces as a clean internal error, never a wrong join.
    right_relation = chaos_point(
        "relalg.join.probe", right_relation,
        corrupt=lambda relation: IndexedRelation.adopt(
            set(relation.rows) | {()}, arity=relation.arity))
    left_key = tuple(left_columns.index(c) for c in shared)
    right_key = tuple(right_columns.index(c) for c in shared)
    keep = tuple(i for i, c in enumerate(right_columns)
                 if c not in left_columns)
    if len(right_key) == 1:
        index = right_relation.index(right_key[0])
        left_pos = left_key[0]

        def key_of(row: tuple):
            return row[left_pos]
    else:
        index = right_relation.index_on(right_key)

        def key_of(row: tuple):
            return tuple(row[i] for i in left_key)

    return index, key_of, keep


def _key_indices(left: Plan, right: Plan) -> tuple[int, ...]:
    """The positions in ``left`` of ``right``'s columns, in right order —
    the probe key of the semi/antijoin kernels (which require the right
    columns to be a subset of the left's)."""
    return tuple(left.columns.index(c) for c in right.columns)


@dataclass(frozen=True)
class SemiJoin(Plan):
    """The rows of ``left`` whose projection onto ``right.columns`` is a
    row of ``right`` — a natural join that adds no columns, executed as a
    membership probe (no combined rows, no index build).  Requires
    ``right.columns ⊆ left.columns``; when they are equal this is plain
    set intersection."""

    left: Plan
    right: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        left = self.left.execute(context)
        right = self.right.execute(context)
        if context.stats is not None:
            context.stats.index_probes += len(left)
        return left.semijoin(right, _key_indices(self.left, self.right))

    def label(self) -> str:
        on = ", ".join(self.right.columns)
        return f"SemiJoin on [{on}] -> {self._layout()}"


@dataclass(frozen=True)
class AntiJoin(Plan):
    """The rows of ``left`` whose projection onto ``right.columns`` is
    *not* a row of ``right`` — how the optimizer executes a negation whose
    active-domain complement (``Difference(DomainProduct, φ)``) is
    immediately joined against an aligned relation: probe ``φ`` directly
    and never materialize the complement.  Requires ``right.columns ⊆
    left.columns``."""

    left: Plan
    right: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        left = self.left.execute(context)
        right = self.right.execute(context)
        if context.stats is not None:
            context.stats.index_probes += len(left)
        return left.antijoin(right, _key_indices(self.left, self.right))

    def label(self) -> str:
        on = ", ".join(self.right.columns)
        return f"AntiJoin on [{on}] -> {self._layout()}"


@dataclass(frozen=True)
class Product(Plan):
    """The cross product of two plans with disjoint columns (how a plan is
    widened with unconstrained domain columns)."""

    left: Plan
    right: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns + self.right.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        return self.left.execute(context).product(self.right.execute(context))

    def label(self) -> str:
        return f"Product -> {self._layout()}"


@dataclass(frozen=True)
class Union(Plan):
    """Set union of layout-aligned operands — disjunction."""

    operands: tuple[Plan, ...]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.operands[0].columns

    def children(self) -> tuple[Plan, ...]:
        return self.operands

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        result = IndexedRelation(arity=len(self.columns))
        for operand in self.operands:
            result.update(operand.execute(context).rows)
        return result

    def label(self) -> str:
        return f"Union of {len(self.operands)} -> {self._layout()}"


@dataclass(frozen=True)
class Difference(Plan):
    """Left rows absent from right (layouts aligned by the compiler) — the
    active-domain complement when the left side is a :class:`DomainProduct`."""

    left: Plan
    right: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        return self.left.execute(context).difference(self.right.execute(context))

    def label(self) -> str:
        return f"Difference -> {self._layout()}"


@dataclass(frozen=True)
class CountSelect(Plan):
    """The counting quantifier ``(exists >= threshold variable) child``:
    group the child's rows by every column but ``variable`` and keep the
    groups with at least ``threshold`` witnesses.

    ``threshold`` is an integer or ``"half"`` (``ceil(n / 2)``, resolved
    against the executing structure).  A threshold of zero or less is
    vacuously true: the result is the full domain product over the
    remaining columns, witnesses or not.
    """

    child: Plan
    variable: str
    threshold: int | str

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(c for c in self.child.columns if c != self.variable)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        size = context.structure.size
        threshold = self.threshold
        if threshold == "half":
            threshold = (size + 1) // 2
        threshold = int(threshold)
        if threshold <= 0:
            return DomainProduct(self.columns)._run(context)
        group_indices = tuple(i for i, c in enumerate(self.child.columns)
                              if c != self.variable)
        counts: dict[tuple, int] = {}
        for row in self.child.execute(context).rows:
            group = tuple(row[i] for i in group_indices)
            counts[group] = counts.get(group, 0) + 1
        return IndexedRelation(
            (group for group, count in counts.items() if count >= threshold),
            arity=len(self.columns),
        )

    def label(self) -> str:
        return (f"Count group by {self._layout()} "
                f"having >= {self.threshold} {self.variable}")


def _positional(count: int) -> tuple[str, ...]:
    """Fresh positional column names (``$0``, ``$1``, ...) for nodes whose
    output columns are not yet tied to formula variables — the ``$`` prefix
    cannot collide with user variable names coming out of the parser-facing
    helpers."""
    return tuple(f"${i}" for i in range(count))


@dataclass(frozen=True)
class Fixpoint(Plan):
    """The least fixed point of the body plan.

    Each round executes ``body`` (whose columns are exactly ``variables``,
    in order) under a context binding the auxiliary ``relation`` to the
    rows accumulated so far; only the new rows survive a round, and the
    iteration stops on an empty delta.  Rows once derived stay — the
    inflationary reading the tuple evaluator's stage iteration implements —
    so all backends agree even on non-monotone bodies.

    ``delta_body`` (attached by the optimizer's semi-naive rewrite) is the
    body differentiated with respect to ``relation``: a plan that, executed
    with the frontier bound for :class:`DeltaScan` nodes, derives every row
    the full body could newly derive.  When present (and the context is
    semi-naive), round one runs the full body against the empty relation
    and every later round runs only ``delta_body`` — O(Δ) work per round
    for linear bodies.  A ``delta_body`` that *is* the body (the
    optimizer's fallback for non-differentiable bodies: the auxiliary under
    a ``Difference`` right side, a ``CountSelect``, or a nested fixed
    point) degenerates to exactly the naive per-round cost.  Without
    ``delta_body`` the node iterates through the engine's fixed-point
    kernel, as compiled.
    """

    relation: str
    variables: tuple[str, ...]
    body: Plan
    delta_body: Plan | None = None

    @property
    def columns(self) -> tuple[str, ...]:
        return _positional(len(self.variables))

    def children(self) -> tuple[Plan, ...]:
        if self.delta_body is not None:
            return (self.body, self.delta_body)
        return (self.body,)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        if self.delta_body is not None and context.seminaive:
            return self._run_delta(context)
        body = self.body
        relation = self.relation
        arity = len(self.variables)

        def delta_step(_delta: frozenset, total: set) -> frozenset:
            if context.stats is not None:
                context.stats.fixpoint_rounds += 1
            stage = context.with_auxiliary(relation, frozenset(total))
            return chaos_point("plan.fixpoint.round", body.execute(stage).rows,
                               corrupt=lambda rows: rows | {(-1,) * (arity + 1)})

        rows = least_fixpoint(initial=frozenset(), delta_step=delta_step,
                              seminaive=context.seminaive,
                              governor=context.governor)
        return IndexedRelation(rows, arity=arity)

    def _run_delta(self, context: ExecutionContext) -> IndexedRelation:
        """The delta-rewritten loop: total/delta bookkeeping lives here (not
        in the engine kernel) so each round can bind both the accumulated
        relation and the frontier, and record per-round work."""
        relation, stats = self.relation, context.stats
        governor, arity = context.governor, len(self.variables)
        store: dict = {}  # this fixed point's Cumulative accumulators

        def corrupt(rows):
            return set(rows) | {(-1,) * (arity + 1)}

        def round_rows(before: int) -> None:
            if stats is not None:
                stats.fixpoint_rounds += 1
                stats.fixpoint_round_rows.append(stats.rows_materialized - before)

        def resident(total_rows: int, frontier_rows: int) -> None:
            # Working set per round: the accumulated relation plus the live
            # frontier (the O(frontier) headroom over the final result).
            if stats is not None:
                stats.note_resident(rows=total_rows + frontier_rows)

        if governor is not None:
            governor.note_round()
        before = 0 if stats is None else stats.rows_materialized
        stage = context.with_auxiliary(relation, frozenset(), fresh_round=True,
                                       accumulators=store)
        total = set(chaos_point("plan.fixpoint.round",
                                self.body.execute(stage).rows, corrupt=corrupt))
        round_rows(before)
        delta = frozenset(total)
        resident(len(total), len(delta))
        while delta:
            if governor is not None:
                governor.note_round()
            before = 0 if stats is None else stats.rows_materialized
            stage = context.with_auxiliary(relation, frozenset(total), delta,
                                           fresh_round=True,
                                           accumulators=store)
            derived = chaos_point("plan.fixpoint.round",
                                  self.delta_body.execute(stage).rows,
                                  corrupt=corrupt)
            round_rows(before)
            delta = frozenset(row for row in derived if row not in total)
            total.update(delta)
            resident(len(total), len(delta))
        return IndexedRelation(total, arity=arity)

    def label(self) -> str:
        strategy = " [delta]" if self.delta_body is not None else ""
        return (f"Fixpoint {self.relation}({', '.join(self.variables)})"
                f"{strategy} -> {self._layout()}")


@dataclass(frozen=True)
class Closure(Plan):
    """The reflexive transitive closure of the k-tuple edge relation the
    body plan computes (its columns: k source then k target columns),
    through the engine's closure kernel.

    ``deterministic`` applies the DTC reading — an edge counts only when
    its source has a unique successor.  The closure's domain is the full
    ``universe^k`` (every k-tuple is reflexively related to itself), like
    the tuple evaluator's edge sweep.
    """

    body: Plan
    k: int
    deterministic: bool

    @property
    def columns(self) -> tuple[str, ...]:
        return _positional(2 * self.k)

    def children(self) -> tuple[Plan, ...]:
        return (self.body,)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        k = self.k
        governor = context.governor
        if governor is not None:
            # The successor map alone enumerates universe^k keys; refuse it
            # up front when the row budget cannot cover the closure.
            governor.check_rows_ahead(len(context.structure.universe) ** k)
        edges = self.body.execute(context)
        successors: dict[tuple, list[tuple]] = {
            source: [] for source in cartesian(context.structure.universe,
                                               repeat=k)
        }
        for row in edges.rows:
            successors[row[:k]].append(row[k:])
        closure = transitive_closure(successors,
                                     deterministic=self.deterministic,
                                     seminaive=context.seminaive,
                                     governor=governor)
        return IndexedRelation.adopt(
            {source + target for source, target in closure}, arity=2 * k)

    def label(self) -> str:
        operator = "DTC" if self.deterministic else "TC"
        return f"Closure[{operator}, k={self.k}] -> {self._layout()}"


@dataclass(frozen=True)
class Shared(Plan):
    """A common subplan, executed at most once per memo scope.

    The optimizer wraps auxiliary-free subtrees that occur several times
    (structural hashing: plans are frozen dataclasses, so equal subtrees
    are equal keys) or sit inside a fixed-point body (round-invariant
    work).  The first execution stores the result relation in the
    context's memo; later executions — including from other ``Shared``
    wrappers around an equal subtree, and from subsequent fixed-point
    rounds, whose stage contexts carry the same memo — return it directly.

    ``volatile`` marks a shared subtree that *does* read auxiliary (or
    frontier) relations: its result is only valid while the stage bindings
    hold, so it caches in the context's *round* memo, which a
    delta-rewritten fixed point replaces every round — deduplicating, say,
    the two occurrences of the stage relation's reversal within one body
    evaluation, without ever leaking a value across rounds.

    Sharing is sound because consumers never mutate their operand
    relations (building an index on one is a benign cache fill).  Without
    the corresponding memo on the context the wrapper is transparent.
    """

    child: Plan
    volatile: bool = False

    _materializes = False

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        memo = context.round_memo if self.volatile else context.memo
        if memo is None:
            return self.child.execute(context)
        result = memo.get(self.child)
        if result is None:
            result = self.child.execute(context)
            memo[self.child] = result
        elif context.stats is not None:
            context.stats.shared_hits += 1
        return result

    def label(self) -> str:
        kind = "Shared[round]" if self.volatile else "Shared"
        return f"{kind} -> {self._layout()}"


@dataclass(frozen=True)
class Cumulative(Plan):
    """A subplan *monotone* in the enclosing fixed point's relation,
    maintained incrementally across rounds.

    The first delta round executes ``full`` and stores the relation in the
    fixed point's accumulator store; every later round executes only
    ``delta`` (the optimizer's derivative of ``full``) and unions the new
    rows in.  For a monotone subplan this is exact —
    ``full(Tᵢ) = full(Tᵢ₋₁) ∪ d(full)(Δᵢ, Tᵢ)``, since the derivative
    contains everything newly derivable and nothing outside the new value
    — so the stage relation's reversal, say, is rebuilt from its frontier
    in O(Δ) instead of re-joined from scratch each round.  Outside a
    delta-rewritten fixed point (no store on the context) the node
    executes ``full`` transparently.
    """

    full: Plan
    delta: Plan

    _materializes = False

    @property
    def columns(self) -> tuple[str, ...]:
        return self.full.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.full, self.delta)

    def _run(self, context: ExecutionContext) -> IndexedRelation:
        store = context.accumulators
        if store is None:
            return self.full.execute(context)
        accumulated = store.get(self)
        if accumulated is None:
            accumulated = self.full.execute(context)
            store[self] = accumulated
        else:
            accumulated.update(self.delta.execute(context).rows)
        return accumulated

    def label(self) -> str:
        return f"Cumulative -> {self._layout()}"
