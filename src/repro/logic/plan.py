"""The relational-plan IR: set-at-a-time evaluation for the logic layer.

The classic FO = relational-algebra correspondence (the descriptive-
complexity bridge the paper's Figure 1 rests on) says every first-order
formula — and, with fixed-point nodes, every FO(+TC/DTC/LFP) formula —
denotes a relational-algebra expression over the input structure.  This
module is the *plan* side of that correspondence: a small tree IR of
relational operators, each node knowing its output **column layout** (a
tuple of variable names) and how to :meth:`~Plan.execute` itself into an
:class:`~repro.core.relalg.IndexedRelation` over the structure's ordered
universe.

The nodes:

===================  =======================================================
:class:`RelationScan`  an input relation of the structure
:class:`AuxScan`       an auxiliary (fixed-point stage) relation
:class:`DomainProduct` the full active-domain product ``universe^k``
:class:`Empty`         the empty relation (``false``)
:class:`Select`        rows satisfying constant/column comparisons
:class:`Project`       column subset (with reorder; duplicates collapse)
:class:`Rename`        pure column relabeling, no row change
:class:`Join`          natural join on the shared column names
:class:`Product`       cross product against disjoint columns
:class:`Union`         set union of layout-aligned operands
:class:`Difference`    set difference / antijoin on all columns
:class:`CountSelect`   grouped counting (the ``exists>=t`` quantifier)
:class:`Fixpoint`      LFP via the engine's semi-naive fixed-point kernel
:class:`Closure`       TC/DTC via the engine's semi-naive closure kernel
===================  =======================================================

Negation and universal quantification compile (in
:mod:`repro.logic.compile`) to :class:`Difference` against a
:class:`DomainProduct` — the active-domain complement rule — and the two
fixed-point nodes reuse the PR 3 delta-propagating kernels through
:func:`repro.core.engine.least_fixpoint` / ``transitive_closure``, so the
whole logic layer now bottoms out in the same relational machinery as the
query baselines.

Every node renders itself through :meth:`Plan.explain` — an indented tree
of one-line labels — which the compiler's ``explain()`` helper pairs with
the formula pretty-printer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as cartesian
from typing import Iterable, Mapping

from repro.core.engine import least_fixpoint, transitive_closure
from repro.core.relalg import IndexedRelation
from repro.structures.structure import Structure

__all__ = [
    "ExecutionContext",
    "Col",
    "Const",
    "Comparison",
    "Plan",
    "RelationScan",
    "AuxScan",
    "DomainProduct",
    "Empty",
    "Select",
    "Project",
    "Rename",
    "Join",
    "Product",
    "Union",
    "Difference",
    "CountSelect",
    "Fixpoint",
    "Closure",
]


# ----------------------------------------------------------------- context


@dataclass(frozen=True)
class ExecutionContext:
    """Everything a plan needs at run time: the structure (universe and
    input relations), the auxiliary relations in scope (fixed-point stages
    and caller-supplied interpretations), and the fixed-point strategy."""

    structure: Structure
    auxiliary: Mapping[str, frozenset] = field(default_factory=dict)
    seminaive: bool = True

    def with_auxiliary(self, name: str, rows: frozenset) -> "ExecutionContext":
        """A child context with one auxiliary relation rebound (the per-stage
        view a :class:`Fixpoint` body executes under)."""
        overlay = dict(self.auxiliary)
        overlay[name] = rows
        return ExecutionContext(self.structure, overlay, self.seminaive)


# ------------------------------------------------------------- comparisons


@dataclass(frozen=True)
class Col:
    """A reference to a column of the node's input, by position."""

    index: int


@dataclass(frozen=True)
class Const:
    """One of the two constant symbols: ``"zero"`` or ``"max"`` (n-1)."""

    which: str


_OPERATORS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "leq": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
}

_OPERATOR_SYMBOLS = {"eq": "=", "ne": "!=", "leq": "<=", "gt": ">"}


@dataclass(frozen=True)
class Comparison:
    """A selection predicate ``left op right`` over columns and constants.

    Comparisons are data, not closures, so plans stay hashable, printable
    and structure-independent (``max`` resolves against the executing
    structure's size).
    """

    op: str  # "eq" | "ne" | "leq" | "gt"
    left: Col | Const
    right: Col | Const

    def evaluate(self, row: tuple, size: int) -> bool:
        return _OPERATORS[self.op](self._value(self.left, row, size),
                                   self._value(self.right, row, size))

    @staticmethod
    def _value(ref: Col | Const, row: tuple, size: int) -> int:
        if isinstance(ref, Col):
            return row[ref.index]
        return 0 if ref.which == "zero" else size - 1

    def describe(self, columns: tuple[str, ...]) -> str:
        def name(ref: Col | Const) -> str:
            if isinstance(ref, Col):
                return columns[ref.index]
            return "0" if ref.which == "zero" else "max"

        return f"{name(self.left)} {_OPERATOR_SYMBOLS[self.op]} {name(self.right)}"


# ------------------------------------------------------------------- nodes


class Plan:
    """Base class of plan nodes.

    Every node exposes ``columns`` (its output layout: one variable name
    per column), ``children()`` (sub-plans, for traversal),
    :meth:`execute` and a one-line :meth:`label` that :meth:`explain`
    assembles into an indented tree.
    """

    columns: tuple[str, ...]

    def children(self) -> tuple["Plan", ...]:
        return ()

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    def explain(self) -> str:
        """The plan as an indented tree, one node per line."""
        lines: list[str] = []

        def walk(node: "Plan", depth: int) -> None:
            lines.append("  " * depth + node.label())
            for child in node.children():
                walk(child, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    def _layout(self) -> str:
        return f"({', '.join(self.columns)})"


@dataclass(frozen=True)
class RelationScan(Plan):
    """Scan an input relation of the structure."""

    name: str
    columns: tuple[str, ...]

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        rows = context.structure.relation(self.name)
        return _scan(rows, len(self.columns))

    def label(self) -> str:
        return f"Scan {self.name} -> {self._layout()}"


@dataclass(frozen=True)
class AuxScan(Plan):
    """Scan an auxiliary relation (a fixed-point stage, or a caller-supplied
    interpretation); unknown names read as empty, like the tuple evaluator.

    Caller-supplied auxiliary rows are filtered to the structure's
    universe: the tuple evaluator only ever *tests* in-universe tuples, so
    out-of-range rows are unobservable there and must stay unobservable
    set-at-a-time (they would otherwise leak through joins, counts and the
    closure's successor map)."""

    name: str
    columns: tuple[str, ...]

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        rows = context.auxiliary.get(self.name, frozenset())
        arity = len(self.columns)
        size = context.structure.size
        return IndexedRelation(
            (row for row in rows
             if len(row) == arity and all(0 <= value < size for value in row)),
            arity=arity,
        )

    def label(self) -> str:
        return f"ScanAux {self.name} -> {self._layout()}"


def _scan(rows: Iterable[tuple], arity: int) -> IndexedRelation:
    # An atom whose term count disagrees with the stored arity holds of no
    # tuple (the tuple evaluator's membership test is silently false), so
    # mismatched rows are filtered rather than raised on.
    return IndexedRelation((row for row in rows if len(row) == arity),
                           arity=arity)


@dataclass(frozen=True)
class DomainProduct(Plan):
    """The full active-domain product ``universe^k`` — the complement space
    for negation/universal quantification and the padding for columns a
    sub-formula leaves unconstrained.  Zero columns give the unit relation
    ``{()}`` (the relational encoding of *true*)."""

    columns: tuple[str, ...]

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        universe = context.structure.universe
        return IndexedRelation(cartesian(universe, repeat=len(self.columns)),
                               arity=len(self.columns))

    def label(self) -> str:
        return f"Domain^{len(self.columns)} -> {self._layout()}"


@dataclass(frozen=True)
class Empty(Plan):
    """The empty relation (the relational encoding of *false*)."""

    columns: tuple[str, ...]

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        return IndexedRelation(arity=len(self.columns))

    def label(self) -> str:
        return f"Empty -> {self._layout()}"


@dataclass(frozen=True)
class Select(Plan):
    """The rows of the child satisfying every comparison."""

    child: Plan
    comparisons: tuple[Comparison, ...]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        size = context.structure.size
        comparisons = self.comparisons
        return self.child.execute(context).select(
            lambda row: all(c.evaluate(row, size) for c in comparisons)
        )

    def label(self) -> str:
        conditions = " and ".join(c.describe(self.child.columns)
                                  for c in self.comparisons)
        return f"Select [{conditions}] -> {self._layout()}"


@dataclass(frozen=True)
class Project(Plan):
    """The projection onto the named columns (which also reorders;
    duplicate result rows collapse, giving ``exists`` its semantics)."""

    child: Plan
    columns: tuple[str, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        source = self.child.columns
        indices = tuple(source.index(name) for name in self.columns)
        relation = self.child.execute(context)
        if len(indices) == len(source):
            # A pure column permutation (the layout-canonicalisation case):
            # no rows can collapse, so take the validated rename fast path.
            return relation.rename(indices)
        return relation.project(indices)

    def label(self) -> str:
        return f"Project -> {self._layout()}"


@dataclass(frozen=True)
class Rename(Plan):
    """Pure column relabeling: same rows, new names (how an atom's
    positional columns take on the atom's variable names)."""

    child: Plan
    columns: tuple[str, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        return self.child.execute(context)

    def label(self) -> str:
        return f"Rename -> {self._layout()}"


@dataclass(frozen=True)
class Join(Plan):
    """The natural join on the shared column names (a cross product when
    none are shared) — conjunction, set-at-a-time."""

    left: Plan
    right: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        left = self.left.columns
        return left + tuple(c for c in self.right.columns if c not in left)

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        left_columns, right_columns = self.left.columns, self.right.columns
        shared = tuple(c for c in right_columns if c in left_columns)
        left_relation = self.left.execute(context)
        right_relation = self.right.execute(context)
        if not shared:
            return left_relation.product(right_relation)
        left_key = tuple(left_columns.index(c) for c in shared)
        right_key = tuple(right_columns.index(c) for c in shared)
        keep = tuple(i for i, c in enumerate(right_columns)
                     if c not in left_columns)
        index: dict[tuple, list[tuple]] = {}
        for row in right_relation.rows:
            key = tuple(row[i] for i in right_key)
            index.setdefault(key, []).append(tuple(row[i] for i in keep))
        result = IndexedRelation(arity=len(self.columns))
        for row in left_relation.rows:
            key = tuple(row[i] for i in left_key)
            for suffix in index.get(key, ()):
                result.add(row + suffix)
        return result

    def label(self) -> str:
        shared = [c for c in self.right.columns if c in self.left.columns]
        on = ", ".join(shared) if shared else "nothing: cross"
        return f"Join on [{on}] -> {self._layout()}"


@dataclass(frozen=True)
class Product(Plan):
    """The cross product of two plans with disjoint columns (how a plan is
    widened with unconstrained domain columns)."""

    left: Plan
    right: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns + self.right.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        return self.left.execute(context).product(self.right.execute(context))

    def label(self) -> str:
        return f"Product -> {self._layout()}"


@dataclass(frozen=True)
class Union(Plan):
    """Set union of layout-aligned operands — disjunction."""

    operands: tuple[Plan, ...]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.operands[0].columns

    def children(self) -> tuple[Plan, ...]:
        return self.operands

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        result = IndexedRelation(arity=len(self.columns))
        for operand in self.operands:
            result.update(operand.execute(context).rows)
        return result

    def label(self) -> str:
        return f"Union of {len(self.operands)} -> {self._layout()}"


@dataclass(frozen=True)
class Difference(Plan):
    """Left rows absent from right (layouts aligned by the compiler) — the
    active-domain complement when the left side is a :class:`DomainProduct`."""

    left: Plan
    right: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        return self.left.execute(context).difference(self.right.execute(context))

    def label(self) -> str:
        return f"Difference -> {self._layout()}"


@dataclass(frozen=True)
class CountSelect(Plan):
    """The counting quantifier ``(exists >= threshold variable) child``:
    group the child's rows by every column but ``variable`` and keep the
    groups with at least ``threshold`` witnesses.

    ``threshold`` is an integer or ``"half"`` (``ceil(n / 2)``, resolved
    against the executing structure).  A threshold of zero or less is
    vacuously true: the result is the full domain product over the
    remaining columns, witnesses or not.
    """

    child: Plan
    variable: str
    threshold: int | str

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(c for c in self.child.columns if c != self.variable)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        size = context.structure.size
        threshold = self.threshold
        if threshold == "half":
            threshold = (size + 1) // 2
        threshold = int(threshold)
        if threshold <= 0:
            return DomainProduct(self.columns).execute(context)
        group_indices = tuple(i for i, c in enumerate(self.child.columns)
                              if c != self.variable)
        counts: dict[tuple, int] = {}
        for row in self.child.execute(context).rows:
            group = tuple(row[i] for i in group_indices)
            counts[group] = counts.get(group, 0) + 1
        return IndexedRelation(
            (group for group, count in counts.items() if count >= threshold),
            arity=len(self.columns),
        )

    def label(self) -> str:
        return (f"Count group by {self._layout()} "
                f"having >= {self.threshold} {self.variable}")


def _positional(count: int) -> tuple[str, ...]:
    """Fresh positional column names (``$0``, ``$1``, ...) for nodes whose
    output columns are not yet tied to formula variables — the ``$`` prefix
    cannot collide with user variable names coming out of the parser-facing
    helpers."""
    return tuple(f"${i}" for i in range(count))


@dataclass(frozen=True)
class Fixpoint(Plan):
    """The least fixed point of the body plan, iterated through the
    engine's fixed-point kernel.

    Each round executes ``body`` (whose columns are exactly ``variables``,
    in order) under a context binding the auxiliary ``relation`` to the
    rows accumulated so far; the kernel keeps only the new rows and stops
    on an empty delta (semi-naive) or a stable relation (naive, when the
    context says so).  Rows once derived stay — the inflationary reading
    the tuple evaluator's stage iteration implements — so the two backends
    agree even on non-monotone bodies.
    """

    relation: str
    variables: tuple[str, ...]
    body: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        return _positional(len(self.variables))

    def children(self) -> tuple[Plan, ...]:
        return (self.body,)

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        body = self.body
        relation = self.relation

        def delta_step(_delta: frozenset, total: set) -> frozenset:
            stage = context.with_auxiliary(relation, frozenset(total))
            return body.execute(stage).rows

        rows = least_fixpoint(initial=frozenset(), delta_step=delta_step,
                              seminaive=context.seminaive)
        return IndexedRelation(rows, arity=len(self.variables))

    def label(self) -> str:
        return (f"Fixpoint {self.relation}({', '.join(self.variables)}) "
                f"-> {self._layout()}")


@dataclass(frozen=True)
class Closure(Plan):
    """The reflexive transitive closure of the k-tuple edge relation the
    body plan computes (its columns: k source then k target columns),
    through the engine's closure kernel.

    ``deterministic`` applies the DTC reading — an edge counts only when
    its source has a unique successor.  The closure's domain is the full
    ``universe^k`` (every k-tuple is reflexively related to itself), like
    the tuple evaluator's edge sweep.
    """

    body: Plan
    k: int
    deterministic: bool

    @property
    def columns(self) -> tuple[str, ...]:
        return _positional(2 * self.k)

    def children(self) -> tuple[Plan, ...]:
        return (self.body,)

    def execute(self, context: ExecutionContext) -> IndexedRelation:
        k = self.k
        edges = self.body.execute(context)
        successors: dict[tuple, list[tuple]] = {
            source: [] for source in cartesian(context.structure.universe,
                                               repeat=k)
        }
        for row in edges.rows:
            successors[row[:k]].append(row[k:])
        closure = transitive_closure(successors,
                                     deterministic=self.deterministic,
                                     seminaive=context.seminaive)
        return IndexedRelation((source + target for source, target in closure),
                               arity=2 * k)

    def label(self) -> str:
        operator = "DTC" if self.deterministic else "TC"
        return f"Closure[{operator}, k={self.k}] -> {self._layout()}"
