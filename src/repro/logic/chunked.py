"""The chunked plan interpreter: columnar evaluation past the dense width.

The per-plan code generator (:mod:`repro.logic.codegen`) targets the
dense payloads of :mod:`repro.core.columnar` — giant-int bitmask rows
whose byte cost is O(universe) *per source*.  Past
:data:`~repro.core.columnar.DENSE_WIDTH_THRESHOLD` those rows cannot even
be allocated for sparse million-edge structures, so this module evaluates
the same plan IR a different way: an interpreter over machine-word
payloads.

Representations by arity (the ``kind`` tags of :class:`_Rel`):

* ``"0"`` — arity 0: the unit int (0 / 1).
* ``"b"`` — arity 1: one int bitset, O(n / 8) bytes (still cheap wide).
* ``"c"`` — arity 2, frozen: a CSR pair (``array('q')`` offsets +
  ``array('i')`` sorted targets) — what scans and the condensation
  closure produce, and what snapshots hand over zero-copy.
* ``"s"`` — arity 2, working: a sparse ``{source: set-of-targets}``
  dict — what unions / differences / fixpoint accumulation mutate.
* ``"t"`` — any other arity: the tuple-set of last resort.

The interpreter covers the closure pipeline completely — scans (with the
snapshot fast path), ``Closure`` via the SCC condensation kernel, the
single-source ``Select``-over-``Closure`` rewrite (a pinned endpoint
turns the full closure into one BFS), projections, boolean combinators,
semi-naive ``Fixpoint``.  Node shapes it does not cover (``universe**k``
products, ``k >= 2`` closures, exotic joins) raise
:class:`ChunkedUnsupported`, which the evaluation ladder absorbs as a
``DegradationEvent("columnar", "plan", ...)`` — correctness never depends
on this module, only speed and memory do.

Accounting matches the dense backend's stance: every materialized node
notes its row count (``Governor.note_rows`` + ``PlanStats``), closures
check ``check_rows_ahead`` before expanding, and the packed payloads
report structural bytes to ``Governor.note_bytes`` /
``PlanStats.note_resident`` so a ``max_bytes_resident`` budget bites.
"""

from __future__ import annotations

from repro.core.columnar import (
    bits_of_unary,
    closure_csr,
    csr_bytes,
    csr_of_pairs,
    csr_of_sparse,
    iter_bits,
    iter_csr_rows,
    reach_from_csr,
    sparse_of_csr,
    transpose_csr,
    _functional_csr,
)
from .plan import (
    AntiJoin,
    AuxScan,
    Closure,
    Col,
    Const,
    ConstrainedDomain,
    CountSelect,
    Cumulative,
    DeltaScan,
    Difference,
    DomainProduct,
    Empty,
    ExecutionContext,
    Fixpoint,
    Join,
    JoinProject,
    Plan,
    PlanStats,
    Product,
    Project,
    RelationScan,
    Rename,
    Select,
    SemiJoin,
    Shared,
    Union,
)

__all__ = ["ChunkedUnsupported", "execute_chunked"]


class ChunkedUnsupported(ValueError):
    """A plan shape the chunked interpreter does not cover (the ladder
    degrades to the set-at-a-time plan backend on catching this)."""


# ------------------------------------------------------------ the value form


class _Rel:
    """One relation in the chunked interpreter's representation union."""

    __slots__ = ("arity", "kind", "payload")

    def __init__(self, arity: int, kind: str, payload):
        self.arity = arity
        self.kind = kind
        self.payload = payload

    def count(self) -> int:
        kind, payload = self.kind, self.payload
        if kind == "0":
            return 1 if payload else 0
        if kind == "b":
            return payload.bit_count()
        if kind == "c":
            return len(payload[1])
        if kind == "s":
            return sum(len(row) for row in payload.values())
        return len(payload)

    def struct_bytes(self) -> int:
        """Structural byte estimate of the packed payload (words held,
        not Python object overhead — deterministic, hence testable)."""
        kind, payload = self.kind, self.payload
        if kind == "b":
            return payload.bit_length() // 8 + 1
        if kind == "c":
            return csr_bytes(payload[0], payload[1])
        if kind == "s":
            return 8 * (len(payload) + self.count())
        if kind == "t":
            return 8 * self.arity * len(payload)
        return 0

    def sparse(self) -> dict:
        """The mutable arity-2 working form (converting from CSR)."""
        if self.kind == "s":
            return self.payload
        return sparse_of_csr(*self.payload)

    def rows(self) -> set:
        kind, payload = self.kind, self.payload
        if kind == "0":
            return {()} if payload else set()
        if kind == "b":
            return {(index,) for index in iter_bits(payload)}
        if kind == "c":
            return set(iter_csr_rows(payload[0], payload[1]))
        if kind == "s":
            return {(source, target) for source, row in payload.items()
                    for target in row}
        return set(payload)


def _rel_of_rows(rows, arity: int, n: int) -> _Rel:
    if arity == 0:
        return _Rel(0, "0", 1 if rows else 0)
    if arity == 1:
        return _Rel(1, "b", bits_of_unary(rows))
    if arity == 2:
        sparse: dict[int, set[int]] = {}
        for row in rows:
            if len(row) == 2:
                sparse.setdefault(row[0], set()).add(row[1])
        return _Rel(2, "s", sparse)
    return _Rel(arity, "t", {row for row in rows if len(row) == arity})


def _empty(arity: int) -> _Rel:
    if arity == 0:
        return _Rel(0, "0", 0)
    if arity == 1:
        return _Rel(1, "b", 0)
    if arity == 2:
        return _Rel(2, "s", {})
    return _Rel(arity, "t", set())


def _csr_of(rel: _Rel, n: int) -> tuple:
    """The CSR pair of an arity-2 relation (converting a sparse dict)."""
    if rel.kind == "c":
        return rel.payload
    return csr_of_sparse(rel.payload, n)


def _const_value(ref, n: int) -> int | None:
    if isinstance(ref, Const):
        return 0 if ref.which == "zero" else n - 1
    return None


# ------------------------------------------------------------- the evaluator


class _Interpreter:
    """One execution of one plan over one structure."""

    def __init__(self, structure, auxiliary, seminaive: bool,
                 stats: PlanStats | None, governor):
        self.n = structure.size
        self.structure = structure
        self.aux = dict(auxiliary or {})
        self.seminaive = seminaive
        self.stats = stats
        self.governor = governor
        # Fixpoint scope: relation name -> (total _Rel, delta _Rel | None).
        self.scope: dict[str, tuple[_Rel, _Rel | None]] = {}
        self.memo: dict[Plan, _Rel] = {}
        self.round_memo: dict[Plan, _Rel] = {}
        self.accumulators: dict[Plan, _Rel] | None = None

    # ------------------------------------------------------------ accounting

    def _note(self, rel: _Rel) -> None:
        count = rel.count()
        stats = self.stats
        if stats is not None:
            stats.rows_materialized += count
            if rel.kind in ("c", "s"):
                stats.note_resident(byte_count=rel.struct_bytes())
        governor = self.governor
        if governor is not None:
            governor.note_rows(count)
            if rel.kind in ("c", "s"):
                governor.note_bytes(rel.struct_bytes())
            governor.tick()

    def _check_ahead(self, count: int) -> None:
        if self.governor is not None:
            self.governor.check_rows_ahead(count)

    # -------------------------------------------------------------- dispatch

    def eval(self, node: Plan) -> _Rel:
        method = self._DISPATCH.get(type(node))
        if method is None:
            raise ChunkedUnsupported(
                f"chunked interpreter does not cover {type(node).__name__}")
        return method(self, node)

    # ----------------------------------------------------------------- scans

    def _permute(self, rel: _Rel, order) -> _Rel:
        if order is None or order == tuple(range(len(order))):
            return rel
        if rel.arity == 2:  # order == (1, 0): the converse
            offsets, targets = _csr_of(rel, self.n)
            return _Rel(2, "c", transpose_csr(offsets, targets, self.n))
        if rel.kind == "t":
            return _Rel(rel.arity, "t",
                        {tuple(row[i] for i in order) for row in rel.payload})
        return rel

    def _eval_relation_scan(self, node: RelationScan) -> _Rel:
        arity = len(node.columns)
        relation = self.structure.relation(node.name)
        # Snapshot relations expose their packed payloads directly — the
        # zero-copy path that makes a cold mmap load usable as-is.
        if arity == 2 and hasattr(relation, "csr_arrays"):
            rel = _Rel(2, "c", relation.csr_arrays())
        elif arity == 1 and hasattr(relation, "bitset"):
            rel = _Rel(1, "b", relation.bitset())
        elif arity == 2:
            sources, targets = [], []
            for row in relation:
                if len(row) == 2:
                    sources.append(row[0])
                    targets.append(row[1])
            rel = _Rel(2, "c", csr_of_pairs(sources, targets, self.n))
        else:
            rel = _rel_of_rows(relation, arity, self.n)
        rel = self._permute(rel, node.order)
        self._note(rel)
        return rel

    def _eval_aux_scan(self, node: AuxScan) -> _Rel:
        bound = self.scope.get(node.name)
        arity = len(node.columns)
        if bound is not None:
            total = bound[0]
            if total.arity != arity:
                return _empty(arity)
            return self._permute(total, node.order)
        n = self.n
        rows = [row for row in self.aux.get(node.name, ())
                if len(row) == arity
                and all(0 <= value < n for value in row)]
        rel = self._permute(_rel_of_rows(rows, arity, n), node.order)
        self._note(rel)
        return rel

    def _eval_delta_scan(self, node: DeltaScan) -> _Rel:
        bound = self.scope.get(node.name)
        arity = len(node.columns)
        if bound is None or bound[1] is None or bound[1].arity != arity:
            return _empty(arity)
        return self._permute(bound[1], node.order)

    def _eval_empty(self, node: Empty) -> _Rel:
        return _empty(len(node.columns))

    def _eval_domain(self, node: DomainProduct) -> _Rel:
        k = len(node.columns)
        self._check_ahead(self.n ** k)
        if k == 0:
            return _Rel(0, "0", 1)
        if k == 1:
            rel = _Rel(1, "b", (1 << self.n) - 1)
            self._note(rel)
            return rel
        raise ChunkedUnsupported(
            f"Domain^{k} over {self.n} elements in the chunked interpreter")

    def _eval_constrained_domain(self, node: ConstrainedDomain) -> _Rel:
        # An upper bound first: a column is cheap when some eq pins it to a
        # constant or an earlier column; unpinned columns each cost n.
        n = self.n
        bound = 1
        for position in range(len(node.columns)):
            pinned = False
            for comparison in node.comparisons:
                if comparison.op != "eq":
                    continue
                used = comparison.columns_used()
                if position in used and (len(used) == 1 or min(used) < position):
                    pinned = True
                    break
            if not pinned:
                bound *= n
        self._check_ahead(bound)
        if bound > max(n, 1) * 64:
            raise ChunkedUnsupported(
                f"constrained domain bound {bound} over {n} elements")
        relation = node._run(ExecutionContext(self.structure))
        rel = _rel_of_rows(relation.rows, len(node.columns), n)
        self._note(rel)
        return rel

    # ----------------------------------------------------- unary structural

    def _eval_rename(self, node: Rename) -> _Rel:
        return self.eval(node.child)

    def _eval_shared(self, node: Shared) -> _Rel:
        memo = self.round_memo if node.volatile else self.memo
        result = memo.get(node.child)
        if result is None:
            result = self.eval(node.child)
            memo[node.child] = result
        elif self.stats is not None:
            self.stats.shared_hits += 1
        return result

    def _eval_project(self, node: Project) -> _Rel:
        source = node.child.columns
        indices = tuple(source.index(name) for name in node.columns)
        child = self.eval(node.child)
        rel = self._project(child, indices)
        self._note(rel)
        return rel

    def _project(self, child: _Rel, indices: tuple) -> _Rel:
        if indices == tuple(range(child.arity)):
            return child
        if child.arity == 2 and child.kind in ("c", "s"):
            if indices == ():
                return _Rel(0, "0", 1 if child.count() else 0)
            if indices == (1, 0):
                offsets, targets = _csr_of(child, self.n)
                return _Rel(2, "c", transpose_csr(offsets, targets, self.n))
            if indices in ((0,), (1,)):
                bits = 0
                if child.kind == "s":
                    if indices == (0,):
                        for source, row in child.payload.items():
                            if row:
                                bits |= 1 << source
                    else:
                        for row in child.payload.values():
                            for target in row:
                                bits |= 1 << target
                else:
                    offsets, targets = child.payload
                    if indices == (0,):
                        for source in range(self.n):
                            if offsets[source + 1] > offsets[source]:
                                bits |= 1 << source
                    else:
                        for target in targets:
                            bits |= 1 << target
                return _Rel(1, "b", bits)
        if child.kind == "b":
            if indices == ():
                return _Rel(0, "0", 1 if child.payload else 0)
            return child
        if child.kind == "0":
            return child
        rows = {tuple(row[i] for i in indices) for row in child.rows()}
        return _rel_of_rows(rows, len(indices), self.n)

    def _eval_select(self, node: Select) -> _Rel:
        target = node.child
        if isinstance(target, Shared):
            target = target.child
        if isinstance(target, Closure) and target.k == 1:
            fast = self._select_closure(node, target)
            if fast is not None:
                self._note(fast)
                return fast
        child = self.eval(node.child)
        rel = self._select(child, node.comparisons)
        self._note(rel)
        return rel

    def _select_closure(self, node: Select, closure: Closure) -> _Rel | None:
        """``Select`` over a k=1 ``Closure`` with a pinned endpoint: one
        BFS over the edges instead of the full closure — O(edges) time and
        O(reach) memory, the rewrite that makes single-source reachability
        (the GAP sentence) flat in n."""
        n = self.n
        pinned = [None, None]
        for comparison in node.comparisons:
            if comparison.op != "eq":
                continue
            for here, there in ((comparison.left, comparison.right),
                                (comparison.right, comparison.left)):
                value = _const_value(there, n)
                if isinstance(here, Col) and value is not None:
                    pinned[here.index] = value
        if pinned[0] is None and pinned[1] is None:
            return None
        edges = self.eval(closure.body)
        offsets, targets = _csr_of(edges, n)
        if closure.deterministic:
            offsets, targets = _functional_csr(offsets, targets, n)
        if pinned[0] is not None:
            source = pinned[0]
            reached = reach_from_csr(offsets, targets, n, source,
                                     governor=self.governor)
            rows = {(source, target) for target in reached}
        else:
            target = pinned[1]
            offsets, targets = transpose_csr(offsets, targets, n)
            reached = reach_from_csr(offsets, targets, n, target,
                                     governor=self.governor)
            rows = {(source, target) for source in reached}
        keep = {row for row in rows
                if all(c.evaluate(row, n) for c in node.comparisons)}
        return _rel_of_rows(keep, 2, n)

    def _select(self, child: _Rel, comparisons) -> _Rel:
        n = self.n
        if child.kind == "0":
            if child.payload and all(c.evaluate((), n) for c in comparisons):
                return child
            return _Rel(0, "0", 0)
        if child.kind == "b":
            bits = 0
            for index in iter_bits(child.payload):
                if all(c.evaluate((index,), n) for c in comparisons):
                    bits |= 1 << index
            return _Rel(1, "b", bits)
        if child.kind in ("c", "s"):
            sparse: dict[int, set[int]] = {}
            if child.kind == "s":
                pairs = ((source, row) for source, row in child.payload.items())
            else:
                offsets, targets = child.payload
                pairs = ((source, targets[offsets[source]:offsets[source + 1]])
                         for source in range(n)
                         if offsets[source + 1] > offsets[source])
            for source, row in pairs:
                keep = {target for target in row
                        if all(c.evaluate((source, target), n)
                               for c in comparisons)}
                if keep:
                    sparse[source] = keep
            return _Rel(2, "s", sparse)
        rows = {row for row in child.payload
                if all(c.evaluate(row, n) for c in comparisons)}
        return _Rel(child.arity, "t", rows)

    # ------------------------------------------------------------- booleans

    def _eval_union(self, node: Union) -> _Rel:
        arity = len(node.columns)
        operands = [self.eval(operand) for operand in node.operands]
        if arity == 0:
            return _Rel(0, "0", 1 if any(r.payload for r in operands) else 0)
        if arity == 1:
            bits = 0
            for rel in operands:
                bits |= rel.payload
            rel = _Rel(1, "b", bits)
        elif arity == 2:
            merged: dict[int, set[int]] = {}
            for rel in operands:
                for source, row in rel.sparse().items():
                    have = merged.get(source)
                    if have is None:
                        merged[source] = set(row)
                    else:
                        have |= row
            rel = _Rel(2, "s", merged)
        else:
            rows: set = set()
            for operand in operands:
                rows |= operand.payload
            rel = _Rel(arity, "t", rows)
        self._note(rel)
        return rel

    def _eval_difference(self, node: Difference) -> _Rel:
        left = self.eval(node.left)
        right = self.eval(node.right)
        arity = left.arity
        if arity == 0:
            return _Rel(0, "0", 1 if left.payload and not right.payload else 0)
        if arity == 1:
            rel = _Rel(1, "b", left.payload & ~right.payload)
        elif arity == 2:
            other = right.sparse()
            result: dict[int, set[int]] = {}
            for source, row in left.sparse().items():
                drop = other.get(source)
                keep = row - drop if drop else set(row)
                if keep:
                    result[source] = keep
            rel = _Rel(2, "s", result)
        else:
            rel = _Rel(arity, "t", left.payload - right.payload)
        self._note(rel)
        return rel

    # ----------------------------------------------------------------- joins

    def _eval_semi(self, node, anti: bool) -> _Rel:
        left = self.eval(node.left)
        right = self.eval(node.right)
        key = tuple(node.left.columns.index(c) for c in node.right.columns)
        if self.stats is not None:
            self.stats.index_probes += left.count()
        rel = self._semi(left, right, key, anti)
        self._note(rel)
        return rel

    def _semi(self, left: _Rel, right: _Rel, key: tuple, anti: bool) -> _Rel:
        n = self.n
        if right.arity == 0:
            keep = (not right.payload) if anti else bool(right.payload)
            return left if keep else _empty(left.arity)
        if left.arity == 1 and right.arity == 1:
            mask = right.payload
            bits = left.payload & (~mask if anti else mask)
            return _Rel(1, "b", bits)
        if left.arity == 2 and left.kind in ("c", "s"):
            if right.arity == 1:
                mask = right.payload
                result: dict[int, set[int]] = {}
                if key == (0,):
                    for source, row in left.sparse().items():
                        hit = bool(mask >> source & 1)
                        if hit != anti and row:
                            result[source] = set(row)
                else:  # key == (1,): filter targets
                    for source, row in left.sparse().items():
                        keep = {t for t in row if (mask >> t & 1) != anti}
                        if keep:
                            result[source] = keep
                return _Rel(2, "s", result)
            if right.arity == 2 and key in ((0, 1), (1, 0)):
                other = right.sparse()
                if key == (1, 0):
                    flipped: dict[int, set[int]] = {}
                    for source, row in other.items():
                        for target in row:
                            flipped.setdefault(target, set()).add(source)
                    other = flipped
                result = {}
                for source, row in left.sparse().items():
                    match = other.get(source, set())
                    keep = row - match if anti else row & match
                    if keep:
                        result[source] = keep
                return _Rel(2, "s", result)
        # Generic membership probe over tuple rows.
        match_rows = {tuple(row) for row in right.rows()}
        rows = {row for row in left.rows()
                if (tuple(row[i] for i in key) in match_rows) != anti}
        return _rel_of_rows(rows, left.arity, n)

    def _eval_product(self, node: Product) -> _Rel:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if left.arity == 0:
            return right if left.payload else _empty(len(node.columns))
        if right.arity == 0:
            return left if right.payload else _empty(len(node.columns))
        self._check_ahead(left.count() * right.count())
        if left.arity + right.arity == 2:
            result: dict[int, set[int]] = {}
            targets = set(iter_bits(right.payload))
            for source in iter_bits(left.payload):
                result[source] = set(targets)
            rel = _Rel(2, "s", result)
        else:
            rows = {lrow + rrow for lrow in left.rows()
                    for rrow in right.rows()}
            rel = _rel_of_rows(rows, left.arity + right.arity, self.n)
        self._note(rel)
        return rel

    def _eval_join(self, node) -> _Rel:
        left_columns = node.left.columns
        right_columns = node.right.columns
        combined = left_columns + tuple(c for c in right_columns
                                        if c not in left_columns)
        out_columns = (node.columns if isinstance(node, JoinProject)
                       else combined)
        shared = tuple(c for c in right_columns if c in left_columns)
        if not shared:
            product = self._eval_product_of(node.left, node.right)
            indices = tuple((left_columns + right_columns).index(c)
                            for c in out_columns)
            rel = self._project(product, indices)
            self._note(rel)
            return rel
        left = self.eval(node.left)
        right = self.eval(node.right)
        if self.stats is not None:
            self.stats.index_probes += left.count()
        out = tuple(combined.index(c) for c in out_columns)
        rel = self._join(left, right,
                         tuple(left_columns.index(c) for c in shared),
                         tuple(right_columns.index(c) for c in shared),
                         tuple(i for i, c in enumerate(right_columns)
                               if c not in left_columns),
                         out)
        self._note(rel)
        return rel

    def _eval_product_of(self, left_plan: Plan, right_plan: Plan) -> _Rel:
        left = self.eval(left_plan)
        right = self.eval(right_plan)
        if left.arity == 0:
            return right if left.payload else _empty(right.arity)
        if right.arity == 0:
            return left if right.payload else _empty(left.arity)
        self._check_ahead(left.count() * right.count())
        rows = {lrow + rrow for lrow in left.rows() for rrow in right.rows()}
        return _rel_of_rows(rows, left.arity + right.arity, self.n)

    def _join(self, left: _Rel, right: _Rel, left_key: tuple,
              right_key: tuple, keep: tuple, out: tuple) -> _Rel:
        """The generic hash join, with the arity-2 compose shape routed
        through per-row set work instead of tuple materialization."""
        n = self.n
        if (left.arity == 2 and right.arity == 2 and len(left_key) == 1
                and left.kind in ("c", "s") and right.kind in ("c", "s")):
            # Normalize: probe left rows keyed on the shared column against
            # the right side indexed on its shared column.
            left_rows = left.sparse() if left_key == (1,) else (
                self._project(left, (1, 0)).sparse())
            right_rows = right.sparse() if right_key == (0,) else (
                self._project(right, (1, 0)).sparse())
            # left_rows: other -> {key}; right_rows: key -> {other}.
            # Combined positional layout after normalization:
            #   (left other, key, right other) == combined order rebuilt.
            left_other_pos = 0 if left_key == (1,) else 1
            results: set = set()
            sparse: dict[int, set[int]] = {}
            want_pairs = len(out) == 2
            for other, keys in left_rows.items():
                for key in keys:
                    matches = right_rows.get(key)
                    if not matches:
                        continue
                    full = [0, 0, 0]
                    full[left_other_pos] = other
                    full[1 - left_other_pos] = key
                    for match in matches:
                        full[2] = match
                        row = tuple(full[i] for i in out)
                        if want_pairs:
                            sparse.setdefault(row[0], set()).add(row[1])
                        else:
                            results.add(row)
            if want_pairs:
                return _Rel(2, "s", sparse)
            return _rel_of_rows(results, len(out), n)
        # Tuple-generic fallback, governed by the row budget.
        self._check_ahead(0)
        index: dict[tuple, list[tuple]] = {}
        for row in right.rows():
            index.setdefault(tuple(row[i] for i in right_key), []).append(row)
        rows = set()
        governor = self.governor
        for row in left.rows():
            if governor is not None:
                governor.tick()
            for match in index.get(tuple(row[i] for i in left_key), ()):
                full = row + tuple(match[i] for i in keep)
                rows.add(tuple(full[i] for i in out))
        return _rel_of_rows(rows, len(out), n)

    def _eval_count(self, node: CountSelect) -> _Rel:
        n = self.n
        threshold = node.threshold
        if threshold == "half":
            threshold = (n + 1) // 2
        threshold = int(threshold)
        if threshold <= 0:
            return self._eval_domain(DomainProduct(node.columns))
        child = self.eval(node.child)
        variable_pos = node.child.columns.index(node.variable)
        if child.arity == 2 and child.kind in ("c", "s"):
            bits = 0
            rows = child.sparse() if variable_pos == 1 else (
                self._project(child, (1, 0)).sparse())
            for source, row in rows.items():
                if len(row) >= threshold:
                    bits |= 1 << source
            rel = _Rel(1, "b", bits)
        elif child.arity == 1:
            rel = _Rel(0, "0",
                       1 if child.payload.bit_count() >= threshold else 0)
        else:
            group_indices = tuple(i for i, c in enumerate(node.child.columns)
                                  if c != node.variable)
            counts: dict[tuple, int] = {}
            for row in child.rows():
                group = tuple(row[i] for i in group_indices)
                counts[group] = counts.get(group, 0) + 1
            rel = _rel_of_rows(
                {g for g, c in counts.items() if c >= threshold},
                len(node.columns), n)
        self._note(rel)
        return rel

    # ------------------------------------------------------------- recursion

    def _eval_closure(self, node: Closure) -> _Rel:
        if node.k != 1:
            raise ChunkedUnsupported(
                f"Closure k={node.k} in the chunked interpreter")
        edges = self.eval(node.body)
        offsets, targets = _csr_of(edges, self.n)
        pair = closure_csr(offsets, targets, self.n,
                           deterministic=node.deterministic,
                           governor=self.governor, stats=self.stats)
        rel = _Rel(2, "c", pair)
        self._note(rel)
        return rel

    def _eval_cumulative(self, node: Cumulative) -> _Rel:
        store = self.accumulators
        if store is None:
            return self.eval(node.full)
        accumulated = store.get(node)
        if accumulated is None:
            accumulated = self._to_mutable(self.eval(node.full))
            store[node] = accumulated
        else:
            self._union_into(accumulated, self.eval(node.delta))
        return accumulated

    @staticmethod
    def _to_mutable(rel: _Rel) -> _Rel:
        if rel.kind == "c":
            return _Rel(2, "s", rel.sparse())
        return rel

    @staticmethod
    def _union_into(accumulated: _Rel, fresh: _Rel) -> None:
        if accumulated.kind == "b":
            accumulated.payload |= fresh.payload
        elif accumulated.kind == "s":
            rows = accumulated.payload
            for source, row in fresh.sparse().items():
                have = rows.get(source)
                if have is None:
                    rows[source] = set(row)
                else:
                    have |= row
        elif accumulated.kind == "t":
            accumulated.payload |= fresh.payload
        elif accumulated.kind == "0":
            accumulated.payload |= fresh.payload

    def _eval_fixpoint(self, node: Fixpoint) -> _Rel:
        arity = len(node.variables)
        relation = node.relation
        delta_mode = node.delta_body is not None and self.seminaive
        saved_scope = self.scope.get(relation)
        saved_round = self.round_memo
        saved_store = self.accumulators
        self.accumulators = {} if delta_mode else None
        stats, governor = self.stats, self.governor
        try:
            if not delta_mode:
                # Naive iteration, inflationary like the engine's fixed-point
                # kernel: rows once derived stay even for non-monotone bodies.
                total = self._to_mutable(_empty(arity))
                while True:
                    if governor is not None:
                        governor.note_round()
                    if stats is not None:
                        stats.fixpoint_rounds += 1
                    self.round_memo = {}
                    self.scope[relation] = (total, None)
                    fresh = self._fresh_rows(self.eval(node.body), total)
                    if not fresh.count():
                        return total
                    self._union_into(total, fresh)
            before = 0 if stats is None else stats.rows_materialized
            if governor is not None:
                governor.note_round()
            self.round_memo = {}
            self.scope[relation] = (_empty(arity), None)
            total = self._to_mutable(self.eval(node.body))
            if stats is not None:
                stats.fixpoint_rounds += 1
                stats.fixpoint_round_rows.append(
                    stats.rows_materialized - before)
            delta = total
            while delta.count():
                if stats is not None:
                    stats.note_resident(rows=total.count() + delta.count())
                if governor is not None:
                    governor.note_round()
                before = 0 if stats is None else stats.rows_materialized
                self.round_memo = {}
                self.scope[relation] = (total, delta)
                derived = self.eval(node.delta_body)
                if stats is not None:
                    stats.fixpoint_rounds += 1
                    stats.fixpoint_round_rows.append(
                        stats.rows_materialized - before)
                delta = self._fresh_rows(derived, total)
                self._union_into(total, delta)
            return total
        finally:
            if saved_scope is None:
                self.scope.pop(relation, None)
            else:
                self.scope[relation] = saved_scope
            self.round_memo = saved_round
            self.accumulators = saved_store

    @staticmethod
    def _fresh_rows(derived: _Rel, total: _Rel) -> _Rel:
        if derived.kind == "b":
            return _Rel(1, "b", derived.payload & ~total.payload)
        if derived.arity == 2:
            have = total.sparse()
            fresh: dict[int, set[int]] = {}
            for source, row in derived.sparse().items():
                seen = have.get(source)
                new = row - seen if seen else set(row)
                if new:
                    fresh[source] = new
            return _Rel(2, "s", fresh)
        if derived.kind == "0":
            return _Rel(0, "0", derived.payload & ~total.payload)
        return _Rel(derived.arity, "t", derived.payload - total.payload)

    _DISPATCH = {
        RelationScan: _eval_relation_scan,
        AuxScan: _eval_aux_scan,
        DeltaScan: _eval_delta_scan,
        Empty: _eval_empty,
        DomainProduct: _eval_domain,
        ConstrainedDomain: _eval_constrained_domain,
        Rename: _eval_rename,
        Shared: _eval_shared,
        Project: _eval_project,
        Select: _eval_select,
        Union: _eval_union,
        Difference: _eval_difference,
        SemiJoin: lambda self, node: self._eval_semi(node, anti=False),
        AntiJoin: lambda self, node: self._eval_semi(node, anti=True),
        Product: _eval_product,
        Join: _eval_join,
        JoinProject: _eval_join,
        CountSelect: _eval_count,
        Closure: _eval_closure,
        Cumulative: _eval_cumulative,
        Fixpoint: _eval_fixpoint,
    }


def execute_chunked(plan: Plan, structure, auxiliary=None,
                    seminaive: bool = True, stats: PlanStats | None = None,
                    governor=None) -> frozenset:
    """Evaluate ``plan`` with the chunked interpreter and decode to rows.

    The entry :func:`~repro.logic.codegen.execute_columnar` routes here
    when ``structure.size`` is past the dense width threshold.  Raises
    :class:`ChunkedUnsupported` on plan shapes outside the coverage; the
    evaluation ladder turns that into a degradation event.
    """
    interpreter = _Interpreter(structure, auxiliary, seminaive, stats,
                               governor)
    return frozenset(interpreter.eval(plan).rows())
