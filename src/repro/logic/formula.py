"""First-order formulas over finite structures (Section 3).

For any vocabulary ``tau`` there is a first-order language ``L(tau)`` built
from the relation symbols of ``tau`` and the logical symbols ``=``, ``<=``,
``0``, ``n-1``; the paper extends it with the operators the different
results need: the least fixed point ``LFP`` (Fact 7.4), transitive closure
``TC`` (Fact 4.1), deterministic transitive closure ``DTC`` (Fact 4.3) and
counting quantifiers (Section 7).

Terms are variables or the two constant symbols ``0`` and ``max`` (the
paper's ``n-1``).  Formula constructors are small frozen dataclasses; the
helpers at the bottom (``exists``, ``forall``, ``and_`` ...) keep formulas
readable in queries, tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = [
    "Term", "VarTerm", "ConstTerm", "ZERO", "MAX",
    "Formula", "RelAtom", "AuxAtom", "EqAtom", "LeqAtom", "TrueFormula", "FalseFormula",
    "Not", "And", "Or", "Implies", "Exists", "Forall", "CountAtLeast",
    "LFPAtom", "TCAtom", "DTCAtom",
    "var", "const", "rel", "aux", "eq", "leq", "neg", "and_", "or_", "implies",
    "exists", "forall", "count_at_least", "free_variables_of", "walk_formula",
    "pretty",
]


# ----------------------------------------------------------------- terms


class Term:
    """Base class of first-order terms."""


@dataclass(frozen=True)
class VarTerm(Term):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstTerm(Term):
    """``0`` or ``max`` (the paper's constant symbols 0 and n-1)."""

    which: str  # "zero" or "max"

    def __str__(self) -> str:
        return "0" if self.which == "zero" else "max"


ZERO = ConstTerm("zero")
MAX = ConstTerm("max")


# -------------------------------------------------------------- formulas


class Formula:
    """Base class of first-order formulas (with the paper's extensions)."""


@dataclass(frozen=True)
class TrueFormula(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class RelAtom(Formula):
    """``R(t1, ..., tk)`` for an input relation symbol ``R``."""

    name: str
    terms: tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.terms))})"


@dataclass(frozen=True)
class AuxAtom(Formula):
    """An occurrence of the auxiliary (fixed-point) relation variable inside
    an LFP body, e.g. the ``R`` of the paper's monotone operator ``F(R)``."""

    name: str
    terms: tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.terms))})"


@dataclass(frozen=True)
class EqAtom(Formula):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class LeqAtom(Formula):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} <= {self.right}"


@dataclass(frozen=True)
class Not(Formula):
    body: Formula

    def __str__(self) -> str:
        return f"~({self.body})"


@dataclass(frozen=True)
class And(Formula):
    conjuncts: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " & ".join(map(str, self.conjuncts)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    disjuncts: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " | ".join(map(str, self.disjuncts)) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@dataclass(frozen=True)
class Exists(Formula):
    variable: str
    body: Formula

    def __str__(self) -> str:
        return f"exists {self.variable}. {self.body}"


@dataclass(frozen=True)
class Forall(Formula):
    variable: str
    body: Formula

    def __str__(self) -> str:
        return f"forall {self.variable}. {self.body}"


@dataclass(frozen=True)
class CountAtLeast(Formula):
    """The counting quantifier ``(exists >= threshold x) body`` (Section 7).

    ``threshold`` is either an integer or the string ``"half"`` meaning
    ``ceil(n / 2)`` — enough to express the EVEN-style cardinality queries
    used in the Figure 1 experiments without a full two-sorted number
    domain.
    """

    threshold: int | str
    variable: str
    body: Formula

    def __str__(self) -> str:
        return f"exists>={self.threshold} {self.variable}. {self.body}"


@dataclass(frozen=True)
class LFPAtom(Formula):
    """``LFP[R(x1..xk) := body](t1, ..., tk)`` — the least fixed point of the
    monotone operator defined by ``body`` (which may use ``AuxAtom(R, ...)``),
    applied to the argument terms."""

    relation: str
    variables: tuple[str, ...]
    body: Formula
    terms: tuple[Term, ...]

    def __str__(self) -> str:
        head = f"LFP[{self.relation}({', '.join(self.variables)}) := {self.body}]"
        return f"{head}({', '.join(map(str, self.terms))})"


@dataclass(frozen=True)
class TCAtom(Formula):
    """``TC[(x̄, x̄') := body](s̄, t̄)`` — the reflexive transitive closure of
    the binary relation on k-tuples defined by ``body`` (Fact 4.1)."""

    source_variables: tuple[str, ...]
    target_variables: tuple[str, ...]
    body: Formula
    source_terms: tuple[Term, ...]
    target_terms: tuple[Term, ...]

    def __str__(self) -> str:
        return (
            f"TC[({', '.join(self.source_variables)}) -> "
            f"({', '.join(self.target_variables)}) := {self.body}]"
            f"({', '.join(map(str, self.source_terms))}; "
            f"{', '.join(map(str, self.target_terms))})"
        )


@dataclass(frozen=True)
class DTCAtom(Formula):
    """``DTC[...]`` — like :class:`TCAtom` but an edge only counts when its
    source has a *unique* successor (Fact 4.3)."""

    source_variables: tuple[str, ...]
    target_variables: tuple[str, ...]
    body: Formula
    source_terms: tuple[Term, ...]
    target_terms: tuple[Term, ...]

    def __str__(self) -> str:
        return "D" + TCAtom.__str__(self)  # type: ignore[arg-type]


# ---------------------------------------------------------------- helpers


def var(name: str) -> VarTerm:
    return VarTerm(name)


def const(which: str) -> ConstTerm:
    if which not in ("zero", "max"):
        raise ValueError("const expects 'zero' or 'max'")
    return ConstTerm(which)


def _as_term(t: Term | str) -> Term:
    return VarTerm(t) if isinstance(t, str) else t


def rel(name: str, *terms: Term | str) -> RelAtom:
    return RelAtom(name, tuple(_as_term(t) for t in terms))


def aux(name: str, *terms: Term | str) -> AuxAtom:
    return AuxAtom(name, tuple(_as_term(t) for t in terms))


def eq(left: Term | str, right: Term | str) -> EqAtom:
    return EqAtom(_as_term(left), _as_term(right))


def leq(left: Term | str, right: Term | str) -> LeqAtom:
    return LeqAtom(_as_term(left), _as_term(right))


def neg(body: Formula) -> Not:
    return Not(body)


def and_(*conjuncts: Formula) -> Formula:
    if not conjuncts:
        return TrueFormula()
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(tuple(conjuncts))


def or_(*disjuncts: Formula) -> Formula:
    if not disjuncts:
        return FalseFormula()
    if len(disjuncts) == 1:
        return disjuncts[0]
    return Or(tuple(disjuncts))


def implies(antecedent: Formula, consequent: Formula) -> Implies:
    return Implies(antecedent, consequent)


def exists(variables: str | Sequence[str], body: Formula) -> Formula:
    names = [variables] if isinstance(variables, str) else list(variables)
    for name in reversed(names):
        body = Exists(name, body)
    return body


def forall(variables: str | Sequence[str], body: Formula) -> Formula:
    names = [variables] if isinstance(variables, str) else list(variables)
    for name in reversed(names):
        body = Forall(name, body)
    return body


def count_at_least(threshold: int | str, variable: str, body: Formula) -> CountAtLeast:
    return CountAtLeast(threshold, variable, body)


def pretty(formula: Formula, indent: int = 0) -> str:
    """A multi-line, indented rendering of a formula.

    Atoms print on one line (their ``__str__``); every compound node opens
    an indented block, one child per line, so deeply nested formulas stay
    legible.  The plan compiler quotes this form in error messages and the
    plan ``explain()`` output quotes it for fixed-point bodies.
    """
    pad = "  " * indent

    def block(head: str, *parts: Formula) -> str:
        body = "\n".join(pretty(part, indent + 1) for part in parts)
        return f"{pad}{head}\n{body}"

    if isinstance(formula, Not):
        return block("not", formula.body)
    if isinstance(formula, And):
        if not formula.conjuncts:
            return f"{pad}and()"
        return block("and", *formula.conjuncts)
    if isinstance(formula, Or):
        if not formula.disjuncts:
            return f"{pad}or()"
        return block("or", *formula.disjuncts)
    if isinstance(formula, Implies):
        return block("implies", formula.antecedent, formula.consequent)
    if isinstance(formula, Exists):
        return block(f"exists {formula.variable}.", formula.body)
    if isinstance(formula, Forall):
        return block(f"forall {formula.variable}.", formula.body)
    if isinstance(formula, CountAtLeast):
        return block(f"exists>={formula.threshold} {formula.variable}.",
                     formula.body)
    if isinstance(formula, LFPAtom):
        head = (f"LFP[{formula.relation}({', '.join(formula.variables)})]"
                f"({', '.join(map(str, formula.terms))}) where body =")
        return block(head, formula.body)
    if isinstance(formula, (TCAtom, DTCAtom)):
        operator = "DTC" if isinstance(formula, DTCAtom) else "TC"
        head = (
            f"{operator}[({', '.join(formula.source_variables)}) -> "
            f"({', '.join(formula.target_variables)})]"
            f"({', '.join(map(str, formula.source_terms))}; "
            f"{', '.join(map(str, formula.target_terms))}) where body ="
        )
        return block(head, formula.body)
    # Atoms and constants: the single-line __str__ form.
    return f"{pad}{formula}"


def walk_formula(formula: Formula) -> Iterator[Formula]:
    """Yield ``formula`` and every sub-formula, pre-order."""
    yield formula
    if isinstance(formula, Not):
        yield from walk_formula(formula.body)
    elif isinstance(formula, And):
        for part in formula.conjuncts:
            yield from walk_formula(part)
    elif isinstance(formula, Or):
        for part in formula.disjuncts:
            yield from walk_formula(part)
    elif isinstance(formula, Implies):
        yield from walk_formula(formula.antecedent)
        yield from walk_formula(formula.consequent)
    elif isinstance(formula, (Exists, Forall, CountAtLeast)):
        yield from walk_formula(formula.body)
    elif isinstance(formula, (LFPAtom, TCAtom, DTCAtom)):
        yield from walk_formula(formula.body)


def free_variables_of(formula: Formula) -> set[str]:
    """The free first-order variables of a formula."""

    def go(f: Formula, bound: frozenset[str]) -> set[str]:
        if isinstance(f, (RelAtom, AuxAtom)):
            return {t.name for t in f.terms if isinstance(t, VarTerm)} - bound
        if isinstance(f, (EqAtom, LeqAtom)):
            return {t.name for t in (f.left, f.right) if isinstance(t, VarTerm)} - bound
        if isinstance(f, Not):
            return go(f.body, bound)
        if isinstance(f, And):
            return set().union(*(go(p, bound) for p in f.conjuncts)) if f.conjuncts else set()
        if isinstance(f, Or):
            return set().union(*(go(p, bound) for p in f.disjuncts)) if f.disjuncts else set()
        if isinstance(f, Implies):
            return go(f.antecedent, bound) | go(f.consequent, bound)
        if isinstance(f, (Exists, Forall, CountAtLeast)):
            return go(f.body, bound | {f.variable})
        if isinstance(f, LFPAtom):
            inner = go(f.body, bound | set(f.variables))
            terms = {t.name for t in f.terms if isinstance(t, VarTerm)} - bound
            return inner | terms
        if isinstance(f, (TCAtom, DTCAtom)):
            inner = go(f.body, bound | set(f.source_variables) | set(f.target_variables))
            terms = {
                t.name
                for t in f.source_terms + f.target_terms
                if isinstance(t, VarTerm)
            } - bound
            return inner | terms
        return set()

    return go(formula, frozenset())
