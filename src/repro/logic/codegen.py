"""Per-plan code generation onto the columnar kernels.

This is the PR 2 exec-codegen trick (see :mod:`repro.core.compiler`)
applied to optimized relational plans: each plan is walked **once** and
emitted as the source of one specialized Python function — a straight-line
statement per node, a native ``while`` loop per fixed point — whose
operand representations were all resolved at emission time.  Steady-state
fixpoint rounds therefore run with zero interpretive dispatch: no
``isinstance`` ladder, no column-name arithmetic, no per-node method
calls, just pre-bound kernel closures over raw bitset/CSR payloads
(:mod:`repro.core.columnar`).

Representations are a pure function of a node's column count over the
dense universe ``0..n-1`` (the interning convention of
:mod:`repro.structures.intern`):

==========  =============================================================
0 columns   ``0``/``1`` — the unit relation as an int ("false"/"true")
1 column    one int used as a bit vector (bit ``i`` = element ``i``)
2 columns   bitmask rows (CSR adjacency): ``rows[x]`` = bitset over ``y``
3+ columns  a plain set of tuples — the **fallback** representation; each
            node that degrades to it is recorded on the compiled plan
==========  =============================================================

so the codegen cache key ``(plan, n, strategy)`` *is* the representation
signature: it pins every kernel choice the emitter makes.  The cache is
bounded like the optimizer's plan memo and its hits are surfaced through
``PlanStats.codegen_cache_hits``.

Nodes with no columnar kernel (``Closure`` over k-tuples with k ≥ 2,
``ConstrainedDomain``'s fused enumeration, and any future node the
emitter does not know) run as interpreter *islands*: the generated code
converts the fixed-point scope back to row sets, executes the node
through its own :meth:`~repro.logic.plan.Plan.execute` (which does its
own stats/governor accounting), and re-encodes the result.

Governor choke points mirror the interpreted plan executor's: every
materializing kernel notes its rows and ticks, every fixpoint round (and
closure BFS wave) notes a round, and ``DomainProduct``/``Closure`` check
the row budget *ahead* of building anything.  The one intentional
difference: ``index_probes`` stays zero — the columnar joins are bitwise
masks and merges, there is no hash index to probe.
"""

from __future__ import annotations

import os
import threading
from itertools import product as _cartesian
from typing import Callable, Iterable

from repro.core.columnar import (
    DENSE_WIDTH_THRESHOLD,
    adjacency_of_binary,
    and_rows,
    andnot_rows,
    bits_of_unary,
    closure_adjacency,
    compose,
    count_per_source,
    mask_rows_source,
    mask_rows_target,
    or_rows,
    proj_source,
    proj_target,
    rows_of_adjacency,
    rows_of_bits,
    transpose,
)
from repro.core.governor import DegradationEvent

from .plan import (
    AntiJoin,
    AuxScan,
    Closure,
    Col,
    Comparison,
    ConstrainedDomain,
    CountSelect,
    Cumulative,
    DeltaScan,
    Difference,
    DomainProduct,
    Empty,
    ExecutionContext,
    Fixpoint,
    Join,
    JoinProject,
    Plan,
    PlanStats,
    Product,
    Project,
    RelationScan,
    Rename,
    Select,
    SemiJoin,
    Shared,
    Union,
)

__all__ = [
    "MAX_COLUMNAR_UNIVERSE",
    "CompiledColumnarPlan",
    "compile_columnar",
    "compiled_columnar",
    "clear_codegen_cache",
    "execute_columnar",
    "last_report",
    "representation_of",
    "set_max_columnar_universe",
]


def _default_max_universe() -> int:
    """The columnar cap, overridable via ``REPRO_MAX_COLUMNAR_UNIVERSE``
    (falling back to the built-in default on a malformed value)."""
    raw = os.environ.get("REPRO_MAX_COLUMNAR_UNIVERSE")
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            return 1 << 22
        if value >= 0:
            return value
    return 1 << 22


#: Largest universe any columnar backend is built for.  Up to
#: :data:`~repro.core.columnar.DENSE_WIDTH_THRESHOLD` the generated code
#: runs on dense giant-int payloads; past it :func:`execute_columnar`
#: routes to the chunked interpreter (:mod:`repro.logic.chunked`), whose
#: CSR payloads stay O(edges), so the cap can sit far higher than the
#: dense default ever could.  The gate refuses universes past this so the
#: caller's ladder falls back to the set backend.  Override with the
#: ``REPRO_MAX_COLUMNAR_UNIVERSE`` environment variable (read at import)
#: or :func:`set_max_columnar_universe`.
MAX_COLUMNAR_UNIVERSE = _default_max_universe()


def set_max_columnar_universe(value: int) -> int:
    """Set the columnar universe cap, returning the previous value (tests
    and embedders use this to shrink or widen the gate at run time)."""
    global MAX_COLUMNAR_UNIVERSE
    if value < 0:
        raise ValueError(f"columnar universe cap must be >= 0, got {value!r}")
    previous = MAX_COLUMNAR_UNIVERSE
    MAX_COLUMNAR_UNIVERSE = value
    return previous

_KIND = {"0": "unit", "b": "bitset", "r": "csr", "t": "tuples"}


def _tag(arity: int) -> str:
    if arity == 0:
        return "0"
    if arity == 1:
        return "b"
    if arity == 2:
        return "r"
    return "t"


def representation_of(arity: int) -> str:
    """The representation the columnar backend picks for a relation of the
    given arity (``bitset`` / ``csr`` / ``tuples``; the CLI's ``--stats``
    per-relation report)."""
    return _KIND[_tag(arity)]


# ------------------------------------------------------- raw <-> row bridges


def _rows_of(raw, tag: str) -> set:
    """The row set of a raw payload (the island/fallback boundary)."""
    if tag == "0":
        return {()} if raw else set()
    if tag == "b":
        return rows_of_bits(raw)
    if tag == "r":
        return rows_of_adjacency(raw)
    return set(raw)


def _raw_of(rows: Iterable[tuple], arity: int, n: int):
    """Rows re-encoded into the representation their arity picks."""
    tag = _tag(arity)
    if tag == "0":
        rows = set(rows)
        return 1 if rows else 0
    if tag == "b":
        return bits_of_unary(rows)
    if tag == "r":
        return adjacency_of_binary(rows, n)
    return set(rows)


# ----------------------------------------------------------------- runtime


class _Runtime:
    """Everything one execution threads through the generated function."""

    __slots__ = ("n", "structure", "aux", "seminaive", "stats", "gov", "track")

    def __init__(self, n, structure, aux, seminaive, stats, gov):
        self.n = n
        self.structure = structure
        self.aux = aux
        self.seminaive = seminaive
        self.stats = stats
        self.gov = gov
        self.track = stats is not None or gov is not None


def _note(rt, count: int) -> None:
    stats = rt.stats
    if stats is not None:
        stats.rows_materialized += count
    gov = rt.gov
    if gov is not None:
        gov.note_rows(count)
        gov.tick()


def _note_b(rt, value: int) -> None:
    _note(rt, value.bit_count())


def _note_r(rt, rows: list) -> None:
    _note(rt, sum(bits.bit_count() for bits in rows))


def _note_t(rt, rows: set) -> None:
    _note(rt, len(rows))


def _rows_now(rt) -> int:
    stats = rt.stats
    return 0 if stats is None else stats.rows_materialized


def _round_pre(rt) -> None:
    gov = rt.gov
    if gov is not None:
        gov.note_round()


def _round_post(rt, before: int) -> None:
    stats = rt.stats
    if stats is not None:
        stats.fixpoint_rounds += 1
        stats.fixpoint_round_rows.append(stats.rows_materialized - before)


def _naive_round(rt) -> None:
    gov = rt.gov
    if gov is not None:
        gov.note_round()
    stats = rt.stats
    if stats is not None:
        stats.fixpoint_rounds += 1


def _check_ahead(rt, count: int) -> None:
    gov = rt.gov
    if gov is not None:
        gov.check_rows_ahead(count)


def _shared_hit(rt) -> None:
    stats = rt.stats
    if stats is not None:
        stats.shared_hits += 1


#: Helpers every generated function sees, under stable short names.
_BASE_NS = {
    "_note": _note,
    "_nb": _note_b,
    "_nr": _note_r,
    "_nt": _note_t,
    "_rows_now": _rows_now,
    "_round_pre": _round_pre,
    "_round_post": _round_post,
    "_naive_round": _naive_round,
    "_ca": _check_ahead,
    "_sh": _shared_hit,
    "_or_rows": or_rows,
    "_andnot": andnot_rows,
}


# --------------------------------------------------- shape-resolved kernels


def _project_fn(src_cols: tuple, out_cols: tuple, n: int) -> Callable | None:
    """A closure mapping a raw payload laid out as ``src_cols`` to one laid
    out as ``out_cols`` — or ``None`` when the shape has no columnar path
    (the caller then goes through the generic row-set kernel)."""
    positions = tuple(src_cols.index(c) for c in out_cols)
    arity = len(src_cols)
    if arity == 0 and positions == ():
        return lambda raw: raw
    if arity == 1:
        if positions == (0,):
            return lambda raw: raw
        if positions == ():
            return lambda raw: 1 if raw else 0
    if arity == 2:
        if positions == (0, 1):
            return lambda raw: raw
        if positions == (1, 0):
            return lambda raw: transpose(raw, n)
        if positions == (0,):
            return proj_source
        if positions == (1,):
            return proj_target
        if positions == ():
            return lambda raw: 1 if any(raw) else 0
    return None


def _generic_project_fn(src_cols: tuple, out_cols: tuple, src_tag: str,
                        n: int) -> Callable:
    positions = tuple(src_cols.index(c) for c in out_cols)
    arity = len(out_cols)

    def fn(raw):
        rows = {tuple(row[i] for i in positions)
                for row in _rows_of(raw, src_tag)}
        return _raw_of(rows, arity, n)

    return fn


def _empty_raw(tag: str, n: int):
    if tag == "r":
        return [0] * n
    if tag == "t":
        return set()
    return 0


def _join_fn(lc: tuple, rc: tuple, oc: tuple, n: int) -> Callable | None:
    """The columnar natural-join kernel for left layout ``lc``, right
    layout ``rc``, output layout ``oc`` — or ``None`` (generic fallback).

    All the plan IR's conjunction shapes funnel through here: ``Join``
    (``oc`` = left then right-only columns), ``JoinProject`` (any subset),
    ``Product`` (no shared columns), each resolved at codegen time to a
    composition of bitwise kernels.
    """
    la, ra = len(lc), len(rc)
    if la > 2 or ra > 2 or len(oc) > 2:
        return None

    # A side with no columns is the unit relation: gate the other side.
    if la == 0 or ra == 0:
        inner_cols = rc if la == 0 else lc
        pk = _project_fn(inner_cols, oc, n)
        if pk is None:
            return None
        empty = lambda: _empty_raw(_tag(len(oc)), n)  # noqa: E731
        if la == 0:
            return lambda l, r: pk(r) if l else empty()
        return lambda l, r: pk(l) if r else empty()

    if la == 1 and ra == 1:
        a, b = lc[0], rc[0]
        if a == b:
            if oc == (a,):
                return lambda l, r: l & r
            if oc == ():
                return lambda l, r: 1 if l & r else 0
            return None
        # Cross product of two unary relations.
        if oc == (a, b):
            return lambda l, r: [r if (l >> i) & 1 else 0 for i in range(n)]
        if oc == (b, a):
            return lambda l, r: [l if (r >> i) & 1 else 0 for i in range(n)]
        if oc == (a,):
            return lambda l, r: l if r else 0
        if oc == (b,):
            return lambda l, r: r if l else 0
        if oc == ():
            return lambda l, r: 1 if (l and r) else 0
        return None

    if {la, ra} == {1, 2}:
        # Orient: A is the binary side, bset the unary one.
        flip = la == 2
        acols = lc if flip else rc
        point = rc[0] if flip else lc[0]
        if point not in acols:
            return None  # a genuine 3-column cross: fallback
        masker = mask_rows_source if point == acols[0] else mask_rows_target
        pk = _project_fn(acols, oc, n)
        if pk is None:
            return None
        if flip:
            return lambda l, r: pk(masker(l, r))
        return lambda l, r: pk(masker(r, l))

    # Two binary sides.
    shared = tuple(c for c in rc if c in lc)
    if len(shared) == 2:
        orient = (lambda r: r) if rc == lc else (lambda r: transpose(r, n))
        pk = _project_fn(lc, oc, n)
        if pk is None:
            return None
        return lambda l, r: pk(and_rows(l, orient(r)))
    if len(shared) == 1:
        s = shared[0]
        u = lc[0] if lc[1] == s else lc[1]
        t = rc[0] if rc[1] == s else rc[1]
        lm = (lambda l: l) if lc == (u, s) else (lambda l: transpose(l, n))
        rm = (lambda r: r) if rc == (s, t) else (lambda r: transpose(r, n))
        if oc == (u, t):
            return lambda l, r: compose(lm(l), rm(r))
        if oc == (t, u):
            return lambda l, r: transpose(compose(lm(l), rm(r)), n)
        if oc == (u, s):
            return lambda l, r: mask_rows_target(lm(l), proj_source(rm(r)))
        if oc == (s, u):
            return lambda l, r: transpose(
                mask_rows_target(lm(l), proj_source(rm(r))), n)
        if oc == (s, t):
            return lambda l, r: mask_rows_source(rm(r), proj_target(lm(l)))
        if oc == (t, s):
            return lambda l, r: transpose(
                mask_rows_source(rm(r), proj_target(lm(l))), n)
        if oc == (u,):
            return lambda l, r: proj_source(
                mask_rows_target(lm(l), proj_source(rm(r))))
        if oc == (t,):
            return lambda l, r: proj_target(
                mask_rows_source(rm(r), proj_target(lm(l))))
        if oc == (s,):
            return lambda l, r: proj_target(lm(l)) & proj_source(rm(r))
        if oc == ():
            return lambda l, r: \
                1 if proj_target(lm(l)) & proj_source(rm(r)) else 0
    return None


def _generic_join_fn(lc: tuple, rc: tuple, oc: tuple, ltag: str, rtag: str,
                     n: int) -> Callable:
    """The representation of last resort: hash join over row sets."""
    shared = tuple(c for c in rc if c in lc)
    lk = tuple(lc.index(c) for c in shared)
    rk = tuple(rc.index(c) for c in shared)
    keep = tuple(i for i, c in enumerate(rc) if c not in lc)
    combined = tuple(lc) + tuple(rc[i] for i in keep)
    out_pos = tuple(combined.index(c) for c in oc)
    arity = len(oc)

    def fn(lraw, rraw):
        left = _rows_of(lraw, ltag)
        right = _rows_of(rraw, rtag)
        index: dict = {}
        for row in right:
            index.setdefault(tuple(row[i] for i in rk), []).append(row)
        out: set = set()
        add = out.add
        for row in left:
            for match in index.get(tuple(row[i] for i in lk), ()):
                full_row = row + tuple(match[i] for i in keep)
                add(tuple(full_row[i] for i in out_pos))
        return _raw_of(out, arity, n)

    return fn


def _semi_fn(lc: tuple, rc: tuple, n: int, anti: bool) -> Callable | None:
    """Semijoin/antijoin (``rc`` ⊆ ``lc``) as bitset masks."""
    la, ra = len(lc), len(rc)
    full = (1 << n) - 1
    if ra == 0:
        if anti:
            return lambda l, r: _empty_raw(_tag(la), n) if r else l
        return lambda l, r: l if r else _empty_raw(_tag(la), n)
    if la == 1 and ra == 1:
        if anti:
            return lambda l, r: l & ~r
        return lambda l, r: l & r
    if la == 2 and ra == 2:
        orient = (lambda r: r) if rc == lc else (lambda r: transpose(r, n))
        if anti:
            return lambda l, r: andnot_rows(l, orient(r))
        return lambda l, r: and_rows(l, orient(r))
    if la == 2 and ra == 1:
        masker = mask_rows_source if rc[0] == lc[0] else mask_rows_target
        if anti:
            return lambda l, r: masker(l, full & ~r)
        return lambda l, r: masker(l, r)
    return None


def _generic_semi_fn(lc: tuple, rc: tuple, ltag: str, rtag: str, n: int,
                     anti: bool) -> Callable:
    key = tuple(lc.index(c) for c in rc)
    arity = len(lc)

    def fn(lraw, rraw):
        left = _rows_of(lraw, ltag)
        keys = _rows_of(rraw, rtag)
        if anti:
            rows = {row for row in left
                    if tuple(row[i] for i in key) not in keys}
        else:
            rows = {row for row in left
                    if tuple(row[i] for i in key) in keys}
        return _raw_of(rows, arity, n)

    return fn


def _unary_mask(comparison: Comparison, n: int) -> int:
    """The values satisfying a single-column comparison, as a bit vector."""
    bits = 0
    for value in range(n):
        if comparison.evaluate((value, value), n):
            bits |= 1 << value
    return bits


def _pair_mask_fn(op: str, flipped: bool, full: int) -> Callable[[int], int]:
    """For a two-column comparison over ``(x, y)`` rows: the mask of ``y``
    satisfying it, as a function of ``x`` (``flipped`` means the comparison
    reads ``(y, x)``)."""
    if op == "eq":
        return lambda x: 1 << x
    if op == "ne":
        return lambda x: full ^ (1 << x)
    if op == "leq":
        if flipped:  # y <= x
            return lambda x: (2 << x) - 1
        return lambda x: full & ~((1 << x) - 1)  # x <= y
    if flipped:  # y > x
        return lambda x: full & ~((2 << x) - 1)
    return lambda x: (1 << x) - 1  # x > y


def _select_r_fn(comparisons: tuple, n: int) -> Callable:
    """The binary-relation selection kernel: comparisons classified once at
    codegen time into a source mask, a target mask, and per-source masks
    for the two-column predicates."""
    full = (1 << n) - 1
    source_mask = full
    target_mask = full
    pair_fns = []
    for comparison in comparisons:
        used = set(comparison.columns_used())
        if used <= {0}:
            mask = 0
            for value in range(n):
                if comparison.evaluate((value, 0), n):
                    mask |= 1 << value
            source_mask &= mask
        elif used == {1}:
            mask = 0
            for value in range(n):
                if comparison.evaluate((0, value), n):
                    mask |= 1 << value
            target_mask &= mask
        else:
            flipped = isinstance(comparison.left, Col) \
                and comparison.left.index == 1
            pair_fns.append(_pair_mask_fn(comparison.op, flipped, full))

    if not pair_fns:
        def fn(rows):
            return [(bits & target_mask) if (source_mask >> x) & 1 else 0
                    for x, bits in enumerate(rows)]
        return fn

    def fn(rows):
        out = []
        append = out.append
        for x, bits in enumerate(rows):
            if not (source_mask >> x) & 1:
                append(0)
                continue
            bits &= target_mask
            for pair in pair_fns:
                if not bits:
                    break
                bits &= pair(x)
            append(bits)
        return out

    return fn


# ----------------------------------------------------------------- emitter


def _walk(plan: Plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)


def _delta_mode(node: Fixpoint, seminaive: bool) -> bool:
    return node.delta_body is not None and seminaive


def _scoped_cumulatives(node: Fixpoint, seminaive: bool) -> list[Cumulative]:
    """The Cumulative nodes whose accumulator belongs to ``node``'s store:
    everything in its bodies *except* subtrees owned by a nested
    delta-rewritten fixed point (which runs its own store, exactly like the
    interpreter's per-fixpoint accumulator dict)."""
    found: list[Cumulative] = []
    seen: set[int] = set()

    def visit(plan: Plan) -> None:
        if isinstance(plan, Fixpoint) and _delta_mode(plan, seminaive):
            return
        if isinstance(plan, Cumulative) and id(plan) not in seen:
            seen.add(id(plan))
            found.append(plan)
        for child in plan.children():
            visit(child)

    for child in node.children():
        visit(child)
    return found


class _Emitter:
    """Walks a plan once and accumulates the specialized function body.

    State beyond the source lines: the fixed-point *scope* (auxiliary name
    -> the local variables holding its total and frontier), the global and
    per-round CSE tables backing ``Shared`` nodes, the per-fixpoint
    accumulator variables backing ``Cumulative``, and the representation
    census/fallback log reported on the compiled plan.
    """

    def __init__(self, n: int, seminaive: bool):
        self.n = n
        self.full = (1 << n) - 1
        self.seminaive = seminaive
        self.lines: list[str] = []
        self.indent = 1
        self.ns: dict = dict(_BASE_NS)
        self.ns["_n"] = n
        self.counter = 0
        self.scope: dict[str, tuple[str, str | None, str]] = {}
        self.global_cse: dict[Plan, str] = {}
        self.round_cse: list[dict[Plan, str]] = []
        self.cumulative_stack: list[dict[Cumulative, str]] = []
        self.conditional = 0
        self.fallbacks: list[str] = []
        self.reps = {"unit": 0, "bitset": 0, "csr": 0, "tuples": 0}

    # ------------------------------------------------------------ plumbing

    def fresh(self, prefix: str = "v") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def bind(self, obj) -> str:
        name = f"_k{len(self.ns)}"
        self.ns[name] = obj
        return name

    def note(self, var: str, tag: str) -> None:
        if tag == "b":
            self.emit(f"if _t: _nb(rt, {var})")
        elif tag == "r":
            self.emit(f"if _t: _nr(rt, {var})")
        elif tag == "t":
            self.emit(f"if _t: _nt(rt, {var})")
        else:
            self.emit(f"if _t: _note(rt, {var})")

    def empty_expr(self, tag: str) -> str:
        if tag == "r":
            return f"[0] * {self.n}"
        if tag == "t":
            return "set()"
        return "0"

    # ---------------------------------------------------------- dispatch

    def emit_plan(self, node: Plan) -> tuple[str, str]:
        tag = _tag(len(node.columns))
        if tag == "t" and not isinstance(node, (Rename, Shared, Cumulative)):
            self.fallbacks.append(node.label())
        if not isinstance(node, (Rename, Shared, Cumulative)):
            self.reps[_KIND[tag]] += 1
        if isinstance(node, RelationScan):
            return self._emit_relation_scan(node, tag)
        if isinstance(node, AuxScan):
            return self._emit_aux_scan(node, tag)
        if isinstance(node, DeltaScan):
            return self._emit_delta_scan(node, tag)
        if isinstance(node, DomainProduct):
            return self._emit_domain(node, tag)
        if isinstance(node, Empty):
            var = self.fresh()
            self.emit(f"{var} = {self.empty_expr(tag)}")
            return var, tag
        if isinstance(node, Select):
            return self._emit_select(node, tag)
        if isinstance(node, Project):
            return self._emit_project(node, tag)
        if isinstance(node, Rename):
            return self.emit_plan(node.child)
        if isinstance(node, (Join, JoinProject, Product)):
            return self._emit_join(node, tag)
        if isinstance(node, (SemiJoin, AntiJoin)):
            return self._emit_semi(node, tag, isinstance(node, AntiJoin))
        if isinstance(node, Union):
            return self._emit_union(node, tag)
        if isinstance(node, Difference):
            return self._emit_difference(node, tag)
        if isinstance(node, CountSelect):
            return self._emit_count(node, tag)
        if isinstance(node, Fixpoint):
            return self._emit_fixpoint(node, tag)
        if isinstance(node, Closure):
            if node.k == 1:
                return self._emit_closure(node, tag)
            return self._emit_island(node, tag)
        if isinstance(node, Shared):
            return self._emit_shared(node)
        if isinstance(node, Cumulative):
            return self._emit_cumulative(node)
        if isinstance(node, ConstrainedDomain):
            return self._emit_island(node, tag)
        # Future node kinds run interpreted rather than failing the compile.
        return self._emit_island(node, tag)

    # --------------------------------------------------------------- scans

    def _emit_relation_scan(self, node: RelationScan, tag: str
                            ) -> tuple[str, str]:
        name, order, n = node.name, node.order, self.n
        arity = len(node.columns)
        if tag == "b":
            fn = lambda rt: bits_of_unary(rt.structure.relation(name))  # noqa: E731
        elif tag == "r":
            if order == (1, 0):
                fn = lambda rt: adjacency_of_binary(  # noqa: E731
                    [(row[1], row[0]) for row in rt.structure.relation(name)
                     if len(row) == 2], n)
            else:
                fn = lambda rt: adjacency_of_binary(  # noqa: E731
                    rt.structure.relation(name), n)
        else:
            if order is not None:
                fn = lambda rt: {tuple(row[i] for i in order)  # noqa: E731
                                 for row in rt.structure.relation(name)
                                 if len(row) == arity}
            else:
                fn = lambda rt: {row for row in rt.structure.relation(name)  # noqa: E731
                                 if len(row) == arity}
        var = self.fresh()
        self.emit(f"{var} = {self.bind(fn)}(rt)")
        self.note(var, tag)
        return var, tag

    def _scope_read(self, var: str, order, tag: str) -> tuple[str, str]:
        """An in-scope total/frontier variable, with the scan's permutation
        applied (arity-2 reversal is a transpose)."""
        if order is None or order == tuple(range(len(order))):
            out = self.fresh()
            self.emit(f"{out} = {var}")
            return out, tag
        if tag == "r":  # order == (1, 0)
            out = self.fresh()
            kernel = self.bind(lambda raw: transpose(raw, self.n))
            self.emit(f"{out} = {kernel}({var})")
            return out, tag
        if tag == "t":
            kernel = self.bind(
                lambda raw, order=order: {tuple(row[i] for i in order)
                                          for row in raw})
            out = self.fresh()
            self.emit(f"{out} = {kernel}({var})")
            return out, tag
        out = self.fresh()
        self.emit(f"{out} = {var}")
        return out, tag

    def _emit_aux_scan(self, node: AuxScan, tag: str) -> tuple[str, str]:
        arity = len(node.columns)
        bound = self.scope.get(node.name)
        if bound is not None:
            total_var, _delta_var, bound_tag = bound
            if bound_tag != tag:
                var = self.fresh()
                self.emit(f"{var} = {self.empty_expr(tag)}")
                return var, tag
            var, tag = self._scope_read(total_var, node.order, tag)
            self.note(var, tag)
            return var, tag
        name, order, n = node.name, node.order, self.n

        def fn(rt):
            rows = [row for row in rt.aux.get(name, ())
                    if len(row) == arity
                    and all(0 <= value < n for value in row)]
            if order is not None:
                rows = [tuple(row[i] for i in order) for row in rows]
            return _raw_of(rows, arity, n)

        var = self.fresh()
        self.emit(f"{var} = {self.bind(fn)}(rt)")
        self.note(var, tag)
        return var, tag

    def _emit_delta_scan(self, node: DeltaScan, tag: str) -> tuple[str, str]:
        bound = self.scope.get(node.name)
        if bound is None or bound[1] is None or bound[2] != tag:
            var = self.fresh()
            self.emit(f"{var} = {self.empty_expr(tag)}")
            self.note(var, tag)
            return var, tag
        var, tag = self._scope_read(bound[1], node.order, tag)
        self.note(var, tag)
        return var, tag

    # ----------------------------------------------------------- leaf-ish

    def _emit_domain(self, node: DomainProduct, tag: str) -> tuple[str, str]:
        k = len(node.columns)
        count = self.n ** k
        var = self.fresh()
        self.emit(f"_ca(rt, {count})")
        if tag == "0":
            self.emit(f"{var} = 1")
        elif tag == "b":
            self.emit(f"{var} = {self.full}")
        elif tag == "r":
            self.emit(f"{var} = [{self.full}] * {self.n}")
        else:
            n = self.n
            fn = self.bind(lambda: set(_cartesian(range(n), repeat=k)))
            self.emit(f"{var} = {fn}()")
        self.emit(f"if _t: _note(rt, {count})")
        return var, tag

    def _emit_select(self, node: Select, tag: str) -> tuple[str, str]:
        child_var, child_tag = self.emit_plan(node.child)
        n = self.n
        var = self.fresh()
        if child_tag == "b":
            mask = self.full
            for comparison in node.comparisons:
                mask &= _unary_mask(comparison, n)
            self.emit(f"{var} = {child_var} & {mask}")
        elif child_tag == "r":
            kernel = self.bind(_select_r_fn(node.comparisons, n))
            self.emit(f"{var} = {kernel}({child_var})")
        elif child_tag == "t":
            comparisons = node.comparisons
            kernel = self.bind(
                lambda rows: {row for row in rows
                              if all(c.evaluate(row, n)
                                     for c in comparisons)})
            self.emit(f"{var} = {kernel}({child_var})")
        else:
            holds = all(c.evaluate((), n) for c in node.comparisons)
            self.emit(f"{var} = {child_var}" if holds else f"{var} = 0")
        self.note(var, tag)
        return var, tag

    def _emit_project(self, node: Project, tag: str) -> tuple[str, str]:
        child_var, child_tag = self.emit_plan(node.child)
        fn = None
        if child_tag != "t":
            fn = _project_fn(node.child.columns, node.columns, self.n)
        if fn is None:
            fn = _generic_project_fn(node.child.columns, node.columns,
                                     child_tag, self.n)
        var = self.fresh()
        self.emit(f"{var} = {self.bind(fn)}({child_var})")
        self.note(var, tag)
        return var, tag

    # ------------------------------------------------------------- algebra

    def _emit_join(self, node, tag: str) -> tuple[str, str]:
        left, right = node.children()
        left_var, left_tag = self.emit_plan(left)
        right_var, right_tag = self.emit_plan(right)
        fn = None
        if left_tag != "t" and right_tag != "t":
            fn = _join_fn(left.columns, right.columns, node.columns, self.n)
        if fn is None:
            fn = _generic_join_fn(left.columns, right.columns, node.columns,
                                  left_tag, right_tag, self.n)
        var = self.fresh()
        self.emit(f"{var} = {self.bind(fn)}({left_var}, {right_var})")
        self.note(var, tag)
        return var, tag

    def _emit_semi(self, node, tag: str, anti: bool) -> tuple[str, str]:
        left, right = node.children()
        left_var, left_tag = self.emit_plan(left)
        right_var, right_tag = self.emit_plan(right)
        fn = None
        if left_tag != "t" and right_tag != "t":
            fn = _semi_fn(left.columns, right.columns, self.n, anti)
        if fn is None:
            fn = _generic_semi_fn(left.columns, right.columns,
                                  left_tag, right_tag, self.n, anti)
        var = self.fresh()
        self.emit(f"{var} = {self.bind(fn)}({left_var}, {right_var})")
        self.note(var, tag)
        return var, tag

    def _emit_union(self, node: Union, tag: str) -> tuple[str, str]:
        operand_vars = [self.emit_plan(operand)[0]
                        for operand in node.operands]
        var = self.fresh()
        if tag == "r":
            self.emit(f"{var} = _or_rows(({', '.join(operand_vars)},))")
        else:
            self.emit(f"{var} = " + " | ".join(operand_vars))
        self.note(var, tag)
        return var, tag

    def _emit_difference(self, node: Difference, tag: str) -> tuple[str, str]:
        left_var, _ = self.emit_plan(node.left)
        right_var, _ = self.emit_plan(node.right)
        var = self.fresh()
        if tag == "b":
            self.emit(f"{var} = {left_var} & ~{right_var} & {self.full}")
        elif tag == "r":
            self.emit(f"{var} = _andnot({left_var}, {right_var})")
        elif tag == "t":
            self.emit(f"{var} = {left_var} - {right_var}")
        else:
            self.emit(f"{var} = {left_var} & ~{right_var} & 1")
        self.note(var, tag)
        return var, tag

    def _emit_count(self, node: CountSelect, tag: str) -> tuple[str, str]:
        n = self.n
        threshold = node.threshold
        if threshold == "half":
            threshold = (n + 1) // 2
        threshold = int(threshold)
        if threshold <= 0:
            # Vacuously true: the full domain over the remaining columns.
            return self._emit_domain(DomainProduct(node.columns), tag)
        child_var, child_tag = self.emit_plan(node.child)
        var = self.fresh()
        if child_tag == "r":
            position = node.child.columns.index(node.variable)
            if position == 1:
                fn = self.bind(
                    lambda rows: count_per_source(rows, threshold))
            else:
                fn = self.bind(
                    lambda rows: count_per_source(transpose(rows, n),
                                                  threshold))
            self.emit(f"{var} = {fn}({child_var})")
        elif child_tag == "b":
            self.emit(
                f"{var} = 1 if {child_var}.bit_count() >= {threshold} else 0")
        else:
            group = tuple(i for i, c in enumerate(node.child.columns)
                          if c != node.variable)
            arity = len(group)

            def fn(rows):
                counts: dict = {}
                for row in rows:
                    key = tuple(row[i] for i in group)
                    counts[key] = counts.get(key, 0) + 1
                return _raw_of(
                    (key for key, count in counts.items()
                     if count >= threshold), arity, n)

            self.emit(f"{var} = {self.bind(fn)}({child_var})")
        self.note(var, tag)
        return var, tag

    # --------------------------------------------------------- fixed points

    def _emit_closure(self, node: Closure, tag: str) -> tuple[str, str]:
        self.emit(f"_ca(rt, {self.n})")
        body_var, _ = self.emit_plan(node.body)
        n, deterministic = self.n, node.deterministic
        fn = self.bind(lambda rows, rt: closure_adjacency(
            rows, n, deterministic=deterministic, governor=rt.gov))
        var = self.fresh()
        self.emit(f"{var} = {fn}({body_var}, rt)")
        self.note(var, tag)
        return var, tag

    def _bind_scope(self, name: str, entry):
        previous = self.scope.get(name)
        self.scope[name] = entry
        return previous

    def _restore_scope(self, name: str, previous) -> None:
        if previous is None:
            self.scope.pop(name, None)
        else:
            self.scope[name] = previous

    def _emit_fixpoint(self, node: Fixpoint, tag: str) -> tuple[str, str]:
        arity = len(node.variables)
        ftag = _tag(arity)
        # Hoist round-invariant shared subplans above the loop (they are
        # auxiliary-free by the optimizer's contract, so this is the memo
        # the interpreter keeps, paid before round one instead of during).
        for shared in _walk(node):
            if isinstance(shared, Shared) and not shared.volatile \
                    and shared.child not in self.global_cse:
                self._emit_shared(shared)
        if _delta_mode(node, self.seminaive):
            return self._emit_fixpoint_delta(node, tag, arity, ftag)
        return self._emit_fixpoint_naive(node, tag, arity, ftag)

    def _emit_fixpoint_delta(self, node: Fixpoint, tag: str, arity: int,
                             ftag: str) -> tuple[str, str]:
        store: dict[Cumulative, str] = {}
        for cumulative in _scoped_cumulatives(node, self.seminaive):
            store[cumulative] = acc = self.fresh("acc")
            self.emit(f"{acc} = None")
        self.cumulative_stack.append(store)

        total, delta, new = self.fresh("tot"), self.fresh("dlt"), \
            self.fresh("new")
        # Round one: the full body against the empty relation.
        self.emit(f"{total} = {self.empty_expr(ftag)}")
        self.emit("_round_pre(rt)")
        before = self.fresh("bfr")
        self.emit(f"{before} = _rows_now(rt)")
        previous = self._bind_scope(node.relation, (total, None, ftag))
        self.round_cse.append({})
        body_var, _ = self.emit_plan(node.body)
        self.round_cse.pop()
        self.emit(f"_round_post(rt, {before})")
        if ftag == "t":
            # Private copy: the loop updates it in place, and the body's
            # result may be aliased by a Shared/Cumulative cache entry.
            self.emit(f"{total} = set({body_var})")
        else:
            self.emit(f"{total} = {body_var}")
        self.emit(f"{delta} = {body_var}")
        # Later rounds: only the delta body, against the frontier.
        if ftag == "r":
            self.emit(f"while any({delta}):")
        else:
            self.emit(f"while {delta}:")
        self.indent += 1
        self.emit("_round_pre(rt)")
        self.emit(f"{before} = _rows_now(rt)")
        self._bind_scope(node.relation, (total, delta, ftag))
        self.round_cse.append({})
        derived_var, _ = self.emit_plan(node.delta_body)
        self.round_cse.pop()
        self.emit(f"_round_post(rt, {before})")
        if ftag == "r":
            self.emit(f"{new} = [a & ~b for a, b in "
                      f"zip({derived_var}, {total})]")
            self.emit(f"{total} = [a | b for a, b in zip({total}, {new})]")
        elif ftag == "t":
            self.emit(f"{new} = {derived_var} - {total}")
            self.emit(f"{total} |= {new}")
        else:
            self.emit(f"{new} = {derived_var} & ~{total}")
            self.emit(f"{total} |= {new}")
        self.emit(f"{delta} = {new}")
        self.indent -= 1
        self._restore_scope(node.relation, previous)
        self.cumulative_stack.pop()
        self.note(total, ftag)
        return total, tag

    def _emit_fixpoint_naive(self, node: Fixpoint, tag: str, arity: int,
                             ftag: str) -> tuple[str, str]:
        total, new = self.fresh("tot"), self.fresh("new")
        self.emit(f"{total} = {self.empty_expr(ftag)}")
        self.emit("while True:")
        self.indent += 1
        self.emit("_naive_round(rt)")
        previous = self._bind_scope(node.relation, (total, None, ftag))
        body_var, _ = self.emit_plan(node.body)
        self._restore_scope(node.relation, previous)
        if ftag == "r":
            self.emit(f"{new} = [a & ~b for a, b in "
                      f"zip({body_var}, {total})]")
            self.emit(f"if not any({new}): break")
            self.emit(f"{total} = [a | b for a, b in zip({total}, {new})]")
        elif ftag == "t":
            self.emit(f"{new} = {body_var} - {total}")
            self.emit(f"if not {new}: break")
            self.emit(f"{total} |= {new}")
        else:
            self.emit(f"{new} = {body_var} & ~{total}")
            self.emit(f"if not {new}: break")
            self.emit(f"{total} |= {new}")
        self.indent -= 1
        self.note(total, ftag)
        return total, tag

    # -------------------------------------------------- sharing and islands

    def _emit_shared(self, node: Shared) -> tuple[str, str]:
        child = node.child
        tag = _tag(len(child.columns))
        if node.volatile:
            table = self.round_cse[-1] if self.round_cse else None
        else:
            table = self.global_cse
        if table is not None:
            cached = table.get(child)
            if cached is not None:
                self.emit("if _t: _sh(rt)")
                return cached, tag
        var, tag = self.emit_plan(child)
        if table is not None and self.conditional == 0:
            table[child] = var
        return var, tag

    def _emit_cumulative(self, node: Cumulative) -> tuple[str, str]:
        tag = _tag(len(node.columns))
        store = self.cumulative_stack[-1] if self.cumulative_stack else None
        acc = store.get(node) if store is not None else None
        if acc is None:
            return self.emit_plan(node.full)
        self.conditional += 1
        self.emit(f"if {acc} is None:")
        self.indent += 1
        full_var, _ = self.emit_plan(node.full)
        self.emit(f"{acc} = {full_var}")
        self.indent -= 1
        self.emit("else:")
        self.indent += 1
        delta_var, _ = self.emit_plan(node.delta)
        if tag == "r":
            self.emit(f"{acc} = [a | b for a, b in zip({acc}, {delta_var})]")
        else:
            self.emit(f"{acc} = {acc} | {delta_var}")
        self.indent -= 1
        self.conditional -= 1
        return acc, tag

    def _emit_island(self, node: Plan, tag: str) -> tuple[str, str]:
        """Execute ``node`` through the interpreted plan executor, bridging
        the fixed-point scope both ways.  The island does its own stats and
        governor accounting (it runs ``Plan.execute``), so no note here."""
        spec = tuple((name, entry[2]) for name, entry in self.scope.items())
        args = []
        for _name, entry in self.scope.items():
            args.append(entry[0])
            args.append(entry[1] if entry[1] is not None else "None")
        arity = len(node.columns)
        n = self.n

        def fn(rt, *values):
            aux = dict(rt.aux)
            delta = {}
            for index, (name, bound_tag) in enumerate(spec):
                total_raw = values[2 * index]
                delta_raw = values[2 * index + 1]
                aux[name] = frozenset(_rows_of(total_raw, bound_tag))
                if delta_raw is not None:
                    delta[name] = frozenset(_rows_of(delta_raw, bound_tag))
            context = ExecutionContext(rt.structure, aux, rt.seminaive,
                                       delta, rt.stats, {}, {}, None, rt.gov)
            return _raw_of(node.execute(context).rows, arity, n)

        var = self.fresh()
        call_args = ", ".join(["rt"] + args)
        self.emit(f"{var} = {self.bind(fn)}({call_args})")
        return var, tag


# ------------------------------------------------------------ compiled plan


class CompiledColumnarPlan:
    """One plan, specialized: the generated source, the executable closure,
    and the emission census (representations chosen, tuple fallbacks)."""

    __slots__ = ("plan", "n", "seminaive", "source", "fn", "out_tag",
                 "representations", "fallbacks")

    def __init__(self, plan: Plan, n: int, seminaive: bool, source: str,
                 fn: Callable, out_tag: str, representations: dict,
                 fallbacks: tuple):
        self.plan = plan
        self.n = n
        self.seminaive = seminaive
        self.source = source
        self.fn = fn
        self.out_tag = out_tag
        self.representations = representations
        self.fallbacks = fallbacks

    def execute(self, structure, auxiliary=None, stats=None, governor=None
                ) -> frozenset:
        """Run the specialized function and decode the raw result to rows."""
        if structure.size != self.n:
            raise ValueError(
                f"plan compiled for universe {self.n}, got {structure.size}")
        runtime = _Runtime(self.n, structure, dict(auxiliary or {}),
                           self.seminaive, stats, governor)
        return frozenset(_rows_of(self.fn(runtime), self.out_tag))

    def report(self) -> dict:
        """The per-plan representation summary ``--stats`` prints."""
        return {
            "universe": self.n,
            "representations": dict(self.representations),
            "tuple_fallbacks": list(self.fallbacks),
        }


def compile_columnar(plan: Plan, n: int, seminaive: bool = True
                     ) -> CompiledColumnarPlan:
    """Emit and ``exec`` the specialized function for ``plan`` over a
    universe of ``n`` elements."""
    emitter = _Emitter(n, seminaive)
    var, tag = emitter.emit_plan(plan)
    emitter.emit(f"return {var}")
    source = "def _columnar_plan(rt):\n    _t = rt.track\n" \
        + "\n".join(emitter.lines) + "\n"
    namespace = emitter.ns
    exec(compile(source, f"<columnar-plan:{id(plan):x}>", "exec"), namespace)
    return CompiledColumnarPlan(plan, n, seminaive, source,
                                namespace["_columnar_plan"], tag,
                                emitter.reps, tuple(emitter.fallbacks))


# ------------------------------------------------------------------- cache


_CODEGEN_CACHE: dict[tuple, CompiledColumnarPlan] = {}
_CODEGEN_CACHE_LIMIT = 512
# The cache is shared process-wide (the query service evaluates from
# several threads at once); the lock covers the get/evict/store sequence
# so a concurrent eviction can never interleave with a store.  Compiled
# plans themselves are immutable, so a duplicate compile under a lost
# race would be wasted work, not corruption — the lock spares even that.
_CODEGEN_LOCK = threading.Lock()

#: The most recently compiled-or-fetched plan's report, for the CLI.
_LAST_REPORT: dict | None = None


def clear_codegen_cache() -> None:
    """Drop every compiled plan (chaos/benchmark fixtures call this)."""
    with _CODEGEN_LOCK:
        _CODEGEN_CACHE.clear()


def compiled_columnar(plan: Plan, n: int, seminaive: bool = True,
                      stats: PlanStats | None = None) -> CompiledColumnarPlan:
    """The cached compiled form of ``(plan, n, strategy)`` — the
    representation signature.  Hits are counted on ``stats``."""
    global _LAST_REPORT
    key = (plan, n, seminaive)
    with _CODEGEN_LOCK:
        compiled = _CODEGEN_CACHE.get(key)
    if compiled is not None:
        if stats is not None:
            stats.codegen_cache_hits += 1
    else:
        compiled = compile_columnar(plan, n, seminaive)
        with _CODEGEN_LOCK:
            if len(_CODEGEN_CACHE) >= _CODEGEN_CACHE_LIMIT:
                _CODEGEN_CACHE.clear()
            _CODEGEN_CACHE[key] = compiled
    _LAST_REPORT = compiled.report()
    return compiled


def last_report() -> dict | None:
    """The representation report of the most recent compile/lookup (what
    the CLI's ``--stats`` shows for ``--backend columnar``)."""
    return _LAST_REPORT


def execute_columnar(plan: Plan, structure, auxiliary=None,
                     seminaive: bool = True, stats: PlanStats | None = None,
                     governor=None, degradations: list | None = None
                     ) -> frozenset:
    """Compile (cached) and run ``plan`` columnar; the one-call entry the
    evaluation ladder uses.

    The cost gate refuses universes past :data:`MAX_COLUMNAR_UNIVERSE`.
    Between :data:`~repro.core.columnar.DENSE_WIDTH_THRESHOLD` and the cap
    the plan runs on the chunked interpreter (CSR payloads, O(edges)
    memory) instead of the dense generated code (giant-int masks, O(n)
    bytes per row).  Every node that fell back to the tuple representation
    is surfaced as a ``DegradationEvent("representation", "tuple", ...)``
    when the caller passes a ``degradations`` list.
    """
    global _LAST_REPORT
    if structure.size > MAX_COLUMNAR_UNIVERSE:
        raise ValueError(
            f"universe of {structure.size} exceeds the columnar limit "
            f"{MAX_COLUMNAR_UNIVERSE}")
    if structure.size > DENSE_WIDTH_THRESHOLD:
        from .chunked import execute_chunked

        result = execute_chunked(plan, structure, auxiliary=auxiliary,
                                 seminaive=seminaive, stats=stats,
                                 governor=governor)
        _LAST_REPORT = {
            "universe": structure.size,
            "backend": "chunked",
            "representations": {"*": "chunked-csr"},
            "tuple_fallbacks": [],
        }
        return result
    compiled = compiled_columnar(plan, structure.size, seminaive, stats)
    if degradations is not None:
        for label in compiled.fallbacks:
            degradations.append(
                DegradationEvent("representation", "tuple", label))
    return compiled.execute(structure, auxiliary=auxiliary, stats=stats,
                            governor=governor)
