"""Canonical formulas from the paper, ready to evaluate.

* :func:`apath_lfp` — the monotone operator ``F`` of Section 3 whose least
  fixed point is APATH (alternating reachability), and :func:`agap_formula`
  for the AGAP decision problem (Definition 3.4 / Fact 3.5).
* :func:`reachability_tc` / :func:`reachability_dtc` — graph reachability
  via the TC and DTC operators (Facts 4.1 / 4.3).
* :func:`even_cardinality_with_count` — the EVEN query using counting
  quantifiers plus the ordering (Section 7): there are at least n/2 elements
  in the "odd positions" iff ... in practice we express EVEN as "the maximum
  element is at an odd position", which needs the order; the purely
  counting-based route is :func:`repro.core.hom.count_hom`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .formula import (
    DTCAtom,
    Formula,
    LFPAtom,
    MAX,
    TCAtom,
    ZERO,
    and_,
    aux,
    count_at_least,
    eq,
    exists,
    forall,
    implies,
    neg,
    or_,
    rel,
    var,
)

__all__ = [
    "apath_lfp",
    "agap_formula",
    "reachability_tc",
    "reachability_dtc",
    "gap_formula",
    "non_reachability",
    "count_reachable_half",
    "NamedQuery",
    "CANONICAL_QUERIES",
]


def apath_lfp(source, target) -> LFPAtom:
    """``APATH(source, target)`` as the least fixed point of the paper's
    monotone operator::

        F(R)[x, y] = (x = y)
                   \\/ [ (exists z)(E(x,z) /\\ R(z,y))
                        /\\ (A(x) -> (forall z)(E(x,z) -> R(z,y))) ]
    """
    x, y, z = "x", "y", "z"
    body = or_(
        eq(x, y),
        and_(
            exists(z, and_(rel("E", x, z), aux("R", z, y))),
            implies(rel("A", x), forall(z, implies(rel("E", x, z), aux("R", z, y)))),
        ),
    )
    return LFPAtom("R", (x, y), body, (source, target))


def agap_formula() -> Formula:
    """AGAP: APATH holds from vertex 0 to vertex n-1 (Definition 3.4)."""
    return apath_lfp(ZERO, MAX)


def reachability_tc(source=ZERO, target=MAX) -> TCAtom:
    """``TC[(x, y) := E(x, y)](source, target)`` — plain graph reachability,
    complete for NL (Fact 4.1)."""
    return TCAtom(("x",), ("y",), rel("E", "x", "y"), (source,), (target,))


def reachability_dtc(source=ZERO, target=MAX) -> DTCAtom:
    """``DTC[(x, y) := E(x, y)](source, target)`` — deterministic
    reachability (edges out of a vertex count only when unique), complete
    for L (Fact 4.3)."""
    return DTCAtom(("x",), ("y",), rel("E", "x", "y"), (source,), (target,))


def non_reachability() -> Formula:
    """``¬TC[(x, y) := E(x, y)](u, v)`` — the *complement* of reachability.

    This is the query behind the Immerman–Szelepcsényi inductive-counting
    argument (NL = co-NL): non-reachability is itself expressible, and the
    columnar backend answers the outer negation as one bitset complement
    over the active domain."""
    return neg(TCAtom(("x",), ("y",), rel("E", "x", "y"),
                      (var("u"),), (var("v"),)))


def count_reachable_half() -> Formula:
    """Vertices that reach at least half the universe: ``(exists>=n/2 v)
    TC[E](u, v)`` — the counting quantifier applied to a closure, the
    inductive-counting census step.  On the columnar backend the closure
    rows are CSR row-bitsets and the census is one popcount per source."""
    return count_at_least(
        "half", "v",
        TCAtom(("x",), ("y",), rel("E", "x", "y"), (var("u"),), (var("v"),)))


def gap_formula() -> Formula:
    """GAP via LFP instead of TC (useful as a cross-check of the two
    evaluators): the least fixed point of ``(x = y) \\/ exists z (E(x,z) /\\ R(z,y))``."""
    body = or_(
        eq("x", "y"),
        exists("z", and_(rel("E", "x", "z"), aux("R", "z", "y"))),
    )
    return LFPAtom("R", ("x", "y"), body, (ZERO, MAX))


# ------------------------------------------------------------ the registry


@dataclass(frozen=True)
class NamedQuery:
    """A canonical query addressable by name (the CLI's ``logic``
    subcommand and the Figure-1 benchmark suite draw from this registry).

    ``variables`` is the free-variable column layout of the relation the
    query defines; an empty tuple means a sentence (the defined relation
    is the unit ``{()}`` or empty — i.e. ``True``/``False``).
    """

    name: str
    description: str
    variables: tuple[str, ...]
    formula: Callable[[], Formula]


#: The Figure-1 query suite, one entry per operator family of the paper:
#: evaluate any of these on either logic backend with
#: ``define_relation(query.formula(), structure, query.variables,
#: backend=...)``.
CANONICAL_QUERIES: dict[str, NamedQuery] = {
    query.name: query
    for query in (
        NamedQuery(
            "tc", "all-pairs reachability: TC[(x,y) := E(x,y)](u, v) (Fact 4.1)",
            ("u", "v"),
            lambda: TCAtom(("x",), ("y",), rel("E", "x", "y"),
                           (var("u"),), (var("v"),)),
        ),
        NamedQuery(
            "dtc", "all-pairs deterministic reachability (Fact 4.3)",
            ("u", "v"),
            lambda: DTCAtom(("x",), ("y",), rel("E", "x", "y"),
                            (var("u"),), (var("v"),)),
        ),
        NamedQuery(
            "apath", "the APATH relation as an LFP (Definition 3.4)",
            ("u", "v"),
            lambda: apath_lfp(var("u"), var("v")),
        ),
        NamedQuery(
            "agap", "the AGAP sentence: APATH(0, max) (Definition 3.4)",
            (),
            agap_formula,
        ),
        NamedQuery(
            "gap", "the GAP sentence via LFP: reach(0, max)",
            (),
            gap_formula,
        ),
        NamedQuery(
            "reach", "the GAP sentence via TC: TC[E](0, max) (Fact 4.1)",
            (),
            reachability_tc,
        ),
        NamedQuery(
            "dreach", "deterministic GAP via DTC: DTC[E](0, max) (Fact 4.3)",
            (),
            reachability_dtc,
        ),
        NamedQuery(
            "half-out", "vertices with outgoing edges to at least half the "
                        "universe (Section 7 counting)",
            ("u",),
            lambda: count_at_least("half", "y", rel("E", "u", "y")),
        ),
        NamedQuery(
            "non-reach", "all-pairs NON-reachability: the complement of tc "
                         "(Immerman–Szelepcsényi; a bitset "
                         "complement on the columnar backend)",
            ("u", "v"),
            non_reachability,
        ),
        NamedQuery(
            "count-reach", "vertices that reach at least half the universe "
                           "(counting over a closure — the inductive-"
                           "counting census step)",
            ("u",),
            count_reachable_half,
        ),
    )
}
