"""First-order interpretations (Definition 3.1).

A k-ary first-order interpretation maps structures of one vocabulary to
structures of another: the target universe is the set of k-tuples over the
source universe, and each target relation of arity ``b`` is defined by a
source formula with ``b*k`` free variables.  The paper uses interpretations
as its reduction notion (``S <=_fo T``) and the closure of ℒ(SRL) under
them (Proposition 3.3) is one half of Theorem 3.10.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping, Sequence

from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from .eval import ModelChecker
from .formula import Formula

__all__ = ["Interpretation", "identity_interpretation"]


@dataclass
class Interpretation:
    """A k-ary first-order interpretation.

    ``relation_formulas`` maps each target relation name to a pair
    ``(variables, formula)`` where ``variables`` is a flat tuple of
    ``arity * k`` variable names: the first ``k`` name the components of the
    first target-tuple coordinate, and so on.
    """

    k: int
    target_vocabulary: Vocabulary
    relation_formulas: Mapping[str, tuple[tuple[str, ...], Formula]]

    def __post_init__(self) -> None:
        for name in self.target_vocabulary:
            if name not in self.relation_formulas:
                raise ValueError(f"no defining formula for target relation {name}")
            variables, _ = self.relation_formulas[name]
            expected = self.target_vocabulary.arity(name) * self.k
            if len(variables) != expected:
                raise ValueError(
                    f"relation {name}: expected {expected} free variables "
                    f"(arity x k), got {len(variables)}"
                )

    def target_size(self, source: Structure) -> int:
        return source.size ** self.k

    def tuple_index(self, row: Sequence[int], source_size: int) -> int:
        """The index of a source k-tuple in the target universe (n-ary
        positional encoding, most-significant coordinate first)."""
        index = 0
        for value in row:
            index = index * source_size + value
        return index

    def apply(self, source: Structure) -> Structure:
        """The image structure ``m_phi(source)``."""
        checker = ModelChecker(source)
        n = source.size
        relations: dict[str, frozenset[tuple[int, ...]]] = {}
        for name in self.target_vocabulary:
            arity = self.target_vocabulary.arity(name)
            variables, formula = self.relation_formulas[name]
            rows = set()
            for flat in product(source.universe, repeat=arity * self.k):
                assignment = dict(zip(variables, flat))
                if checker.evaluate(formula, assignment):
                    coordinates = tuple(
                        self.tuple_index(flat[i * self.k: (i + 1) * self.k], n)
                        for i in range(arity)
                    )
                    rows.add(coordinates)
            relations[name] = frozenset(rows)
        return Structure(self.target_vocabulary, self.target_size(source), relations)


def identity_interpretation(vocabulary: Vocabulary) -> Interpretation:
    """The 1-ary interpretation that copies every relation unchanged."""
    from .formula import rel

    formulas = {}
    for name in vocabulary:
        arity = vocabulary.arity(name)
        variables = tuple(f"x{i}" for i in range(arity))
        formulas[name] = (variables, rel(name, *variables))
    return Interpretation(1, vocabulary, formulas)
