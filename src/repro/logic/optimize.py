"""The plan optimizer: cost-based rewrites over the relational-plan IR.

:mod:`repro.logic.compile` emits plans that mirror the formula's syntax:
selections sit wherever the atom happened to be, conjunctions join in
source order, equality atoms and quantifier widening materialize full
``n^k`` domain products, negation always pays the active-domain
complement, and a :class:`~repro.logic.plan.Fixpoint` body is re-derived
in full every round.  This module is the standard database answer — a
pipeline of semantics-preserving rewrite passes, run once per (formula,
structure-statistics) pair:

1.  **Simplification** — identity projects/renames dropped, nested unions
    flattened, ``Empty``/unit operands absorbed, a ``DomainProduct``
    joined against columns another operand already covers removed.
2.  **Selection pushdown** — comparisons move below joins, products,
    unions, projections and differences into the operand whose columns
    they mention; a selection landing on a ``DomainProduct`` fuses into a
    :class:`~repro.logic.plan.ConstrainedDomain`, which applies the
    predicates *during* enumeration (an equality atom costs its output,
    not ``n^2``).
3.  **Dead-column pruning** (projection pushdown) — columns no operator
    above will ever read are dropped below joins and products, so
    quantified-away variables stop flowing through intermediate results.
4.  **Greedy cost-based join reordering** — maximal ``Join`` trees are
    flattened, ``DomainProduct`` leaves covered by other operands are
    dropped, and the chain is rebuilt greedily from cardinality estimates
    (live relation statistics; ``|L ⋈ R| ≈ |L|·|R| / n^{|shared|}``).
    While rebuilding, an operand that adds no new columns becomes a
    :class:`~repro.logic.plan.SemiJoin`, and a
    ``Difference(DomainProduct, φ)`` operand whose columns are already
    covered becomes an :class:`~repro.logic.plan.AntiJoin` against ``φ``
    directly — negation as a probe, not a materialized complement.
5.  **Semi-naive delta rewriting** — every ``Fixpoint`` body is
    differentiated with respect to its own relation:
    ``d(plan)`` is the union over the auxiliary's occurrences of the plan
    with that :class:`~repro.logic.plan.AuxScan` replaced by a
    :class:`~repro.logic.plan.DeltaScan` (the frontier), so a linear body
    does O(Δ) work per round.  Occurrences the product rule cannot reach —
    under the right side of a ``Difference``/``AntiJoin``, under a
    ``CountSelect``, or inside a nested fixed point — fall back to
    re-deriving *that part* in full (sound: the part's current value
    contains every row it can newly contribute); disjuncts that do not
    mention the auxiliary at all run only in round one.
6.  **Common-subplan sharing** — structural hashing (plans are frozen
    dataclasses) finds repeated auxiliary-free subtrees and subtrees that
    are round-invariant inside a fixed-point body; each is wrapped in a
    :class:`~repro.logic.plan.Shared` node and executed once per context
    memo, so its relation — and the persistent join indexes built on it —
    is reused across occurrences and across fixpoint rounds.

The passes only ever rewrite plans into observationally identical plans;
``optimize=False`` on :class:`~repro.logic.eval.ModelChecker` /
:func:`~repro.logic.eval.define_relation` keeps the raw compiled plan as
the differential oracle, and the three-way suite in
``tests/logic/test_plan_differential.py`` pins optimized == raw == tuple.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.structures.structure import Structure
from repro.testing.chaos import chaos_point

from .compile import compile_formula
from .formula import Formula, pretty
from .plan import (
    AntiJoin,
    AuxScan,
    Closure,
    ConstrainedDomain,
    CountSelect,
    Cumulative,
    DeltaScan,
    Difference,
    DomainProduct,
    Empty,
    Fixpoint,
    Join,
    JoinProject,
    Plan,
    Product,
    Project,
    RelationScan,
    Rename,
    Select,
    SemiJoin,
    Shared,
    Union,
)

__all__ = [
    "CostModel",
    "MaintenancePlan",
    "PlanInvariantError",
    "base_delta_name",
    "clear_plan_cache",
    "differentiate",
    "differentiate_relation",
    "estimate",
    "explain_optimized",
    "maintenance_strategy",
    "optimize_formula",
    "optimize_plan",
]


# --------------------------------------------------------------- cost model


class CostModel:
    """Cardinality statistics for cost-based decisions: the universe size,
    the live input-relation sizes, and — when available — per-relation
    degree statistics (``distinct_sources`` / ``distinct_targets`` /
    ``max_out_degree``, the shape facts a snapshot header persists).
    :meth:`key` is the hashable identity the optimizer memoizes on —
    two structures with the same statistics optimize identically."""

    __slots__ = ("size", "sizes", "degrees")

    def __init__(self, size: int, sizes: Mapping[str, int] | None = None,
                 degrees: Mapping[str, Mapping[str, int]] | None = None):
        self.size = max(int(size), 1)
        self.sizes = dict(sizes or {})
        self.degrees = {name: dict(stats)
                        for name, stats in (degrees or {}).items()}

    @classmethod
    def from_structure(cls, structure: Structure) -> "CostModel":
        return cls(structure.size,
                   {name: len(rows) for name, rows in structure.relations.items()},
                   getattr(structure, "degree_stats", None))

    def fanout(self, name: str, from_source: bool) -> float | None:
        """The average out- (or in-) degree of a binary relation over its
        *active* sources (targets), from persisted degree statistics;
        ``None`` when no statistics are recorded for the relation."""
        stats = self.degrees.get(name)
        if not stats:
            return None
        rows = stats.get("rows", self.sizes.get(name, 0))
        anchor = stats.get("distinct_sources" if from_source
                           else "distinct_targets", 0)
        if not anchor:
            return 0.0
        return rows / anchor

    def key(self) -> tuple:
        base = (self.size, tuple(sorted(self.sizes.items())))
        if not self.degrees:
            return base
        return base + (tuple(sorted(
            (name, tuple(sorted(stats.items())))
            for name, stats in self.degrees.items())),)


#: Estimated fraction of rows surviving one comparison predicate.
_SELECTIVITY = {"eq": None, "ne": 1.0, "leq": 0.5, "gt": 0.5}


def estimate(plan: Plan, cost: CostModel, memo: dict | None = None) -> float:
    """The estimated output cardinality of ``plan`` — scans from live
    stats, ``|L ⋈ R| ≈ |L|·|R| / n^{|shared|}``, comparisons by fixed
    selectivities (``=`` keeps ``1/n``, ``<=``/``>`` keep half), everything
    capped at ``n^k``.  Crude by design: the greedy reorderer only needs
    the estimates' *order* to be usually right."""
    if memo is None:
        memo = {}
    cached = memo.get(plan)
    if cached is not None:
        return cached
    n = float(cost.size)
    cap = n ** len(plan.columns)

    def sub(child: Plan) -> float:
        return estimate(child, cost, memo)

    if isinstance(plan, RelationScan):
        value = float(cost.sizes.get(plan.name, cap / 2))
    elif isinstance(plan, (AuxScan, DeltaScan)):
        value = cap / 2
    elif isinstance(plan, DomainProduct):
        value = cap
    elif isinstance(plan, ConstrainedDomain):
        value = cap * _predicates_selectivity(plan.comparisons, n)
    elif isinstance(plan, Empty):
        value = 0.0
    elif isinstance(plan, Select):
        value = sub(plan.child) * _predicates_selectivity(plan.comparisons, n)
    elif isinstance(plan, (Project, Rename, Shared)):
        value = sub(plan.children()[0])
    elif isinstance(plan, Cumulative):
        value = sub(plan.full)
    elif isinstance(plan, (Join, JoinProject)):
        shared_names = set(plan.left.columns) & set(plan.right.columns)
        shared = len(shared_names)
        value = sub(plan.left) * sub(plan.right) / (n ** shared)
        if shared == 1:
            refined = _degree_join_estimate(plan, cost, sub,
                                            next(iter(shared_names)))
            if refined is not None:
                value = min(value, refined)
    elif isinstance(plan, Product):
        value = sub(plan.left) * sub(plan.right)
    elif isinstance(plan, SemiJoin):
        hit = min(1.0, sub(plan.right) / (n ** len(plan.right.columns)))
        value = sub(plan.left) * hit
    elif isinstance(plan, AntiJoin):
        hit = min(1.0, sub(plan.right) / (n ** len(plan.right.columns)))
        value = sub(plan.left) * (1.0 - hit)
    elif isinstance(plan, Union):
        value = sum(sub(op) for op in plan.operands)
    elif isinstance(plan, Difference):
        value = sub(plan.left)
    elif isinstance(plan, CountSelect):
        value = min(sub(plan.child), cap) / 2
    elif isinstance(plan, (Fixpoint, Closure)):
        value = cap / 2
    else:  # pragma: no cover - future node kinds estimate pessimistically
        value = cap
    value = min(value, cap)
    memo[plan] = value
    return value


def _degree_join_estimate(plan, cost: CostModel, sub, shared_name: str
                          ) -> float | None:
    """A tighter join bound from persisted degree statistics: when one
    side is (a wrapper around) a binary relation scan joined on one of
    its columns, each build-side row matches on average ``rows / distinct
    anchors`` scan rows — skew-aware where ``|L|·|R| / n`` assumes keys
    spread uniformly over the whole universe."""
    best = None
    for probe, build in ((plan.right, plan.left), (plan.left, plan.right)):
        if len(probe.columns) != 2 or shared_name not in probe.columns:
            continue
        position = probe.columns.index(shared_name)
        node = probe
        while isinstance(node, (Shared, Rename)):
            node = node.child  # positions survive renaming and sharing
        if not isinstance(node, RelationScan):
            continue
        raw = position if node.order is None else node.order[position]
        fanout = cost.fanout(node.name, from_source=(raw == 0))
        if fanout is None:
            continue
        candidate = sub(build) * fanout
        if best is None or candidate < best:
            best = candidate
    return best


def _predicates_selectivity(comparisons, n: float) -> float:
    fraction = 1.0
    for comparison in comparisons:
        keep = _SELECTIVITY[comparison.op]
        fraction *= (1.0 / n) if keep is None else keep
    return fraction


# ------------------------------------------------------------ pass plumbing


def _with_children(plan: Plan, children: Sequence[Plan]) -> Plan:
    """``plan`` rebuilt over new children (same node kind and attributes)."""
    if isinstance(plan, Select):
        return Select(children[0], plan.comparisons)
    if isinstance(plan, Project):
        return Project(children[0], plan.columns)
    if isinstance(plan, Rename):
        return Rename(children[0], plan.columns)
    if isinstance(plan, (Join, Product, Difference, SemiJoin, AntiJoin)):
        return type(plan)(children[0], children[1])
    if isinstance(plan, JoinProject):
        return JoinProject(children[0], children[1], plan.columns)
    if isinstance(plan, Union):
        return Union(tuple(children))
    if isinstance(plan, CountSelect):
        return CountSelect(children[0], plan.variable, plan.threshold)
    if isinstance(plan, Fixpoint):
        delta = children[1] if len(children) > 1 else None
        return Fixpoint(plan.relation, plan.variables, children[0], delta)
    if isinstance(plan, Closure):
        return Closure(children[0], plan.k, plan.deterministic)
    if isinstance(plan, Shared):
        return Shared(children[0], plan.volatile)
    if isinstance(plan, Cumulative):
        return Cumulative(children[0], children[1])
    return plan  # leaves carry no children


def _rewrite(plan: Plan, rule) -> Plan:
    """Bottom-up rewriting: children first, then ``rule`` on the rebuilt
    node.  ``rule`` maps one node (whose children are already rewritten) to
    a replacement plan."""
    children = plan.children()
    if children:
        rebuilt = tuple(_rewrite(child, rule) for child in children)
        if any(new is not old for new, old in zip(rebuilt, children)):
            plan = _with_children(plan, rebuilt)
    return rule(plan)


# ------------------------------------------------------- 1. simplification


def _simplify(plan: Plan) -> Plan:
    return _rewrite(plan, _simplify_node)


_SCANS = (RelationScan, AuxScan, DeltaScan)


def _simplify_node(plan: Plan) -> Plan:
    if isinstance(plan, Project):
        child = plan.child
        if plan.columns == child.columns:
            return child
        if isinstance(child, Empty):
            return Empty(plan.columns)
        if isinstance(child, DomainProduct):
            return DomainProduct(plan.columns)
        if isinstance(child, Project):
            return Project(child.child, plan.columns)
        if isinstance(child, _SCANS) and \
                len(plan.columns) == len(child.columns) and \
                set(plan.columns) == set(child.columns):
            # A pure reordering of a scan: permute during emission instead
            # of copying the whole relation a second time.
            indices = tuple(child.columns.index(c) for c in plan.columns)
            if child.order is not None:
                indices = tuple(child.order[i] for i in indices)
            return replace(child, columns=plan.columns, order=indices)
    if isinstance(plan, Rename):
        child = plan.child
        if plan.columns == child.columns:
            return child
        if isinstance(child, Empty):
            return Empty(plan.columns)
        if isinstance(child, DomainProduct):
            return DomainProduct(plan.columns)
        if isinstance(child, Rename):
            return Rename(child.child, plan.columns)
        if isinstance(child, _SCANS):
            # Scans execute by position; relabeling their columns is free.
            return replace(child, columns=plan.columns)
    if isinstance(plan, Select):
        if not plan.comparisons:
            return plan.child
        if isinstance(plan.child, Empty):
            return plan.child
    if isinstance(plan, Union):
        operands: list[Plan] = []
        for operand in plan.operands:
            if isinstance(operand, Union):
                operands.extend(operand.operands)
            elif not isinstance(operand, Empty):
                operands.append(operand)
        seen: set[Plan] = set()
        unique = [op for op in operands
                  if not (op in seen or seen.add(op))]
        full = DomainProduct(plan.columns)
        if any(op == full for op in unique):
            return full
        if not unique:
            return Empty(plan.columns)
        if len(unique) == 1:
            return unique[0]
        if tuple(unique) != plan.operands:
            return Union(tuple(unique))
    if isinstance(plan, (Join, Product)):
        left, right = plan.left, plan.right
        if isinstance(left, Empty) or isinstance(right, Empty):
            return Empty(plan.columns)
        if isinstance(right, DomainProduct) and not right.columns:
            return left
        if isinstance(left, DomainProduct) and not left.columns:
            return right
        if isinstance(plan, Join):
            if isinstance(right, DomainProduct) and \
                    set(right.columns) <= set(left.columns):
                return left
            if isinstance(left, DomainProduct) and \
                    set(left.columns) <= set(right.columns):
                if plan.columns == right.columns:
                    return right
                return Project(right, plan.columns)
    if isinstance(plan, JoinProject):
        if isinstance(plan.left, Empty) or isinstance(plan.right, Empty):
            return Empty(plan.columns)
    if isinstance(plan, Difference):
        if isinstance(plan.right, Empty) or isinstance(plan.left, Empty):
            return plan.left
        if plan.left == plan.right:
            return Empty(plan.columns)
    if isinstance(plan, SemiJoin):
        if isinstance(plan.left, Empty) or isinstance(plan.right, Empty):
            return Empty(plan.columns)
        if isinstance(plan.right, DomainProduct):
            return plan.left
    if isinstance(plan, AntiJoin):
        if isinstance(plan.left, Empty) or isinstance(plan.right, Empty):
            return plan.left
        if isinstance(plan.right, DomainProduct):
            return Empty(plan.columns)
    return plan


# -------------------------------------------------- 2. selection pushdown


def _pushdown(plan: Plan) -> Plan:
    return _rewrite(plan, _pushdown_node)


def _pushdown_node(plan: Plan) -> Plan:
    if isinstance(plan, Select):
        return _push_select(plan.child, plan.comparisons)
    return plan


def _push_select(plan: Plan, comparisons: tuple) -> Plan:
    """A plan equivalent to ``Select(plan, comparisons)`` with the
    comparisons pushed as deep as their column references allow."""
    if not comparisons:
        return plan
    if isinstance(plan, Select):
        return _push_select(plan.child, plan.comparisons + tuple(comparisons))
    if isinstance(plan, Rename):
        # Renaming keeps positions, so the comparisons transfer verbatim.
        return Rename(_push_select(plan.child, comparisons), plan.columns)
    if isinstance(plan, Project):
        source = plan.child.columns
        if len(set(source)) == len(source):
            mapping = {i: source.index(name)
                       for i, name in enumerate(plan.columns)}
            pushed = tuple(c.remap(mapping) for c in comparisons)
            return Project(_push_select(plan.child, pushed), plan.columns)
    if isinstance(plan, Union):
        return Union(tuple(_push_select(op, comparisons)
                           for op in plan.operands))
    if isinstance(plan, (Join, Product)):
        out = plan.columns
        left_columns, right_columns = plan.left.columns, plan.right.columns
        left_set, right_set = set(left_columns), set(right_columns)
        left_pushed, right_pushed, kept = [], [], []
        for comparison in comparisons:
            names = {out[i] for i in comparison.columns_used()}
            if names <= left_set:
                mapping = {i: left_columns.index(out[i])
                           for i in comparison.columns_used()}
                left_pushed.append(comparison.remap(mapping))
            elif names <= right_set:
                mapping = {i: right_columns.index(out[i])
                           for i in comparison.columns_used()}
                right_pushed.append(comparison.remap(mapping))
            else:
                kept.append(comparison)
        left = _push_select(plan.left, tuple(left_pushed)) \
            if left_pushed else plan.left
        right = _push_select(plan.right, tuple(right_pushed)) \
            if right_pushed else plan.right
        core: Plan = type(plan)(left, right)
        return Select(core, tuple(kept)) if kept else core
    if isinstance(plan, (SemiJoin, AntiJoin)):
        # Output columns are exactly the left's: filter the probe side.
        return type(plan)(_push_select(plan.left, comparisons), plan.right)
    if isinstance(plan, Difference):
        # Filtering before or after subtraction removes the same rows.
        return Difference(_push_select(plan.left, comparisons), plan.right)
    if isinstance(plan, DomainProduct):
        return ConstrainedDomain(plan.columns, tuple(comparisons))
    if isinstance(plan, ConstrainedDomain):
        return ConstrainedDomain(plan.columns,
                                 plan.comparisons + tuple(comparisons))
    if isinstance(plan, Empty):
        return plan
    # Scans, counts, fixed points, closures: the selection stays here.
    return Select(plan, tuple(comparisons))


# --------------------------------------------- 3. dead-column pruning


def _prune(plan: Plan) -> Plan:
    return _prune_to(plan, frozenset(plan.columns))


def _prune_to(plan: Plan, needed: frozenset) -> Plan:
    """``plan`` with the columns outside ``needed`` dropped as early as the
    operators allow.  Contract: the result's columns are exactly
    ``plan.columns`` filtered to ``needed``, in the original order —
    parents can rely on the layout without re-deriving it."""
    columns = plan.columns
    if len(set(columns)) != len(columns):  # pragma: no cover - compiler
        return plan                         # emits distinct columns only
    kept = tuple(c for c in columns if c in needed)

    def contract(result: Plan) -> Plan:
        return result if result.columns == kept else Project(result, kept)

    if isinstance(plan, DomainProduct):
        return DomainProduct(kept)
    if isinstance(plan, Empty):
        return Empty(kept)
    if isinstance(plan, ConstrainedDomain):
        used = {columns[i] for comp in plan.comparisons
                for i in comp.columns_used()}
        inner = tuple(c for c in columns if c in needed or c in used)
        if inner != columns:
            mapping = {columns.index(c): inner.index(c) for c in inner}
            narrowed = ConstrainedDomain(inner, tuple(
                comp.remap({i: mapping[i] for i in comp.columns_used()})
                for comp in plan.comparisons))
            return contract(narrowed)
        return contract(plan)
    if isinstance(plan, (RelationScan, AuxScan, DeltaScan)):
        return contract(plan)
    if isinstance(plan, Select):
        source = plan.child.columns
        used = {source[i] for comp in plan.comparisons
                for i in comp.columns_used()}
        child = _prune_to(plan.child, needed | frozenset(used))
        new_source = child.columns
        mapping = {source.index(c): new_source.index(c) for c in new_source}
        remapped = tuple(
            comp.remap({i: mapping[i] for i in comp.columns_used()})
            for comp in plan.comparisons)
        return contract(Select(child, remapped))
    if isinstance(plan, Project):
        child = _prune_to(plan.child, frozenset(kept))
        return contract(child)
    if isinstance(plan, Rename):
        source = plan.child.columns
        positions = [i for i, name in enumerate(plan.columns) if name in needed]
        child = _prune_to(plan.child,
                          frozenset(source[i] for i in positions))
        names = tuple(plan.columns[i] for i in positions)
        return child if names == child.columns else Rename(child, names)
    if isinstance(plan, (Join, Product)):
        shared = set(plan.left.columns) & set(plan.right.columns)
        child_needed = needed | frozenset(shared)
        left = _prune_to(plan.left, child_needed)
        right = _prune_to(plan.right, child_needed)
        return contract(type(plan)(left, right))
    if isinstance(plan, Union):
        operands = tuple(_prune_to(op, needed) for op in plan.operands)
        if all(new is old for new, old in zip(operands, plan.operands)):
            return plan
        return Union(operands)
    if isinstance(plan, (SemiJoin, AntiJoin)):
        key = frozenset(plan.right.columns)
        left = _prune_to(plan.left, needed | key)
        right = _prune_to(plan.right, key)
        return contract(type(plan)(left, right))
    if isinstance(plan, Difference):
        # Row identity spans every column: both sides stay whole.
        left = _prune_to(plan.left, frozenset(columns))
        right = _prune_to(plan.right, frozenset(plan.right.columns))
        return contract(Difference(left, right))
    if isinstance(plan, CountSelect):
        # Dropping a group column changes the counts: the child stays whole.
        child = _prune_to(plan.child, frozenset(plan.child.columns))
        return contract(CountSelect(child, plan.variable, plan.threshold))
    if isinstance(plan, Fixpoint):
        body = _prune_to(plan.body, frozenset(plan.body.columns))
        delta = None if plan.delta_body is None else \
            _prune_to(plan.delta_body, frozenset(plan.delta_body.columns))
        return contract(Fixpoint(plan.relation, plan.variables, body, delta))
    if isinstance(plan, Closure):
        body = _prune_to(plan.body, frozenset(plan.body.columns))
        return contract(Closure(body, plan.k, plan.deterministic))
    if isinstance(plan, Shared):
        return contract(Shared(_prune_to(plan.child,
                                         frozenset(plan.child.columns))))
    return contract(plan)  # pragma: no cover - future node kinds


# ------------------------------------- 4. greedy join reordering


def _reorder(plan: Plan, cost: CostModel) -> Plan:
    memo: dict = {}

    def rebuild(node: Plan) -> Plan:
        if isinstance(node, Join):
            leaves: list[Plan] = []
            _flatten_joins(node, leaves)
            leaves = [rebuild(leaf) for leaf in leaves]
            return _build_join(leaves, node.columns, cost, memo)
        children = node.children()
        if children:
            new = tuple(rebuild(child) for child in children)
            if any(n is not o for n, o in zip(new, children)):
                return _with_children(node, new)
        return node

    return rebuild(plan)


def _flatten_joins(node: Plan, leaves: list[Plan]) -> None:
    if isinstance(node, Join):
        _flatten_joins(node.left, leaves)
        _flatten_joins(node.right, leaves)
    else:
        leaves.append(node)


def _complement_of(leaf: Plan) -> Plan | None:
    """The ``φ`` of a ``Difference(DomainProduct, φ)`` leaf whose layouts
    align — the shape negation compiles to — or None."""
    if isinstance(leaf, Difference) and isinstance(leaf.left, DomainProduct) \
            and leaf.right.columns == leaf.left.columns:
        return leaf.right
    return None


def _build_join(leaves: list[Plan], target: tuple[str, ...],
                cost: CostModel, memo: dict) -> Plan:
    """Rebuild a flattened conjunction greedily: cheapest leaf first, then
    repeatedly the connected leaf whose join estimates smallest, converting
    covered operands to semijoins and covered complements to antijoins.
    Unconstrained ``DomainProduct`` leaves are dropped and re-introduced
    only for columns nothing else supplies."""
    domain_columns: set[str] = set()
    working: list[Plan] = []
    for leaf in leaves:
        if isinstance(leaf, DomainProduct):
            domain_columns.update(leaf.columns)
        else:
            working.append(leaf)
    covered = set().union(*(leaf.columns for leaf in working)) \
        if working else set()
    uncovered = tuple(sorted(domain_columns - covered))
    if uncovered:
        working.append(DomainProduct(uncovered))
    if not working:
        return DomainProduct(target)

    def leaf_rank(leaf: Plan) -> tuple:
        # Deterministic tie-break so optimization is reproducible.
        return (estimate(leaf, cost, memo), leaf.label())

    current = min(working, key=leaf_rank)
    working.remove(current)
    while working:
        connected = [leaf for leaf in working
                     if set(leaf.columns) & set(current.columns)]
        pool = connected or working

        def join_rank(leaf: Plan) -> tuple:
            return (estimate(_joined(current, leaf), cost, memo), leaf.label())

        choice = min(pool, key=join_rank)
        working.remove(choice)
        current = _joined(current, choice)
    if current.columns != target:
        current = Project(current, target)
    return current


def _joined(current: Plan, leaf: Plan) -> Plan:
    if set(leaf.columns) <= set(current.columns):
        complement = _complement_of(leaf)
        if complement is not None:
            return AntiJoin(current, complement)
        return SemiJoin(current, leaf)
    return Join(current, leaf)


# ------------------------------------- 4b. join/projection fusion


def _fuse_kernels(plan: Plan) -> Plan:
    """Late kernel fusion: ``Project`` folds into the join beneath it (the
    projected rows are emitted — and deduplicated — during the probe loop,
    so the ``|L|·deg``-sized combined result of an ``exists z``
    composition is never materialized), and a layout-aligned
    ``Difference`` becomes an :class:`~repro.logic.plan.AntiJoin`, whose
    identity-key case is a single native set difference instead of a
    per-row loop."""

    def rule(node: Plan) -> Plan:
        if isinstance(node, Project):
            child = node.child
            if isinstance(child, (Join, Product, JoinProject)):
                return JoinProject(child.left, child.right, node.columns)
        if isinstance(node, Difference):
            return AntiJoin(node.left, node.right)
        return node

    return _rewrite(plan, rule)


# --------------------------------- 5. semi-naive delta rewriting


def _depends_on(plan: Plan, relation: str) -> bool:
    """Whether ``plan`` reads the auxiliary ``relation`` (respecting the
    shadowing of a nested fixed point that rebinds the same name)."""
    if isinstance(plan, AuxScan):
        return plan.name == relation
    if isinstance(plan, Fixpoint) and plan.relation == relation:
        return False
    return any(_depends_on(child, relation) for child in plan.children())


def _is_monotone(plan: Plan, relation: str) -> bool:
    """Whether growing ``relation`` can only grow ``plan``'s value — the
    polarity analysis licensing :class:`~repro.logic.plan.Cumulative`
    accumulation (a ``Difference``/``AntiJoin`` flips polarity on its
    right side; DTC closures and unknown nodes are conservatively
    non-monotone)."""
    if not _depends_on(plan, relation):
        return True
    if isinstance(plan, AuxScan):
        return True
    if isinstance(plan, (Select, Project, Rename, Shared, CountSelect)):
        return _is_monotone(plan.children()[0], relation)
    if isinstance(plan, (Join, JoinProject, Product, SemiJoin, Union)):
        return all(_is_monotone(child, relation)
                   for child in plan.children())
    if isinstance(plan, (Difference, AntiJoin)):
        return _is_monotone(plan.left, relation) and \
            _is_antimonotone(plan.right, relation)
    if isinstance(plan, Cumulative):
        return _is_monotone(plan.full, relation)
    if isinstance(plan, Fixpoint):
        # Inflationary iteration stays stage-wise larger only when the body
        # is monotone in the outer relation and in its own.
        return _is_monotone(plan.body, relation) and \
            _is_monotone(plan.body, plan.relation)
    if isinstance(plan, Closure):
        # The DTC reading is non-monotone: a second out-edge *removes* the
        # deterministic edge.
        return not plan.deterministic and _is_monotone(plan.body, relation)
    return False


def _is_antimonotone(plan: Plan, relation: str) -> bool:
    """Whether growing ``relation`` can only *shrink* ``plan``'s value (the
    dual polarity, tracked through difference right sides)."""
    if not _depends_on(plan, relation):
        return True
    if isinstance(plan, AuxScan):
        return False
    if isinstance(plan, (Select, Project, Rename, Shared, CountSelect)):
        return _is_antimonotone(plan.children()[0], relation)
    if isinstance(plan, (Join, JoinProject, Product, SemiJoin, Union)):
        return all(_is_antimonotone(child, relation)
                   for child in plan.children())
    if isinstance(plan, (Difference, AntiJoin)):
        return _is_antimonotone(plan.left, relation) and \
            _is_monotone(plan.right, relation)
    if isinstance(plan, Cumulative):
        return _is_antimonotone(plan.full, relation)
    return False


def differentiate(plan: Plan, relation: str) -> Plan | None:
    """The derivative of ``plan`` with respect to auxiliary ``relation``: a
    plan that — executed with the frontier Δ bound for
    :class:`~repro.logic.plan.DeltaScan` and the accumulated total bound
    for :class:`~repro.logic.plan.AuxScan` — derives every row ``plan``
    produces at the new total but not at the previous one, and nothing
    outside the new value.  ``None`` means ``plan`` does not depend on the
    relation (its derivative is empty).

    The product rule handles the monotone operators; a dependent subtree
    the rule cannot reach (right side of a difference/antijoin, a counting
    group, a nested fixed point) *is its own fallback derivative* — its
    full current value trivially contains whatever it newly contributes —
    so differentiation always succeeds, degrading per-subtree rather than
    per-body.  A derivative that degenerated to its own subtree absorbs
    the enclosing operator: ``Join(a, d(b)) = Join(a, b)`` when ``d(b) is
    b``, so the rule returns the whole node instead of a union that would
    evaluate the fallback work twice.
    """
    if not _depends_on(plan, relation):
        return None
    if isinstance(plan, AuxScan):
        return DeltaScan(plan.name, plan.columns, plan.order)
    if isinstance(plan, Select):
        child = differentiate(plan.child, relation)
        return plan if child is plan.child else Select(child, plan.comparisons)
    if isinstance(plan, Project):
        child = differentiate(plan.child, relation)
        return plan if child is plan.child else Project(child, plan.columns)
    if isinstance(plan, Rename):
        child = differentiate(plan.child, relation)
        return plan if child is plan.child else Rename(child, plan.columns)
    if isinstance(plan, Shared):
        child = differentiate(plan.child, relation)
        return plan if child is plan.child else child
    if isinstance(plan, Union):
        parts = [differentiate(op, relation) for op in plan.operands]
        live = tuple(part for part in parts if part is not None)
        return live[0] if len(live) == 1 else Union(live)
    if isinstance(plan, (Join, Product, SemiJoin, JoinProject)):
        left = differentiate(plan.left, relation)
        right = differentiate(plan.right, relation)
        if left is plan.left or right is plan.right:
            return plan  # a full-fallback side subsumes the delta terms

        def rolled(side: Plan, derivative: Plan | None) -> Plan:
            # The *full* value of the other side, needed each round: a
            # dependent monotone side with a true derivative is maintained
            # incrementally instead of re-derived from scratch.
            if derivative is not None and _is_monotone(side, relation):
                return Cumulative(side, derivative)
            return side

        parts = []
        if left is not None:
            parts.append(_with_children(plan, (left, rolled(plan.right, right))))
        if right is not None:
            parts.append(_with_children(plan, (rolled(plan.left, left), right)))
        return parts[0] if len(parts) == 1 else Union(tuple(parts))
    if isinstance(plan, (Difference, AntiJoin)):
        if not _depends_on(plan.right, relation):
            left = differentiate(plan.left, relation)
            return plan if left is plan.left else \
                type(plan)(left, plan.right)
        return plan  # anti-monotone dependence: full re-derivation
    # CountSelect, nested Fixpoint/Closure, scans cannot be differentiated
    # through: the subtree itself is the (sound) fallback derivative.
    return plan


def _rewrite_fixpoints(plan: Plan) -> Plan:
    def rule(node: Plan) -> Plan:
        if isinstance(node, Fixpoint):
            delta = differentiate(node.body, node.relation)
            if delta is None:
                delta = Empty(node.body.columns)
            return Fixpoint(node.relation, node.variables, node.body, delta)
        return node

    return _rewrite(plan, rule)


# ------------------------------------- 6. common-subplan sharing


def _share(plan: Plan) -> Plan:
    counts: Counter = Counter()

    def tally(node: Plan) -> None:
        counts[node] += 1
        for child in node.children():
            tally(child)

    tally(plan)
    aux_free: dict[Plan, bool] = {}

    def is_aux_free(node: Plan) -> bool:
        cached = aux_free.get(node)
        if cached is None:
            cached = not isinstance(node, (AuxScan, DeltaScan)) and \
                all(is_aux_free(child) for child in node.children())
            aux_free[node] = cached
        return cached

    def wrap(node: Plan, in_fixpoint: bool) -> Plan:
        if isinstance(node, (Shared, Empty)):
            return node
        if is_aux_free(node):
            # Round-invariant inside a fixed point, or repeated anywhere:
            # one execution per context memo.
            if in_fixpoint or counts[node] > 1:
                return Shared(node)
            # Unique and outside any fixed point: sharing buys nothing.
        elif counts[node] > 1 and node.children() and \
                not isinstance(node, (Fixpoint, Closure)):
            # Auxiliary-dependent but repeated within the plan (the stage
            # relation's reversal, say): share per round.
            return Shared(node, volatile=True)
        children = node.children()
        if not children:
            return node
        inner = in_fixpoint or isinstance(node, (Fixpoint, Closure))
        rebuilt = tuple(wrap(child, inner) for child in children)
        if any(new is not old for new, old in zip(rebuilt, children)):
            return _with_children(node, rebuilt)
        return node

    # The root itself is never wrapped: sharing pays off below joins and
    # inside fixpoint bodies, not around the final answer.
    children = plan.children()
    if not children:
        return plan
    inner = isinstance(plan, (Fixpoint, Closure))
    rebuilt = tuple(wrap(child, inner) for child in children)
    if any(new is not old for new, old in zip(rebuilt, children)):
        plan = _with_children(plan, rebuilt)
    return plan


# ------------------------------------------------------------- the pipeline


class PlanInvariantError(Exception):
    """An optimized plan violates a structural invariant — its output
    columns differ from the raw compiled plan's.  The rewrite passes are
    layout-preserving by contract, so this only fires on an optimizer bug
    (or an injected corruption); the evaluation layer responds by falling
    back to the raw plan rather than executing a misshapen one."""


def optimize_plan(plan: Plan, cost: CostModel, governor=None) -> Plan:
    """Run the full rewrite pipeline over a compiled plan.

    Every pass boundary is a governor checkpoint (deadlines and
    cancellation hold during optimization, not just execution) and a chaos
    injection point (``optimize.pass.<name>``).  The output layout is
    validated against the input plan before the result is released.
    """
    passes = (
        ("simplify", _simplify),
        ("pushdown", _pushdown),
        ("simplify", _simplify),
        ("prune", _prune),
        ("simplify", _simplify),
        ("reorder", lambda rewritten: _reorder(rewritten, cost)),
        ("simplify", _simplify),
        ("fuse", _fuse_kernels),
        ("delta", _rewrite_fixpoints),
        ("share", _share),
    )
    columns = plan.columns
    for name, rewrite in passes:
        if governor is not None:
            governor.check_time()
        plan = chaos_point(
            f"optimize.pass.{name}", rewrite(plan),
            corrupt=lambda rewritten: Empty(rewritten.columns + ("$corrupt",)))
    if plan.columns != columns:
        raise PlanInvariantError(
            f"optimizer changed the output layout: {columns} -> {plan.columns}"
        )
    return plan


#: Manually managed memo for optimized plans, keyed by (formula, layout,
#: cost-model key).  A plain dict rather than ``lru_cache`` so failed
#: optimizations are never cached, chaos tests can clear it, and a governor
#: (never hashable state) stays out of the key.
_PLAN_CACHE: dict[tuple, Plan] = {}
_PLAN_CACHE_LIMIT = 2048


def clear_plan_cache() -> None:
    """Drop every memoized optimized plan (the chaos fixture calls this so
    armed optimizer faults actually reach the rewrite pipeline)."""
    _PLAN_CACHE.clear()


def _optimized(formula: Formula, variables: tuple[str, ...] | None,
               cost_key: tuple, governor=None) -> Plan:
    key = (formula, variables, cost_key)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
            _PLAN_CACHE.clear()
        plan = optimize_plan(compile_formula(formula, variables),
                             CostModel(cost_key[0], dict(cost_key[1])),
                             governor=governor)
        _PLAN_CACHE[key] = plan
    return plan


def optimize_formula(formula: Formula, structure: Structure,
                     variables: Sequence[str] | None = None,
                     governor=None) -> Plan:
    """Compile ``formula`` and optimize the plan against ``structure``'s
    live statistics.  Memoized per (formula, layout, statistics) — a model
    checker answering many assignments optimizes once, and two structures
    with identical statistics share the optimized plan."""
    cost = CostModel.from_structure(structure)
    layout = tuple(variables) if variables is not None else None
    return _optimized(formula, layout, cost.key(), governor=governor)


def explain_optimized(formula: Formula, structure: Structure,
                      variables: Sequence[str] | None = None) -> str:
    """The formula, its logical (as-compiled) plan, and its optimized plan
    annotated with estimated cardinalities — the CLI's ``--explain`` face
    when the optimizer is on."""
    logical = compile_formula(formula,
                              tuple(variables) if variables is not None else None)
    optimized = optimize_formula(formula, structure, variables)
    cost = CostModel.from_structure(structure)
    memo: dict = {}

    def annotate(node: Plan) -> str:
        return f"   ~{estimate(node, cost, memo):,.0f} rows"

    def indent(text: str) -> str:
        return "\n".join("  " + line for line in text.splitlines())

    return (
        "formula:\n" + pretty(formula, indent=1)
        + "\nlogical plan:\n" + indent(logical.explain())
        + "\noptimized plan:\n" + indent(optimized.explain(annotate))
    )


# --------------------------------- 8. maintainability analysis (Dyn-FO / IVM)
#
# The incremental view maintenance layer (repro.logic.ivm) asks, per
# memoized defined relation and per changeset, "can this plan be patched
# in O(change), and how?".  The answer reuses the polarity machinery
# above, lifted from auxiliary relations to the structure's *base*
# relations: RelationScan takes AuxScan's role, DeltaScan carries the
# changeset's per-relation delta under a reserved name that cannot
# collide with any formula-level auxiliary.


def base_delta_name(relation: str) -> str:
    """The reserved context-delta key carrying a *base* relation's changed
    rows (auxiliary names come from formulas and can never contain NUL)."""
    return f"{relation}\x00delta"


def _depends_on_relation(plan: Plan, relation: str) -> bool:
    """Whether ``plan`` reads the structure's base ``relation`` anywhere.
    Base relations cannot be shadowed, so this is a plain tree walk."""
    if isinstance(plan, RelationScan):
        return plan.name == relation
    return any(_depends_on_relation(child, relation)
               for child in plan.children())


def _is_monotone_relation(plan: Plan, relation: str) -> bool:
    """Whether growing base ``relation`` can only grow ``plan``'s value —
    the base-relation lift of :func:`_is_monotone` (same rules: a
    ``Difference``/``AntiJoin`` flips polarity on its right side, a DTC
    closure and unknown nodes are conservatively non-monotone)."""
    if not _depends_on_relation(plan, relation):
        return True
    if isinstance(plan, RelationScan):
        return True
    if isinstance(plan, (Select, Project, Rename, Shared, CountSelect)):
        return _is_monotone_relation(plan.children()[0], relation)
    if isinstance(plan, (Join, JoinProject, Product, SemiJoin, Union)):
        return all(_is_monotone_relation(child, relation)
                   for child in plan.children())
    if isinstance(plan, (Difference, AntiJoin)):
        return _is_monotone_relation(plan.left, relation) and \
            _is_antimonotone_relation(plan.right, relation)
    if isinstance(plan, Cumulative):
        return _is_monotone_relation(plan.full, relation)
    if isinstance(plan, Fixpoint):
        return _is_monotone_relation(plan.body, relation) and \
            _is_monotone(plan.body, plan.relation)
    if isinstance(plan, Closure):
        return not plan.deterministic and \
            _is_monotone_relation(plan.body, relation)
    return False


def _is_antimonotone_relation(plan: Plan, relation: str) -> bool:
    """Whether growing base ``relation`` can only *shrink* ``plan``'s
    value (the dual polarity, through difference right sides)."""
    if not _depends_on_relation(plan, relation):
        return True
    if isinstance(plan, RelationScan):
        return False
    if isinstance(plan, (Select, Project, Rename, Shared, CountSelect)):
        return _is_antimonotone_relation(plan.children()[0], relation)
    if isinstance(plan, (Join, JoinProject, Product, SemiJoin, Union)):
        return all(_is_antimonotone_relation(child, relation)
                   for child in plan.children())
    if isinstance(plan, (Difference, AntiJoin)):
        return _is_antimonotone_relation(plan.left, relation) and \
            _is_monotone_relation(plan.right, relation)
    if isinstance(plan, Cumulative):
        return _is_antimonotone_relation(plan.full, relation)
    return False


def differentiate_relation(plan: Plan, relation: str) -> Plan | None:
    """The derivative of ``plan`` with respect to base ``relation``: a plan
    that, executed with the changed rows bound in the context delta under
    :func:`base_delta_name`, derives every row ``plan`` newly produces
    after an insertion into ``relation`` (and, run against the *old*
    structure with the deleted rows bound, every row that may have lost a
    derivation).  Product rule exactly as :func:`differentiate`; ``None``
    means no dependency; a return value that *is* ``plan`` is the fallback
    (full re-derivation) — callers treat it as "not maintainable"."""
    if not _depends_on_relation(plan, relation):
        return None
    if isinstance(plan, RelationScan):
        return DeltaScan(base_delta_name(relation), plan.columns, plan.order)
    if isinstance(plan, Select):
        child = differentiate_relation(plan.child, relation)
        return plan if child is plan.child else Select(child, plan.comparisons)
    if isinstance(plan, Project):
        child = differentiate_relation(plan.child, relation)
        return plan if child is plan.child else Project(child, plan.columns)
    if isinstance(plan, Rename):
        child = differentiate_relation(plan.child, relation)
        return plan if child is plan.child else Rename(child, plan.columns)
    if isinstance(plan, Shared):
        child = differentiate_relation(plan.child, relation)
        return plan if child is plan.child else child
    if isinstance(plan, Union):
        parts = [differentiate_relation(op, relation) for op in plan.operands]
        if any(part is op for part, op in zip(parts, plan.operands)):
            return plan
        live = tuple(part for part in parts if part is not None)
        return live[0] if len(live) == 1 else Union(live)
    if isinstance(plan, (Join, Product, SemiJoin, JoinProject)):
        left = differentiate_relation(plan.left, relation)
        right = differentiate_relation(plan.right, relation)
        if left is plan.left or right is plan.right:
            return plan  # a full-fallback side subsumes the delta terms

        def rolled(side: Plan, derivative: Plan | None) -> Plan:
            if derivative is not None and _is_monotone_relation(side, relation):
                return Cumulative(side, derivative)
            return side

        parts = []
        if left is not None:
            parts.append(_with_children(plan, (left, rolled(plan.right, right))))
        if right is not None:
            parts.append(_with_children(plan, (rolled(plan.left, left), right)))
        return parts[0] if len(parts) == 1 else Union(tuple(parts))
    if isinstance(plan, (Difference, AntiJoin)):
        if not _depends_on_relation(plan.right, relation):
            left = differentiate_relation(plan.left, relation)
            return plan if left is plan.left else type(plan)(left, plan.right)
        return plan  # anti-monotone dependence: full re-derivation
    # CountSelect, Fixpoint, Closure, domain nodes: the subtree itself is
    # the (sound but full-cost) fallback derivative.
    return plan


def _peel_to_core(plan: Plan) -> tuple[Plan, tuple[int, ...]] | None:
    """Strip row-preserving wrappers (Rename, Shared, bijective Project)
    off the plan root.  Returns ``(core, permutation)`` with
    ``memo_row[i] == core_row[permutation[i]]`` when the core is a
    :class:`Closure` or :class:`Fixpoint` whose rows are fully recoverable
    from the memoized relation, else ``None``."""
    permutation = tuple(range(len(plan.columns)))
    node = plan
    while True:
        if isinstance(node, (Rename, Shared)):
            node = node.children()[0]
        elif isinstance(node, Project):
            child = node.child
            child_columns = list(child.columns)
            if len(set(node.columns)) != len(node.columns):
                return None
            try:
                positions = [child_columns.index(c) for c in node.columns]
            except ValueError:
                return None
            if sorted(positions) != list(range(len(child_columns))):
                return None  # drops a column: the core is not recoverable
            permutation = tuple(positions[p] for p in permutation)
            node = child
        else:
            break
    if isinstance(node, (Closure, Fixpoint)):
        return node, permutation
    return None


@dataclass(frozen=True)
class MaintenancePlan:
    """The maintainability analysis' verdict for one (plan, changeset).

    ``strategy`` is one of:

    * ``"unchanged"`` — the plan reads none of the changed relations.
    * ``"delta"`` — non-recursive and monotone in every changed relation:
      inserts union in the derivative's rows; deletes over-delete the
      derivative's candidates and re-derive each by a support check
      (counting with counts recomputed on demand).
    * ``"closure"`` — the root is a TC :class:`Closure`: Dyn-FO edge
      insertion, DRed over-delete/re-derive per affected source on
      deletion.
    * ``"fixpoint"`` — the root is a :class:`Fixpoint` with a monotone,
      delta-rewritten body: inserts seed semi-naive rounds from the
      memoized total; deletes run DRed over the body derivative.
    * ``"recompute"`` — anything the differentiator flags (a changed
      relation under a ``Difference``/``AntiJoin`` right side or a
      ``CountSelect``, a nested or non-monotone fixed point, a DTC
      closure, an unrecoverable core): the memo entry is dropped and the
      relation recomputed on next use, recorded as
      ``DegradationEvent("ivm", "recompute")``.

    ``core``/``permutation`` (closure/fixpoint strategies) identify the
    recursive node and how memo rows map onto its rows.
    """

    strategy: str
    reason: str = ""
    core: Plan | None = None
    permutation: tuple[int, ...] | None = None


def maintenance_strategy(plan: Plan, changed: frozenset[str]
                         ) -> MaintenancePlan:
    """Pick the maintenance strategy for ``plan`` under a net changeset
    touching the base relations ``changed`` (see :class:`MaintenancePlan`).
    The choice is per *plan*, not per operation kind: a strategy must be
    sound for inserts and deletes alike, since one batch can carry both.
    """
    dependent = frozenset(
        name for name in changed if _depends_on_relation(plan, name))
    if not dependent:
        return MaintenancePlan("unchanged")
    peeled = _peel_to_core(plan)
    if peeled is not None:
        core, permutation = peeled
        if isinstance(core, Closure):
            if core.deterministic:
                return MaintenancePlan(
                    "recompute", "DTC closure is non-monotone under updates")
            if core.k != 1:
                return MaintenancePlan(
                    "recompute", "k-tuple closure (k > 1) maintenance "
                    "degrades to recompute")
            return MaintenancePlan("closure", core=core,
                                   permutation=permutation)
        body = core.body
        for name in sorted(dependent):
            if not _is_monotone_relation(body, name):
                return MaintenancePlan(
                    "recompute", f"fixpoint body non-monotone in {name}")
            if differentiate_relation(body, name) is body:
                return MaintenancePlan(
                    "recompute", f"fixpoint body has no derivative in {name}")
        if not _is_monotone(body, core.relation):
            return MaintenancePlan(
                "recompute",
                f"fixpoint body non-monotone in its own relation "
                f"{core.relation}")
        if core.delta_body is None:
            return MaintenancePlan(
                "recompute", "fixpoint lacks a delta-rewritten body")
        return MaintenancePlan("fixpoint", core=core, permutation=permutation)
    for name in sorted(dependent):
        if not _is_monotone_relation(plan, name):
            return MaintenancePlan(
                "recompute", f"plan non-monotone in {name}")
        if differentiate_relation(plan, name) is plan:
            return MaintenancePlan(
                "recompute",
                f"no derivative in {name} (recursive or counting construct)")
    return MaintenancePlan("delta")
