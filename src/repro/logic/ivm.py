"""Incremental view maintenance: patching memoized defined relations.

This is the Dyn-FO execution layer (Patnaik-Immerman, the source paper's
successor): given a memoized defined relation, the plan that computed it,
and a *net* changeset to the structure's base relations, produce the
relation's post-update rows in O(change)-ish work instead of
O(recompute).  The strategy per plan comes from
:func:`repro.logic.optimize.maintenance_strategy`:

``delta``
    Non-recursive, monotone in every changed relation.  Inserts evaluate
    the plan's base-relation derivative
    (:func:`~repro.logic.optimize.differentiate_relation`) on the *new*
    structure with the inserted rows bound as the context delta, and
    union the result in.  Deletes evaluate the derivative on the *old*
    structure with the deleted rows bound — an over-approximation of
    every row that may have lost a derivation — and re-check each
    candidate's support against the new structure through the tuple
    oracle (counting-based maintenance in its degenerate but honest
    form: the only counts kept are 0 / >0, recomputed on demand).

``closure``
    The plan peels to a TC :class:`~repro.logic.plan.Closure`.  Edge
    inserts apply the Dyn-FO rule — the new closure pairs after adding
    ``(u, v)`` are ``{(x, y) : (x, u) in T and (v, y) in T}`` (one pass
    of bitmask-row ORs for ``k = 1``, via
    :func:`repro.core.columnar.patch_closure_insert`).  Edge deletes run
    DRed: over-delete every pair some removed edge could have carried
    (:func:`~repro.core.columnar.overdeleted_rows`), then re-derive each
    affected source with one BFS over the post-delete edges
    (:func:`~repro.core.columnar.reach_from`).  ``k > 1`` runs the same
    algorithm set-at-a-time.

``fixpoint``
    The plan peels to a monotone, delta-rewritten
    :class:`~repro.logic.plan.Fixpoint`.  DRed over the body's
    derivatives: over-delete from the deleted base rows, propagate
    through the fixpoint's own ``delta_body``, subtract, re-derive one
    full body round against the survivors, then run seeded semi-naive
    rounds (the PR 5 ``_run_delta`` loop, started from the maintained
    total instead of empty) until the new fixed point is reached.

``unchanged`` / ``recompute``
    The trivial and the fallback verdicts: the former returns the memo
    rows verbatim, the latter raises :class:`MaintenanceFallback` — the
    caller drops the memo entry and records a
    ``DegradationEvent("ivm", "recompute")``, so the relation is rebuilt
    from scratch on next use.  *Never* a stale memo: every chaos-injected
    corruption on this path is caught by the validations below and
    surfaces as a clean fallback or error.

Soundness notes (the invariants the property suites pin):

* Insert derivatives are evaluated entirely on the **new** structure, so
  for plans monotone in the changed relations they over-approximate the
  true delta while staying inside the new value — union is exact.
* Delete candidates are evaluated on the **old** structure (the rows
  existed there), and membership is decided against the **new** one.
* DRed's over-delete is closed upward (every pair/row whose *every*
  derivation used a deleted fact is a candidate), so survivors need no
  re-check and re-derivation only inspects candidates.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.columnar import (
    DENSE_WIDTH_THRESHOLD,
    adjacency_of_binary,
    iter_bits,
    overdeleted_rows,
    patch_closure_insert,
    reach_from,
)
from repro.structures.structure import Structure
from repro.testing.chaos import chaos_point

from .formula import Formula, RelAtom, walk_formula
from .optimize import (
    MaintenancePlan,
    base_delta_name,
    differentiate_relation,
    maintenance_strategy,
)
from .plan import (
    Closure,
    ExecutionContext,
    Fixpoint,
    Plan,
    RelationScan,
    Rename,
    Shared,
)

__all__ = [
    "MaintenanceFallback",
    "maintain",
    "relation_names",
]


class MaintenanceFallback(Exception):
    """Raised when a memoized relation cannot be patched incrementally:
    the caller must drop the memo entry and recompute on next use."""


def relation_names(formula: Formula) -> frozenset[str]:
    """Every *base* relation symbol ``formula`` reads (auxiliary symbols —
    LFP-bound or caller-supplied — are not updatable and do not count)."""
    return frozenset(node.name for node in walk_formula(formula)
                     if isinstance(node, RelAtom))


# ------------------------------------------------------------- the dispatcher


def maintain(plan: Plan,
             verdict: MaintenancePlan,
             columns: tuple[str, ...],
             rows: frozenset,
             old_structure: Structure,
             new_structure: Structure,
             inserted: Mapping[str, frozenset],
             deleted: Mapping[str, frozenset],
             *,
             formula: Formula | None = None,
             auxiliary: Mapping[str, frozenset] | None = None,
             support_check=None,
             seminaive: bool = True,
             stats=None,
             governor=None,
             state: dict | None = None) -> frozenset:
    """Patch the memoized rows of one defined relation for one net update.

    ``verdict`` is :func:`~repro.logic.optimize.maintenance_strategy` of
    ``plan`` against the changed relations; ``inserted`` / ``deleted``
    are the net changeset's per-relation row sets (disjoint).
    ``support_check(row) -> bool`` decides a delete candidate's
    membership in the post-update relation (the ``delta`` strategy's
    counting re-check); the caller supplies it bound to the formula and
    the new structure.  ``state`` is an optional per-memo-entry scratch
    dict the caller keeps across updates: the closure strategy caches its
    edge/reach bitsets there so steady-state patches touch O(change)
    machine words instead of re-tupling the whole relation (coherence is
    by identity — the cached bitsets are trusted only while
    ``state["rows"] is rows``).  Raises :class:`MaintenanceFallback`
    whenever the strategy is ``recompute`` or a precondition fails
    mid-patch.
    """
    if verdict.strategy == "unchanged":
        return rows
    if verdict.strategy == "recompute":
        raise MaintenanceFallback(verdict.reason or "recompute")

    def context(structure: Structure,
                extra_aux: Mapping[str, frozenset] | None = None,
                delta: Mapping[str, frozenset] | None = None,
                accumulators: dict | None = None) -> ExecutionContext:
        scope = dict(auxiliary or {})
        if extra_aux:
            scope.update(extra_aux)
        return ExecutionContext(structure, scope, seminaive,
                                delta or {}, stats, memo={},
                                accumulators=accumulators,
                                governor=governor)

    if verdict.strategy == "delta":
        return _maintain_delta(plan, rows, old_structure, new_structure,
                               inserted, deleted, context, support_check,
                               governor)

    core, permutation = verdict.core, verdict.permutation
    if isinstance(core, Closure):
        return _maintain_closure(core, permutation, rows, old_structure,
                                 new_structure, inserted, deleted, context,
                                 governor, state)
    if isinstance(core, Fixpoint):
        core_rows = _unpermute(rows, permutation, len(core.columns))
        patched = _maintain_fixpoint(core, core_rows, old_structure,
                                     new_structure, inserted, deleted,
                                     context, governor)
        return _permute(patched, permutation)
    # pragma: no cover - maintenance_strategy only emits the two cores
    raise MaintenanceFallback(f"unknown core {type(core).__name__}")


# ---------------------------------------------------------- row permutations


def _permute(core_rows: Iterable[tuple], permutation: tuple[int, ...]
             ) -> frozenset:
    """Core rows -> memo rows under ``memo_row[i] = core_row[perm[i]]``."""
    return frozenset(tuple(row[p] for p in permutation) for row in core_rows)


def _unpermute(rows: Iterable[tuple], permutation: tuple[int, ...],
               width: int) -> set[tuple]:
    """Memo rows -> core rows (the permutation is a bijection)."""
    inverse = [0] * width
    for i, p in enumerate(permutation):
        inverse[p] = i
    return {tuple(row[i] for i in inverse) for row in rows}


# --------------------------------------------------------- non-recursive delta


def _maintain_delta(plan: Plan, rows: frozenset,
                    old_structure: Structure, new_structure: Structure,
                    inserted: Mapping[str, frozenset],
                    deleted: Mapping[str, frozenset],
                    context, support_check, governor) -> frozenset:
    result = set(rows)
    # Deletes first: candidates that may have lost every derivation,
    # each re-checked for support against the new structure.
    candidates: set[tuple] = set()
    for name, removed in deleted.items():
        derivative = differentiate_relation(plan, name)
        if derivative is None:
            continue
        if derivative is plan:
            raise MaintenanceFallback(f"no derivative in {name}")
        delta = {base_delta_name(name): frozenset(removed)}
        touched = derivative.execute(context(old_structure, delta=delta)).rows
        candidates.update(set(touched) & rows)
    candidates = chaos_point(
        "ivm.dred.overdelete", candidates,
        corrupt=lambda rows_: set(rows_) | {("$overdeleted",) * 2})
    if any(row not in rows for row in candidates):
        raise MaintenanceFallback("over-delete produced rows outside the memo")
    if candidates:
        if support_check is None:
            raise MaintenanceFallback("delete without a support oracle")
        if governor is not None:
            governor.note_rows(len(candidates))
        kept = {row for row in candidates if support_check(row)}
        kept = chaos_point("ivm.dred.rederive", kept,
                           corrupt=lambda rows_: set(rows_) | {("$rescued",)})
        if any(row not in candidates for row in kept):
            raise MaintenanceFallback(
                "re-derivation produced rows outside the candidates")
        result -= candidates - kept
    # Inserts: the derivative on the new structure, unioned in.
    for name, added in inserted.items():
        derivative = differentiate_relation(plan, name)
        if derivative is None:
            continue
        if derivative is plan:
            raise MaintenanceFallback(f"no derivative in {name}")
        delta = {base_delta_name(name): frozenset(added)}
        gained = derivative.execute(context(new_structure, delta=delta)).rows
        if governor is not None:
            governor.note_rows(len(gained))
        result.update(gained)
    return frozenset(result)


# ------------------------------------------------------------- TC closures


def _body_scan(body: Plan) -> tuple[str, tuple[int, int]] | None:
    """``(relation, order)`` when the closure body is a bare binary scan
    of one base relation (possibly under row-preserving ``Shared`` /
    ``Rename`` wrappers) — the shape whose edge deltas are exactly the
    changeset's rows, needing no plan execution at all."""
    node = body
    while isinstance(node, (Rename, Shared)):
        node = node.children()[0]
    if isinstance(node, RelationScan) and len(node.columns) == 2:
        order = node.order if node.order is not None else (0, 1)
        return node.name, (order[0], order[1])
    return None


def _patch_reach(reach: list[int], removed, added, mid: list[int],
                 n: int, governor) -> None:
    """DRed over-delete / re-derive then Dyn-FO edge inserts, patching the
    ``reach`` bitset rows in place.  ``mid`` is the post-delete,
    pre-insert adjacency the re-derivation BFS walks."""
    universe_mask = (1 << n) - 1
    if removed:
        over = chaos_point(
            "ivm.dred.overdelete", overdeleted_rows(reach, sorted(removed)),
            corrupt=lambda masks: [m | universe_mask for m in masks])
        if len(over) != n or \
                any(over[x] & ~(reach[x] & ~(1 << x)) for x in range(n)):
            raise MaintenanceFallback("over-delete escaped the old closure")
        for x in range(n):
            if not over[x]:
                continue
            if governor is not None:
                governor.note_rows(over[x].bit_count())
            rederived = chaos_point(
                "ivm.dred.rederive", reach_from(mid, x),
                corrupt=lambda bits: bits | universe_mask)
            if rederived & ~reach[x] or not rederived & (1 << x):
                raise MaintenanceFallback(
                    "re-derivation escaped the old closure")
            reach[x] = rederived
    for u, v in added:
        changed = patch_closure_insert(reach, u, v)
        if governor is not None and changed:
            governor.note_rows(changed.bit_count())


def _maintain_closure(core: Closure, permutation: tuple[int, ...],
                      rows: frozenset, old_structure: Structure,
                      new_structure: Structure,
                      inserted: Mapping[str, frozenset],
                      deleted: Mapping[str, frozenset],
                      context, governor, state: dict | None) -> frozenset:
    if core.k != 1:
        raise MaintenanceFallback("k-tuple closure (k > 1)")
    n = new_structure.size
    if n > DENSE_WIDTH_THRESHOLD:
        # The dense patch keeps an n-row giant-int reach matrix resident —
        # O(n^2) bits.  Past the columnar width threshold that dwarfs the
        # O(frontier) chunked recompute, so degrade instead of thrashing.
        raise MaintenanceFallback(
            f"universe {n} above dense maintenance threshold "
            f"{DENSE_WIDTH_THRESHOLD}")
    scan = _body_scan(core.body)
    if scan is not None and state is not None:
        return _maintain_closure_scan(scan, rows, permutation, n,
                                      old_structure, inserted, deleted,
                                      governor, state)
    # Generic body: evaluate it on both structures for the edge delta,
    # then patch through the full tuple <-> bitset round trip.
    core_rows = _unpermute(rows, permutation, 2)
    old_edges = frozenset(core.body.execute(context(old_structure)).rows)
    new_edges = frozenset(core.body.execute(context(new_structure)).rows)
    if old_edges == new_edges:
        return rows
    reach = [0] * n
    for x, y in core_rows:
        reach[x] |= 1 << y
    # Deletion walks the *post-delete, pre-insert* edges; insertion comes
    # after, edge by edge, via the Dyn-FO patch.
    _patch_reach(reach, old_edges - new_edges, new_edges - old_edges,
                 adjacency_of_binary(old_edges & new_edges, n), n, governor)
    return _permute(((x, y) for x in range(n) for y in iter_bits(reach[x])),
                    permutation)


def _maintain_closure_scan(scan: tuple[str, tuple[int, int]],
                           rows: frozenset, permutation: tuple[int, ...],
                           n: int, old_structure: Structure,
                           inserted: Mapping[str, frozenset],
                           deleted: Mapping[str, frozenset],
                           governor, state: dict) -> frozenset:
    """The bare-scan steady state: edge deltas read straight off the
    changeset, edge/reach bitsets carried across updates in ``state``,
    and the memo patched by the XOR diff of the touched reach rows —
    O(change) words, never O(|closure|) tuples."""
    name, (o0, o1) = scan
    removed = [(row[o0], row[o1]) for row in deleted.get(name, ())]
    added = [(row[o0], row[o1]) for row in inserted.get(name, ())]
    if state.get("rows") is rows and state.get("key") == (name, o0, o1, n):
        reach, edges = state["reach"], state["edges"]
    else:
        inverse = [0, 0]
        for i, p in enumerate(permutation):
            inverse[p] = i
        reach = [0] * n
        for row in rows:
            reach[row[inverse[0]]] |= 1 << row[inverse[1]]
        edges = [0] * n
        for row in old_structure.relations[name]:
            edges[row[o0]] |= 1 << row[o1]
    before = list(reach)
    for u, v in removed:
        edges[u] &= ~(1 << v)
    # ``edges`` now holds the post-delete, pre-insert adjacency: exactly
    # the graph the re-derivation BFS must walk.
    _patch_reach(reach, removed, added, edges, n, governor)
    for u, v in added:
        edges[u] |= 1 << v
    lost, gained = set(), set()
    memo_pair = (lambda x, y: (x, y)) if permutation == (0, 1) \
        else (lambda x, y: (y, x))
    for x in range(n):
        flipped = before[x] ^ reach[x]
        if not flipped:
            continue
        for y in iter_bits(flipped & before[x]):
            lost.add(memo_pair(x, y))
        for y in iter_bits(flipped & reach[x]):
            gained.add(memo_pair(x, y))
    patched = (rows - lost) | gained if (lost or gained) else rows
    state.update(rows=patched, key=(name, o0, o1, n),
                 reach=reach, edges=edges)
    return patched


# ---------------------------------------------------------------- fixed points


def _maintain_fixpoint(core: Fixpoint, core_rows: set[tuple],
                       old_structure: Structure, new_structure: Structure,
                       inserted: Mapping[str, frozenset],
                       deleted: Mapping[str, frozenset],
                       context, governor) -> set[tuple]:
    if core.delta_body is None:
        raise MaintenanceFallback("fixpoint lacks a delta-rewritten body")
    relation, body, delta_body = core.relation, core.body, core.delta_body
    total = set(core_rows)

    def run(plan: Plan, structure: Structure, aux_total: set,
            delta_rows: Mapping[str, frozenset] | None = None,
            frontier: frozenset | None = None,
            store: dict | None = None) -> frozenset:
        # ``store`` scopes Cumulative accumulators: each loop below keeps
        # its own (accumulated values depend on the structure and the
        # auxiliary binding, so a store must never cross either boundary).
        deltas = dict(delta_rows or {})
        if frontier is not None:
            deltas[relation] = frontier
        ctx = context(structure, {relation: frozenset(aux_total)},
                      delta=deltas, accumulators=store if store is not None
                      else {})
        rows = frozenset(plan.execute(ctx).rows)
        if governor is not None:
            governor.note_rows(len(rows))
        return rows

    # ------------------------------------------------ DRed delete phase
    if deleted:
        over: set[tuple] = set()
        for name, removed in deleted.items():
            derivative = differentiate_relation(body, name)
            if derivative is None:
                continue
            if derivative is body:
                raise MaintenanceFallback(f"no body derivative in {name}")
            seeds = run(derivative, old_structure, total,
                        {base_delta_name(name): frozenset(removed)})
            over.update(seeds & core_rows)
        frontier = frozenset(over)
        over_store: dict = {}
        while frontier:
            if governor is not None:
                governor.note_round()
            derived = run(delta_body, old_structure, total, frontier=frontier,
                          store=over_store)
            frontier = frozenset((derived & core_rows) - over)
            over.update(frontier)
        over = chaos_point(
            "ivm.dred.overdelete", over,
            corrupt=lambda rows_: set(rows_) | {("$overdeleted",)})
        if any(row not in core_rows for row in over):
            raise MaintenanceFallback("over-delete escaped the old fixpoint")
        total -= over
        if over:
            # Re-derive: one full body round against the survivors, on the
            # new structure; only over-deleted rows can come back.
            rescued = run(body, new_structure, total) & over
            rescued = chaos_point(
                "ivm.dred.rederive", rescued,
                corrupt=lambda rows_: set(rows_) | {("$rescued",)})
            if any(row not in over for row in rescued):
                raise MaintenanceFallback(
                    "re-derivation escaped the over-deleted rows")
        else:
            rescued = frozenset()
    else:
        rescued = frozenset()

    # ------------------------------------------------ insert seeds
    seeds: set[tuple] = set(rescued)
    for name, added in inserted.items():
        derivative = differentiate_relation(body, name)
        if derivative is None:
            continue
        if derivative is body:
            raise MaintenanceFallback(f"no body derivative in {name}")
        seeds.update(run(derivative, new_structure, total,
                         {base_delta_name(name): frozenset(added)}))

    # ------------------------------------------------ seeded semi-naive rounds
    delta = frozenset(seeds - total)
    total.update(delta)
    round_store: dict = {}
    while delta:
        if governor is not None:
            governor.note_round()
        derived = run(delta_body, new_structure, total, frontier=delta,
                      store=round_store)
        delta = frozenset(row for row in derived if row not in total)
        total.update(delta)
    return total
