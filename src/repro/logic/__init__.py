"""First-order logic over finite structures, with the paper's extensions.

* :mod:`repro.logic.formula` — terms and formulas (FO, LFP, TC, DTC,
  counting quantifiers);
* :mod:`repro.logic.plan` / :mod:`repro.logic.compile` — the relational-plan
  IR and the formula → plan lowering pass (set-at-a-time evaluation, the
  FO = relational-algebra correspondence);
* :mod:`repro.logic.optimize` — the plan optimizer: selection pushdown,
  dead-column pruning, cost-based join reordering, semi-naive delta
  rewriting of fixed points, common-subplan sharing;
* :mod:`repro.logic.eval` — model checking: the ``plan`` backend executes
  compiled plans, the ``tuple`` backend enumerates (the differential
  oracle);
* :mod:`repro.logic.queries` — the canonical formulas of the paper (APATH's
  monotone operator, AGAP, TC/DTC reachability);
* :mod:`repro.logic.interpretation` — first-order interpretations
  (Definition 3.1), the paper's reduction notion;
* :mod:`repro.logic.games` — Ehrenfeucht–Fraïssé games (plain and counting)
  for the Section 7 inexpressibility demonstrations.
"""

from .compile import PlanCompilationError, compile_formula, explain
from .eval import LOGIC_BACKENDS, ModelChecker, define_relation, evaluate
from .formula import (
    And,
    AuxAtom,
    ConstTerm,
    CountAtLeast,
    DTCAtom,
    EqAtom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    LeqAtom,
    LFPAtom,
    MAX,
    Not,
    Or,
    RelAtom,
    TCAtom,
    Term,
    TrueFormula,
    VarTerm,
    ZERO,
    and_,
    aux,
    const,
    count_at_least,
    eq,
    exists,
    forall,
    free_variables_of,
    implies,
    leq,
    neg,
    or_,
    pretty,
    rel,
    var,
    walk_formula,
)
from .optimize import (
    CostModel,
    explain_optimized,
    optimize_formula,
    optimize_plan,
)
from .plan import ExecutionContext, Plan, PlanStats
from .games import counting_ef_equivalent, ef_equivalent, is_partial_isomorphism
from .interpretation import Interpretation, identity_interpretation
from .queries import agap_formula, apath_lfp, gap_formula, reachability_dtc, reachability_tc

__all__ = [name for name in dir() if not name.startswith("_")]
