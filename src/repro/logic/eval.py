"""Model checking for FO and its extensions over finite structures.

Evaluation is by brute-force enumeration of the (ordered) universe, which
is exactly the data-complexity reading of the logics: FO sentences are
checked in polynomial time for a fixed formula, LFP by fixed-point
iteration, TC/DTC by closure computation over k-tuples, and the counting
quantifier by counting witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping

from repro.structures.structure import Structure

from .formula import (
    And,
    AuxAtom,
    ConstTerm,
    CountAtLeast,
    DTCAtom,
    EqAtom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    LeqAtom,
    LFPAtom,
    Not,
    Or,
    RelAtom,
    TCAtom,
    Term,
    TrueFormula,
    VarTerm,
)

__all__ = ["ModelChecker", "evaluate", "define_relation"]


class ModelChecker:
    """Evaluates formulas over a fixed structure.

    ``auxiliary`` optionally supplies interpretations for :class:`AuxAtom`
    relation variables (used internally by LFP iteration, and available to
    callers who want to model-check a formula with a given stage relation).
    """

    def __init__(self, structure: Structure,
                 auxiliary: Mapping[str, frozenset[tuple[int, ...]]] | None = None):
        self.structure = structure
        self.auxiliary = dict(auxiliary or {})

    # -------------------------------------------------------------- terms

    def _term_value(self, term: Term, assignment: Mapping[str, int]) -> int:
        if isinstance(term, VarTerm):
            try:
                return assignment[term.name]
            except KeyError:
                raise KeyError(f"unassigned first-order variable: {term.name}") from None
        if isinstance(term, ConstTerm):
            if term.which == "zero":
                return 0
            return self.structure.size - 1
        raise TypeError(f"not a term: {term!r}")

    # ----------------------------------------------------------- formulas

    def evaluate(self, formula: Formula, assignment: Mapping[str, int] | None = None) -> bool:
        """Evaluate ``formula`` under the given variable assignment."""
        assignment = dict(assignment or {})
        return self._eval(formula, assignment)

    def _eval(self, formula: Formula, assignment: dict[str, int]) -> bool:
        if isinstance(formula, TrueFormula):
            return True
        if isinstance(formula, FalseFormula):
            return False
        if isinstance(formula, RelAtom):
            values = tuple(self._term_value(t, assignment) for t in formula.terms)
            return values in self.structure.relation(formula.name)
        if isinstance(formula, AuxAtom):
            values = tuple(self._term_value(t, assignment) for t in formula.terms)
            return values in self.auxiliary.get(formula.name, frozenset())
        if isinstance(formula, EqAtom):
            return self._term_value(formula.left, assignment) == \
                self._term_value(formula.right, assignment)
        if isinstance(formula, LeqAtom):
            return self._term_value(formula.left, assignment) <= \
                self._term_value(formula.right, assignment)
        if isinstance(formula, Not):
            return not self._eval(formula.body, assignment)
        if isinstance(formula, And):
            return all(self._eval(part, assignment) for part in formula.conjuncts)
        if isinstance(formula, Or):
            return any(self._eval(part, assignment) for part in formula.disjuncts)
        if isinstance(formula, Implies):
            return (not self._eval(formula.antecedent, assignment)) or \
                self._eval(formula.consequent, assignment)
        if isinstance(formula, Exists):
            return any(
                self._eval(formula.body, {**assignment, formula.variable: value})
                for value in self.structure.universe
            )
        if isinstance(formula, Forall):
            return all(
                self._eval(formula.body, {**assignment, formula.variable: value})
                for value in self.structure.universe
            )
        if isinstance(formula, CountAtLeast):
            threshold = formula.threshold
            if threshold == "half":
                threshold = (self.structure.size + 1) // 2
            witnesses = sum(
                1
                for value in self.structure.universe
                if self._eval(formula.body, {**assignment, formula.variable: value})
            )
            return witnesses >= int(threshold)
        if isinstance(formula, LFPAtom):
            fixed_point = self._lfp(formula)
            values = tuple(self._term_value(t, assignment) for t in formula.terms)
            return values in fixed_point
        if isinstance(formula, TCAtom):
            closure = self._tc(formula, deterministic=False)
            return self._closure_membership(formula, closure, assignment)
        if isinstance(formula, DTCAtom):
            closure = self._tc(formula, deterministic=True)
            return self._closure_membership(formula, closure, assignment)
        raise TypeError(f"cannot evaluate formula node {type(formula).__name__}")

    # ------------------------------------------------------------- fixed points

    def _lfp(self, formula: LFPAtom) -> frozenset[tuple[int, ...]]:
        """Iterate the (assumed monotone) operator to its least fixed point."""
        arity = len(formula.variables)
        current: frozenset[tuple[int, ...]] = frozenset()
        while True:
            checker = ModelChecker(self.structure, {**self.auxiliary, formula.relation: current})
            stage = set(current)
            for row in product(self.structure.universe, repeat=arity):
                if row in stage:
                    continue
                assignment = dict(zip(formula.variables, row))
                if checker._eval(formula.body, assignment):
                    stage.add(row)
            new = frozenset(stage)
            if new == current:
                return current
            current = new

    def _edge_relation(self, formula: TCAtom | DTCAtom) -> dict[tuple[int, ...], set[tuple[int, ...]]]:
        arity = len(formula.source_variables)
        successors: dict[tuple[int, ...], set[tuple[int, ...]]] = {}
        for source in product(self.structure.universe, repeat=arity):
            successors[source] = set()
            for target in product(self.structure.universe, repeat=arity):
                assignment = dict(zip(formula.source_variables, source))
                assignment.update(zip(formula.target_variables, target))
                if self._eval(formula.body, assignment):
                    successors[source].add(target)
        return successors

    def _tc(self, formula: TCAtom | DTCAtom, deterministic: bool) -> set[tuple[tuple[int, ...], tuple[int, ...]]]:
        successors = self._edge_relation(formula)
        if deterministic:
            # phi_d(x, x') = phi(x, x') and x' is the unique successor of x.
            successors = {
                source: (targets if len(targets) == 1 else set())
                for source, targets in successors.items()
            }
        # Reflexive transitive closure via a breadth-first search from every
        # k-tuple (fine at experiment sizes).
        closure: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
        for start in successors:
            reachable = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for successor in successors[node]:
                    if successor not in reachable:
                        reachable.add(successor)
                        frontier.append(successor)
            closure.update((start, target) for target in reachable)
        return closure

    def _closure_membership(self, formula: TCAtom | DTCAtom,
                            closure: set[tuple[tuple[int, ...], tuple[int, ...]]],
                            assignment: dict[str, int]) -> bool:
        source = tuple(self._term_value(t, assignment) for t in formula.source_terms)
        target = tuple(self._term_value(t, assignment) for t in formula.target_terms)
        return (source, target) in closure


def evaluate(formula: Formula, structure: Structure,
             assignment: Mapping[str, int] | None = None) -> bool:
    """Convenience wrapper around :class:`ModelChecker`."""
    return ModelChecker(structure).evaluate(formula, assignment)


def define_relation(formula: Formula, structure: Structure,
                    variables: tuple[str, ...]) -> frozenset[tuple[int, ...]]:
    """The relation ``{(v1..vk) | structure |= formula[v̄]}`` defined by a
    formula with the given free variables."""
    checker = ModelChecker(structure)
    rows = set()
    for row in product(structure.universe, repeat=len(variables)):
        if checker.evaluate(formula, dict(zip(variables, row))):
            rows.add(row)
    return frozenset(rows)
