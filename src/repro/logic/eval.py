"""Model checking for FO and its extensions over finite structures.

Evaluation is by brute-force enumeration of the (ordered) universe, which
is exactly the data-complexity reading of the logics: FO sentences are
checked in polynomial time for a fixed formula, LFP by fixed-point
iteration, TC/DTC by closure computation over k-tuples, and the counting
quantifier by counting witnesses.

Three things keep the brute force affordable (see DESIGN.md, "Caching
architecture" and "Semi-naive evaluation"):

* **Memoized fixed points.**  The TC/DTC closure and the LFP fixed point of
  a given operator depend only on the formula and on the auxiliary-relation
  snapshot in scope — not on the first-order assignment.  The checker
  therefore computes each closure/fixed point once per ``(formula,
  auxiliary snapshot)`` and answers every subsequent atom evaluation with a
  set lookup.  Without this, ``define_relation`` over ``n^k`` rows
  recomputes the same closure ``n^k`` times.  Pass ``memoize=False`` to get
  the seed's recompute-every-time behaviour (benchmarks use it as the
  baseline).

* **Semi-naive fixed points.**  Each closure/fixed point is itself computed
  by delta propagation through the engine's relational kernels: TC/DTC
  pairs are extended only from the previous round's frontier against the
  successor index, LFP stages re-examine only the not-yet-derived rows, and
  the DTC unique-successor check cuts each source's target sweep off at the
  second witness.  ``seminaive=False`` keeps the naive re-derive-everything
  strategy (the differential oracle the ``reference`` backend preserves).

* **Mutate-and-restore quantifiers.**  ``Exists`` / ``Forall`` /
  ``CountAtLeast`` rebind their variable in place on a single assignment
  dict and restore it afterwards, instead of copying the dict once per
  binding.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from itertools import product
from typing import Mapping

from repro.core.engine import (
    count_bindings,
    exists_binding,
    forall_binding,
    least_fixpoint,
    transitive_closure,
)
from repro.core.errors import ResourceLimitExceeded
from repro.core.governor import Budget, DegradationEvent
from repro.structures.structure import Structure
from repro.testing.chaos import chaos_point

from .codegen import execute_columnar
from .compile import compile_formula
from .optimize import optimize_formula
from .plan import ExecutionContext, PlanStats

from .formula import (
    And,
    AuxAtom,
    ConstTerm,
    CountAtLeast,
    DTCAtom,
    EqAtom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    LeqAtom,
    LFPAtom,
    Not,
    Or,
    RelAtom,
    TCAtom,
    Term,
    TrueFormula,
    VarTerm,
    free_variables_of,
)

__all__ = ["LOGIC_BACKENDS", "ModelChecker", "evaluate", "define_relation"]


#: The logic layer's interchangeable evaluation strategies: ``plan``
#: compiles formulas to set-at-a-time relational-algebra plans
#: (:mod:`repro.logic.compile`); ``columnar`` additionally lowers each
#: plan to a specialized Python closure over bitset/CSR kernels
#: (:mod:`repro.logic.codegen`), falling back to the plan interpreter on
#: any columnar-side failure; ``tuple`` is the tuple-at-a-time
#: enumeration below, kept as the differential oracle.
LOGIC_BACKENDS = ("plan", "columnar", "tuple")

#: Sentinel distinguishing "variable was unbound" from "bound to 0".
_UNBOUND = object()


class _TupleFallback(Exception):
    """Internal signal: both plan rungs failed on a non-budget error; the
    caller should answer through the tuple oracle."""


def _plan_rows(formula: Formula, layout: tuple[str, ...] | None,
               structure: Structure, context_for, optimize: bool,
               governor, degradations: list,
               columnar_for=None) -> tuple[tuple[str, ...], frozenset]:
    """Execute ``formula`` set-at-a-time down the degradation ladder.

    Rung zero (``columnar`` backend only): compile the best available
    plan (optimized, else raw) to a specialized columnar closure and run
    it; any failure — an unsupported shape, a universe past the dense-int
    cost gate, an injected fault — records a
    :class:`DegradationEvent("columnar", "plan")` and drops to the
    interpreted rungs.  Rung one: the optimized plan.  Any failure
    *optimizing* — a rewrite crash, an injected fault, or a budget blown
    mid-pipeline — records a :class:`DegradationEvent` and falls back to
    the raw compiled plan rather than failing the query.  Rung two: the
    raw plan; an internal failure *executing* either plan (but never a
    :class:`ResourceLimitExceeded`, which is the budget working as
    intended and always propagates) records an event and drops one rung
    further.  Below the raw plan lies the tuple oracle, signalled to the
    caller via :class:`_TupleFallback` (the oracle needs caller-specific
    machinery: row enumeration for ``define_relation``, recursive
    evaluation for ``evaluate``).

    Returns ``(columns, rows)`` of whichever plan rung answered.
    ``context_for`` builds a *fresh* execution context per attempt so a
    failed rung cannot leak partial memo state into the next;
    ``columnar_for`` (when given) runs a plan through
    :func:`~repro.logic.codegen.execute_columnar` with the caller's
    auxiliary scope and counters.
    """
    plan = None
    if optimize:
        try:
            plan = optimize_formula(formula, structure, layout,
                                    governor=governor)
        except Exception as error:
            degradations.append(
                DegradationEvent("optimize", "raw-plan", repr(error)))
    raw = None
    if columnar_for is not None:
        target = plan
        if target is None:
            raw = target = compile_formula(formula, layout)
        try:
            return target.columns, columnar_for(target)
        except ResourceLimitExceeded:
            raise
        except Exception as error:
            degradations.append(
                DegradationEvent("columnar", "plan", repr(error)))
    if plan is not None:
        try:
            return plan.columns, frozenset(plan.execute(context_for()).rows)
        except ResourceLimitExceeded:
            raise
        except Exception as error:
            degradations.append(
                DegradationEvent("plan", "raw-plan", repr(error)))
    if raw is None:
        raw = compile_formula(formula, layout)
    try:
        return raw.columns, frozenset(raw.execute(context_for()).rows)
    except ResourceLimitExceeded:
        raise
    except Exception as error:
        degradations.append(DegradationEvent("plan", "tuple", repr(error)))
        raise _TupleFallback(error) from error


class ModelChecker:
    """Evaluates formulas over a fixed structure.

    ``auxiliary`` optionally supplies interpretations for :class:`AuxAtom`
    relation variables (used internally by LFP iteration, and available to
    callers who want to model-check a formula with a given stage relation).

    ``memoize`` controls the fixed-point/closure cache described in the
    module docstring; leave it on except when measuring the uncached
    baseline.

    ``seminaive`` selects the fixed-point strategy: delta propagation
    through the engine's semi-naive kernels (the default), or the naive
    re-derive-everything iteration (the differential oracle and the P2
    benchmark baseline).  The two are observationally identical.

    ``backend`` selects the evaluation strategy (:data:`LOGIC_BACKENDS`):
    ``"tuple"`` (the default here — the recursive enumeration this class
    has always implemented, kept as the differential oracle) or
    ``"plan"``, which compiles each formula once to a set-at-a-time
    relational-algebra plan (:mod:`repro.logic.compile`), executes it
    over the whole structure, and answers every assignment with a row
    lookup; or ``"columnar"``, which additionally lowers each plan to a
    specialized closure over bitset/CSR kernels
    (:mod:`repro.logic.codegen`) and degrades to the plan interpreter on
    any columnar-side failure.  The Session facade picks ``plan`` for
    its production backends (see
    :meth:`repro.core.engine.Session.logic_backend`).

    ``optimize`` (plan backend only, on by default) runs each compiled
    plan through the :mod:`repro.logic.optimize` rewrite pipeline —
    selection pushdown, dead-column pruning, cost-based join reordering,
    semi-naive delta rewriting of fixed points, common-subplan sharing —
    against the structure's live statistics.  ``optimize=False`` executes
    the raw compiled plan, kept as the differential oracle for the
    optimizer itself.  ``plan_stats`` accumulates the plan executions'
    :class:`~repro.logic.plan.PlanStats` counters across this checker's
    lifetime (the CLI's ``--stats``).
    """

    def __init__(self, structure: Structure,
                 auxiliary: Mapping[str, frozenset[tuple[int, ...]]] | None = None,
                 memoize: bool = True, seminaive: bool = True,
                 backend: str = "tuple", optimize: bool = True,
                 budget: Budget | None = None):
        if backend not in LOGIC_BACKENDS:
            raise ValueError(
                f"unknown logic backend {backend!r}: expected one of "
                f"{LOGIC_BACKENDS}"
            )
        self.structure = structure
        self.auxiliary = dict(auxiliary or {})
        self.memoize = memoize
        self.seminaive = seminaive
        self.backend = backend
        self.optimize = optimize
        self.budget = budget
        #: The degradation ladder's audit log: one event per rung dropped
        #: (optimized plan -> raw plan -> tuple oracle, memo store skipped).
        self.degradations: list[DegradationEvent] = []
        # The per-call governor minted from ``budget`` by :meth:`evaluate`;
        # ``None`` whenever no budget is set (the ungoverned fast path).
        self._governor = None
        self.plan_stats = PlanStats()
        # Maps (kind, formula, auxiliary snapshot) -> computed closure /
        # fixed point (or, for the plan backend, the formula's defined
        # relation).  Keying on the formula object itself (formulas are
        # frozen, hashable dataclasses) pins it alive, so the entry can
        # never be confused with a different formula.
        self._fixpoint_cache: dict = {}
        # The Shared-subplan memo, reused across every plan this checker
        # executes: entries are auxiliary-free, so they depend only on the
        # structure — :meth:`apply_update` prunes the entries reading a
        # changed relation.
        self._plan_memo: dict = {}
        #: Per-strategy counters from :meth:`apply_update` (how many memo
        #: entries each maintenance strategy handled over this checker's
        #: lifetime) — the CLI's ``--updates`` report.
        self.ivm_stats: dict[str, int] = {}
        # Per-memo-entry maintenance scratch (the closure strategy's
        # edge/reach bitsets), carried across updates so steady-state
        # patches cost O(change).  Entries are trusted only while their
        # recorded rows object *is* the cached one, so a dropped or
        # recomputed memo entry silently invalidates its scratch.
        self._ivm_state: dict = {}
        # Serializes the public entry points: a checker mutates and
        # restores shared state (auxiliary relations, the one _governor
        # slot, both memo tables) during every call, so concurrent
        # threads must take turns.  Reentrant because apply_update's
        # maintenance path re-enters defined_relation on the same
        # checker.  Cross-thread *parallelism* comes from running one
        # checker per thread (or per worker process, as the query
        # service does), not from sharing one.
        self._thread_lock = threading.RLock()

    # -------------------------------------------------------------- terms

    def _term_value(self, term: Term, assignment: Mapping[str, int]) -> int:
        if isinstance(term, VarTerm):
            value = assignment.get(term.name, _UNBOUND)
            if value is _UNBOUND:
                raise KeyError(f"unassigned first-order variable: {term.name}")
            return value
        if isinstance(term, ConstTerm):
            if term.which == "zero":
                return 0
            return self.structure.size - 1
        raise TypeError(f"not a term: {term!r}")

    # ----------------------------------------------------------- formulas

    def evaluate(self, formula: Formula, assignment: Mapping[str, int] | None = None) -> bool:
        """Evaluate ``formula`` under the given variable assignment.

        When the checker has a :class:`Budget`, a fresh governor enforces
        it for the duration of this call (the caps are per-query); whatever
        the outcome, :meth:`_restoring` guarantees the checker's auxiliary
        relations and memo tables are back in their pre-call state after
        any exception.
        """
        # Copy so the quantifiers' in-place rebinding never leaks into the
        # caller's mapping.
        assignment = dict(assignment or {})
        self._thread_lock.acquire()
        previous = self._governor
        self._governor = governor = \
            self.budget.start(self.plan_stats) if self.budget is not None \
            else None
        try:
            with self._restoring():
                if governor is not None:
                    governor.check_time()
                if self.backend in ("plan", "columnar"):
                    return self._eval_plan(formula, assignment)
                return self._eval(formula, assignment)
        finally:
            self._governor = previous
            self._thread_lock.release()

    def defined_relation(self, formula: Formula
                         ) -> tuple[tuple[str, ...], frozenset]:
        """The relation ``formula`` defines over its free variables, as
        ``(columns, rows)`` — the checker-level surface behind
        :func:`define_relation`, going through the plan cache so repeated
        calls (and :meth:`apply_update` in between) are O(lookup).

        On the ``tuple`` backend — or when every plan rung fails — the
        rows come from the governed tuple enumeration over the formula's
        free variables, sorted.
        """
        self._thread_lock.acquire()
        previous = self._governor
        self._governor = governor = \
            self.budget.start(self.plan_stats) if self.budget is not None \
            else None
        try:
            with self._restoring():
                if governor is not None:
                    governor.check_time()
                if self.backend in ("plan", "columnar"):
                    try:
                        return self._plan_relation(formula)
                    except _TupleFallback:
                        pass
                layout = tuple(sorted(free_variables_of(formula)))
                rows = set()
                assignment: dict[str, int] = {}
                for row in product(self.structure.universe,
                                   repeat=len(layout)):
                    for variable, value in zip(layout, row):
                        assignment[variable] = value
                    if self._eval(formula, assignment):
                        rows.add(row)
                return layout, frozenset(rows)
        finally:
            self._governor = previous
            self._thread_lock.release()

    # --------------------------------------------------- incremental updates

    def apply_update(self, changeset) -> "Changeset":
        """Apply ``changeset`` to the structure and maintain every memoized
        defined relation incrementally (Dyn-FO; see :mod:`repro.logic.ivm`).

        Per cached ``("plan", formula, snapshot)`` entry whose formula
        reads a changed relation, the maintainability analysis
        (:func:`~repro.logic.optimize.maintenance_strategy`) picks delta /
        closure / fixpoint patching or the recompute fallback; a patched
        value replaces the entry, a fallback — including *any* error on
        the maintenance path — drops it and records a
        ``DegradationEvent("ivm", "recompute")``, so the cache is never
        stale.  Tuple-backend memo kinds (``lfp``/``tc``/``dtc``) and any
        update that grows the universe drop unconditionally.  Returns the
        net :class:`~repro.structures.changeset.Changeset`.
        """
        with self._thread_lock:
            return self._apply_update_locked(changeset)

    def _apply_update_locked(self, changeset) -> "Changeset":
        from .ivm import MaintenanceFallback, maintain, relation_names
        from .optimize import _depends_on_relation, maintenance_strategy

        old_relations = dict(self.structure.relations)
        old_size = self.structure.size
        net = self.structure.apply(changeset)
        if not net:
            return net
        previous = self._governor
        self._governor = governor = \
            self.budget.start(self.plan_stats) if self.budget is not None \
            else None
        try:
            if self.structure.size != old_size:
                # New labels grew the universe: every quantifier range and
                # domain product changed, so nothing survives.
                if self._fixpoint_cache:
                    self.degradations.append(DegradationEvent(
                        "ivm", "recompute",
                        f"universe grew {old_size} -> {self.structure.size}"))
                    self._bump_ivm("recompute", len(self._fixpoint_cache))
                self._fixpoint_cache.clear()
                self._plan_memo.clear()
                return net
            inserted, deleted = net.by_op()
            changed = frozenset(inserted) | frozenset(deleted)
            old_structure = Structure._unchecked(
                self.structure.vocabulary, old_size, old_relations,
                self.structure.intern)
            for plan_key in list(self._plan_memo):
                if any(_depends_on_relation(plan_key, name)
                       for name in changed):
                    del self._plan_memo[plan_key]
            pending = [key for key in self._fixpoint_cache
                       if relation_names(key[1]) & changed]
            try:
                while pending:
                    key = pending.pop()
                    kind, formula, snapshot = key
                    if kind != "plan":
                        del self._fixpoint_cache[key]
                        self.degradations.append(DegradationEvent(
                            "ivm", "recompute", f"tuple-backend {kind} memo"))
                        self._bump_ivm("recompute")
                        continue
                    columns, rows = self._fixpoint_cache[key]
                    try:
                        plan = optimize_formula(formula, self.structure,
                                                None, governor=governor)
                        if tuple(plan.columns) != tuple(columns):
                            raise MaintenanceFallback(
                                "optimized layout changed under update")
                        verdict = maintenance_strategy(plan, changed)
                        patched = maintain(
                            plan, verdict, columns, rows, old_structure,
                            self.structure, inserted, deleted,
                            formula=formula,
                            auxiliary=dict(snapshot),
                            support_check=self._support_oracle(
                                formula, snapshot, columns, governor),
                            seminaive=self.seminaive,
                            stats=self.plan_stats, governor=governor,
                            state=self._ivm_state.setdefault(key, {}))
                        value = (columns, patched)
                        stored = chaos_point(
                            "ivm.memo.patch", value,
                            corrupt=lambda v: (v[0],
                                               frozenset({("$corrupt",)})))
                        if stored is not value:
                            raise MaintenanceFallback(
                                "memo patch did not round-trip")
                        self._fixpoint_cache[key] = stored
                        self._bump_ivm(verdict.strategy)
                    except ResourceLimitExceeded:
                        # The budget fired mid-maintenance: this entry is
                        # half-patched and the rest unvisited — drop them
                        # all (never stale), then let the limit propagate.
                        del self._fixpoint_cache[key]
                        raise
                    except Exception as error:
                        del self._fixpoint_cache[key]
                        self.degradations.append(DegradationEvent(
                            "ivm", "recompute", repr(error)))
                        self._bump_ivm("recompute")
            except BaseException:
                for key in pending:
                    self._fixpoint_cache.pop(key, None)
                raise
            return net
        finally:
            self._governor = previous
            if self._ivm_state:
                self._ivm_state = {
                    key: scratch
                    for key, scratch in self._ivm_state.items()
                    if key in self._fixpoint_cache}

    def _support_oracle(self, formula: Formula, snapshot: frozenset,
                        columns: tuple[str, ...], governor):
        """A ``row -> bool`` membership check against the *post-update*
        structure, through a fresh tuple-backend checker (immune to
        plan-side faults) sharing this call's governor — the ``delta``
        strategy's counting re-check."""
        oracle = ModelChecker(self.structure, auxiliary=dict(snapshot),
                              seminaive=self.seminaive)
        oracle._governor = governor

        def support(row: tuple) -> bool:
            return oracle._eval(formula, dict(zip(columns, row)))

        return support

    def _bump_ivm(self, strategy: str, count: int = 1) -> None:
        self.ivm_stats[strategy] = self.ivm_stats.get(strategy, 0) + count

    @contextmanager
    def _restoring(self):
        """Roll the checker's mutable state — auxiliary relations and both
        memo tables — back to its pre-query snapshot if the query raises,
        so one aborted evaluation can never poison the next (the
        mutate-and-restore audit the governor's error paths rely on).  The
        degradation log is deliberately left alone: it is an audit trail,
        not query state."""
        saved_auxiliary = dict(self.auxiliary)
        saved_cache = set(self._fixpoint_cache)
        saved_memo = set(self._plan_memo)
        try:
            yield
        except BaseException:
            self.auxiliary.clear()
            self.auxiliary.update(saved_auxiliary)
            for key in set(self._fixpoint_cache) - saved_cache:
                del self._fixpoint_cache[key]
            for key in set(self._plan_memo) - saved_memo:
                del self._plan_memo[key]
            raise

    def _plan_relation(self, formula: Formula
                       ) -> tuple[tuple[str, ...], frozenset]:
        """The formula's defined relation ``(columns, rows)`` through the
        plan cache — the memo surface :meth:`apply_update` patches.
        Raises :class:`_TupleFallback` at the bottom of the degradation
        ladder (nothing is cached in that case)."""
        key = ("plan", formula, self._aux_snapshot())
        cached = self._fixpoint_cache.get(key) if self.memoize else None
        if cached is not None:
            return cached

        def context_for() -> ExecutionContext:
            return ExecutionContext(self.structure, dict(self.auxiliary),
                                    self.seminaive, stats=self.plan_stats,
                                    memo=self._plan_memo,
                                    governor=self._governor)

        columnar_for = None
        if self.backend == "columnar":
            def columnar_for(plan):
                return execute_columnar(plan, self.structure,
                                        auxiliary=dict(self.auxiliary),
                                        seminaive=self.seminaive,
                                        stats=self.plan_stats,
                                        governor=self._governor,
                                        degradations=self.degradations)

        columns, rows = _plan_rows(formula, None, self.structure,
                                   context_for, self.optimize,
                                   self._governor, self.degradations,
                                   columnar_for=columnar_for)
        if self.memoize:
            self._memo_store(key, (columns, rows))
        return columns, rows

    def _eval_plan(self, formula: Formula, assignment: dict[str, int]) -> bool:
        """Set-at-a-time evaluation: compile once (memoized per formula),
        optimize against the structure's statistics (unless the checker is
        the ``optimize=False`` oracle), execute the plan into the formula's
        defined relation over its free variables, and decide the assignment
        by a row lookup.  The relation depends only on the formula and the
        auxiliary snapshot, so it is cached exactly like the tuple
        backend's fixed points."""
        try:
            columns, rows = self._plan_relation(formula)
        except _TupleFallback:
            # Bottom of the ladder: answer this assignment through the
            # tuple oracle (immune to every plan-side fault by
            # construction); nothing is cached under the "plan" key.
            return self._eval(formula, assignment)
        values = []
        for column in columns:
            value = assignment.get(column, _UNBOUND)
            if value is _UNBOUND:
                raise KeyError(f"unassigned first-order variable: {column}")
            values.append(value)
        return tuple(values) in rows

    def _eval(self, formula: Formula, assignment: dict[str, int]) -> bool:
        governor = self._governor
        if governor is not None:
            governor.tick()
        if isinstance(formula, TrueFormula):
            return True
        if isinstance(formula, FalseFormula):
            return False
        if isinstance(formula, RelAtom):
            values = tuple(self._term_value(t, assignment) for t in formula.terms)
            return values in self.structure.relation(formula.name)
        if isinstance(formula, AuxAtom):
            values = tuple(self._term_value(t, assignment) for t in formula.terms)
            return values in self.auxiliary.get(formula.name, frozenset())
        if isinstance(formula, EqAtom):
            return self._term_value(formula.left, assignment) == \
                self._term_value(formula.right, assignment)
        if isinstance(formula, LeqAtom):
            return self._term_value(formula.left, assignment) <= \
                self._term_value(formula.right, assignment)
        if isinstance(formula, Not):
            return not self._eval(formula.body, assignment)
        if isinstance(formula, And):
            return all(self._eval(part, assignment) for part in formula.conjuncts)
        if isinstance(formula, Or):
            return any(self._eval(part, assignment) for part in formula.disjuncts)
        if isinstance(formula, Implies):
            return (not self._eval(formula.antecedent, assignment)) or \
                self._eval(formula.consequent, assignment)
        if isinstance(formula, Exists):
            return exists_binding(self.structure.universe, assignment,
                                  formula.variable, self._eval, formula.body)
        if isinstance(formula, Forall):
            return forall_binding(self.structure.universe, assignment,
                                  formula.variable, self._eval, formula.body)
        if isinstance(formula, CountAtLeast):
            threshold = formula.threshold
            if threshold == "half":
                threshold = (self.structure.size + 1) // 2
            witnesses = count_bindings(self.structure.universe, assignment,
                                       formula.variable, self._eval,
                                       formula.body)
            return witnesses >= int(threshold)
        if isinstance(formula, LFPAtom):
            fixed_point = self._lfp(formula)
            values = tuple(self._term_value(t, assignment) for t in formula.terms)
            return values in fixed_point
        if isinstance(formula, TCAtom):
            closure = self._tc(formula, deterministic=False)
            return self._closure_membership(formula, closure, assignment)
        if isinstance(formula, DTCAtom):
            closure = self._tc(formula, deterministic=True)
            return self._closure_membership(formula, closure, assignment)
        raise TypeError(f"cannot evaluate formula node {type(formula).__name__}")

    # ------------------------------------------------------------- fixed points

    def _aux_snapshot(self) -> frozenset:
        """The auxiliary interpretations currently in scope, as a hashable
        cache-key component."""
        return frozenset(self.auxiliary.items())

    def _memo_store(self, key, value) -> None:
        """Store one entry in the fixed-point/relation memo, guarded.

        The governor's ``max_memo_entries`` budget is checked first.  The
        store itself runs through the ``engine.memo.store`` chaos point;
        if the store raises, or hands back anything other than the exact
        value computed (an injected garbling — the identity check is the
        memo layer refusing to index something that did not round-trip),
        the entry is *skipped* with a :class:`DegradationEvent` rather
        than cached: a memo is an optimization, and a lost one can only
        cost time, never correctness.
        """
        if self._governor is not None:
            self._governor.check_memo(len(self._fixpoint_cache) + 1)
        try:
            stored = chaos_point("engine.memo.store", value,
                                 corrupt=lambda entry: frozenset({("$corrupt",)}))
        except ResourceLimitExceeded:
            raise
        except Exception as error:
            self.degradations.append(
                DegradationEvent("memo", "no-memo", repr(error)))
            return
        if stored is not value:
            self.degradations.append(
                DegradationEvent("memo", "no-memo",
                                 "memo store did not round-trip"))
            return
        self._fixpoint_cache[key] = value

    def _lfp(self, formula: LFPAtom) -> frozenset[tuple[int, ...]]:
        """Iterate the (assumed monotone) operator to its least fixed point.

        The result depends only on the formula and the auxiliary snapshot,
        so it is memoized per ``(formula, snapshot)``.
        """
        if self.memoize:
            key = ("lfp", formula, self._aux_snapshot())
            cached = self._fixpoint_cache.get(key)
            if cached is not None:
                return cached
        result = self._compute_lfp(formula)
        if self.memoize:
            self._memo_store(key, result)
        return result

    def _compute_lfp(self, formula: LFPAtom) -> frozenset[tuple[int, ...]]:
        arity = len(formula.variables)
        variables = formula.variables
        relation = formula.relation
        body = formula.body
        rows = list(product(self.structure.universe, repeat=arity))
        # The stage relation is installed on this checker by mutate-and-
        # restore rather than on a fresh per-stage checker, so nested
        # fixed points share this checker's memo table (each stage has a
        # distinct auxiliary snapshot, so entries never collide).  The
        # stage-to-stage iteration itself is the engine's shared
        # least-fixpoint kernel.
        saved = self.auxiliary.get(relation, _UNBOUND)
        assignment: dict[str, int] = {}

        try:
            if self.seminaive:
                return self._lfp_stages_seminaive(rows, variables, relation, body,
                                                  assignment)
            return self._lfp_stages_naive(rows, variables, relation, body,
                                          assignment)
        finally:
            if saved is _UNBOUND:
                self.auxiliary.pop(relation, None)
            else:
                self.auxiliary[relation] = saved
            for variable in variables:
                assignment.pop(variable, None)

    def _lfp_stages_naive(self, rows, variables, relation, body,
                          assignment) -> frozenset[tuple[int, ...]]:
        """Naive stage iteration: every stage sweeps the full row space and
        whole stage relations are compared for stability (the oracle)."""

        def stage_operator(current: frozenset) -> frozenset:
            self.auxiliary[relation] = current
            stage = set(current)
            for row in rows:
                if row in stage:
                    continue
                for variable, value in zip(variables, row):
                    assignment[variable] = value
                if self._eval(body, assignment):
                    stage.add(row)
            return frozenset(stage)

        return least_fixpoint(stage_operator, seminaive=False,
                              governor=self._governor)

    def _lfp_stages_seminaive(self, rows, variables, relation, body,
                              assignment) -> frozenset[tuple[int, ...]]:
        """Semi-naive stage iteration: rows leave the candidate pool the
        stage they are derived, so stage ``i`` re-examines only the rows
        still outside the fixed point (never re-deriving, re-hashing or even
        revisiting the rows already in it), and the iteration stops on an
        empty delta rather than a whole-relation comparison.  The body still
        sees the Jacobi-style previous-stage relation, so the result is
        identical to the naive iteration for every (even non-monotone)
        body.
        """
        remaining = list(rows)

        def delta_step(_delta: frozenset, total: set) -> list[tuple[int, ...]]:
            self.auxiliary[relation] = frozenset(total)
            derived: list[tuple[int, ...]] = []
            survivors: list[tuple[int, ...]] = []
            for row in remaining:
                for variable, value in zip(variables, row):
                    assignment[variable] = value
                if self._eval(body, assignment):
                    derived.append(row)
                else:
                    survivors.append(row)
            remaining[:] = survivors
            return derived

        return least_fixpoint(delta_step=delta_step, governor=self._governor)

    def _edge_relation(self, formula: TCAtom | DTCAtom, deterministic: bool = False
                       ) -> dict[tuple[int, ...], tuple[tuple[int, ...], ...]]:
        """The successor relation ``{x̄ -> [ȳ : phi(x̄, ȳ)]}`` — the per-source
        column index the closure kernel joins against.

        With ``deterministic`` (and the semi-naive strategy) the DTC
        unique-successor condition is checked *incrementally*: a source's
        target sweep stops at the second witness, since an out-degree ≥ 2
        source contributes no deterministic edge no matter what the rest of
        the row space says.  The naive oracle keeps the full n^k sweep.
        """
        arity = len(formula.source_variables)
        source_variables = formula.source_variables
        target_variables = formula.target_variables
        body = formula.body
        tuples = list(product(self.structure.universe, repeat=arity))
        short_circuit = deterministic and self.seminaive
        successors: dict[tuple[int, ...], tuple[tuple[int, ...], ...]] = {}
        assignment: dict[str, int] = {}
        for source in tuples:
            for variable, value in zip(source_variables, source):
                assignment[variable] = value
            targets: list[tuple[int, ...]] = []
            for target in tuples:
                for variable, value in zip(target_variables, target):
                    assignment[variable] = value
                if self._eval(body, assignment):
                    targets.append(target)
                    if short_circuit and len(targets) > 1:
                        break
            successors[source] = tuple(targets)
        return successors

    def _tc(self, formula: TCAtom | DTCAtom, deterministic: bool) -> set[tuple[tuple[int, ...], tuple[int, ...]]]:
        if self.memoize:
            key = ("dtc" if deterministic else "tc", formula, self._aux_snapshot())
            cached = self._fixpoint_cache.get(key)
            if cached is not None:
                return cached
        result = self._compute_tc(formula, deterministic)
        if self.memoize:
            self._memo_store(key, result)
        return result

    def _compute_tc(self, formula: TCAtom | DTCAtom, deterministic: bool) -> set[tuple[tuple[int, ...], tuple[int, ...]]]:
        # The quantifier sweep that builds the edge relation stays here (it
        # needs the formula evaluator); the closure itself is the engine's
        # shared kernel, which also applies the DTC unique-successor
        # pruning (phi_d(x, x') = phi(x, x') and x' is x's only successor).
        successors = self._edge_relation(formula, deterministic)
        return transitive_closure(successors, deterministic=deterministic,
                                  seminaive=self.seminaive,
                                  governor=self._governor)

    def _closure_membership(self, formula: TCAtom | DTCAtom,
                            closure: set[tuple[tuple[int, ...], tuple[int, ...]]],
                            assignment: dict[str, int]) -> bool:
        source = tuple(self._term_value(t, assignment) for t in formula.source_terms)
        target = tuple(self._term_value(t, assignment) for t in formula.target_terms)
        return (source, target) in closure


def evaluate(formula: Formula, structure: Structure,
             assignment: Mapping[str, int] | None = None,
             backend: str = "tuple", optimize: bool = True,
             budget: Budget | None = None) -> bool:
    """Convenience wrapper around :class:`ModelChecker`."""
    checker = ModelChecker(structure, backend=backend, optimize=optimize,
                           budget=budget)
    return checker.evaluate(formula, assignment)


def define_relation(formula: Formula, structure: Structure,
                    variables: tuple[str, ...],
                    memoize: bool = True,
                    seminaive: bool = True,
                    backend: str = "tuple",
                    optimize: bool = True,
                    stats: PlanStats | None = None,
                    budget: Budget | None = None,
                    degradations: list | None = None) -> frozenset[tuple[int, ...]]:
    """The relation ``{(v1..vk) | structure |= formula[v̄]}`` defined by a
    formula with the given free variables.

    With ``backend="plan"`` the formula is compiled once to a relational
    plan laid out over exactly ``variables`` (columns the formula leaves
    unconstrained range over the whole domain), rewritten by the plan
    optimizer against the structure's statistics (unless
    ``optimize=False``, the optimizer's differential oracle), and executed
    set-at-a-time — no per-row enumeration at all.  ``backend="columnar"``
    further lowers the plan to a specialized bitset/CSR closure
    (:mod:`repro.logic.codegen`), degrading to the plan interpreter on
    any columnar-side failure.  ``stats`` optionally receives the
    execution's :class:`~repro.logic.plan.PlanStats` counters.

    With the default ``backend="tuple"`` (the oracle), one checker is
    reused across all ``n^k`` rows, so any TC/DTC/LFP sub-formula is
    closed over once (when ``memoize``) instead of once per row, and the
    row assignment is rebound in place.  ``seminaive`` picks the
    fixed-point strategy either way (see :class:`ModelChecker`).

    A ``budget`` mints a fresh governor for this one definition (either
    backend); plan-side internal failures walk the degradation ladder
    down to the tuple oracle, appending each rung dropped to
    ``degradations`` when a list is supplied.
    """
    if backend not in LOGIC_BACKENDS:
        raise ValueError(
            f"unknown logic backend {backend!r}: expected one of {LOGIC_BACKENDS}"
        )
    layout = tuple(variables)
    governor = budget.start(stats) if budget is not None else None
    events: list = degradations if degradations is not None else []
    if backend in ("plan", "columnar"):
        def context_for() -> ExecutionContext:
            return ExecutionContext(structure, {}, seminaive,
                                    stats=stats, memo={}, governor=governor)

        columnar_for = None
        if backend == "columnar":
            def columnar_for(plan):
                return execute_columnar(plan, structure, seminaive=seminaive,
                                        stats=stats, governor=governor,
                                        degradations=events)

        try:
            _columns, rows = _plan_rows(formula, layout, structure,
                                        context_for, optimize, governor,
                                        events, columnar_for=columnar_for)
            return rows
        except _TupleFallback:
            pass  # fall through to the governed tuple enumeration below
    checker = ModelChecker(structure, memoize=memoize, seminaive=seminaive)
    checker._governor = governor
    rows = set()
    assignment: dict[str, int] = {}
    for row in product(structure.universe, repeat=len(layout)):
        for variable, value in zip(layout, row):
            assignment[variable] = value
        if checker._eval(formula, assignment):
            rows.add(row)
    events.extend(checker.degradations)
    return frozenset(rows)
