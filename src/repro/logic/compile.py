"""Lowering FO(+TC/DTC/LFP/count) formulas to relational plans.

This is the logic layer's analogue of the PR 2 AST → IR compiler: a
structure-independent pass from :mod:`repro.logic.formula` trees to the
:mod:`repro.logic.plan` IR, driven by free-variable analysis.

**Column-layout convention.**  The plan compiled for a formula has one
column per *free* variable, in lexicographically sorted order.  Every
combinator re-establishes this invariant (``_canonical``), so conjunction
is always a natural join on the shared names and disjunction a union of
layout-aligned operands.  Atoms start from positional columns (``$i``)
and take on variable names through select/project/rename
(:func:`_apply_terms`), which also handles constant arguments and
repeated variables.

**Negation via the active domain.**  ``Not`` first *pushes* through the
connectives and quantifiers (De Morgan, ``¬∃ = ∀¬``, comparison operators
flip), so complements are taken as low as possible; only a negated atom
pays for a :class:`~repro.logic.plan.DomainProduct` complement, and then
only over the atom's own free variables.  ``Forall x φ`` lowers as the
complement of ``∃x ¬φ`` — the classic reduction — with the pushed
negation keeping the intermediate products small.

**Fixed points.**  LFP/TC/DTC bodies must close over their bound
variables (the tuple evaluator enforces the same by evaluating bodies
under a fresh assignment); the compiled bodies become
:class:`~repro.logic.plan.Fixpoint` / :class:`~repro.logic.plan.Closure`
nodes that iterate through the engine's semi-naive kernels, and the atom's
argument terms apply to the resulting relation like an ordinary scan.

Compilation is memoized per formula object (formulas are frozen, hashable
dataclasses), so repeated evaluation — e.g. a model checker answering many
assignments — pays for lowering once.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from .formula import (
    And,
    AuxAtom,
    ConstTerm,
    CountAtLeast,
    DTCAtom,
    EqAtom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    LeqAtom,
    LFPAtom,
    Not,
    Or,
    RelAtom,
    TCAtom,
    Term,
    TrueFormula,
    VarTerm,
    free_variables_of,
    pretty,
)
from .plan import (
    AuxScan,
    Closure,
    Col,
    Comparison,
    Const,
    CountSelect,
    Difference,
    DomainProduct,
    Empty,
    Fixpoint,
    Join,
    Plan,
    Product,
    Project,
    RelationScan,
    Rename,
    Select,
    Union,
    _positional,
)

__all__ = ["PlanCompilationError", "compile_formula", "explain"]


class PlanCompilationError(Exception):
    """A formula cannot be lowered to a relational plan."""


def _fail(message: str, formula: Formula) -> None:
    raise PlanCompilationError(f"{message}\n{pretty(formula, indent=1)}")


# ----------------------------------------------------------- layout helpers


def _canonical(plan: Plan) -> Plan:
    """Re-establish the sorted-column invariant."""
    target = tuple(sorted(plan.columns))
    if target != plan.columns:
        plan = Project(plan, target)
    return plan


def _extend(plan: Plan, target: Sequence[str]) -> Plan:
    """Widen ``plan`` to exactly the ``target`` layout: missing columns are
    padded with the active-domain product, then the columns are reordered.
    ``target`` must cover every existing column."""
    target = tuple(target)
    missing = tuple(c for c in target if c not in plan.columns)
    if missing:
        plan = Product(plan, DomainProduct(missing))
    if plan.columns != target:
        plan = Project(plan, target)
    return plan


def _apply_terms(plan: Plan, terms: tuple[Term, ...], source: Formula) -> Plan:
    """Apply an atom's argument terms to a relation with positional columns:
    select on constant arguments and repeated variables, project to one
    column per distinct variable, and rename to the variable names (in the
    canonical sorted order)."""
    comparisons: list[Comparison] = []
    first_occurrence: dict[str, int] = {}
    for index, term in enumerate(terms):
        if isinstance(term, ConstTerm):
            comparisons.append(Comparison("eq", Col(index), Const(term.which)))
        elif isinstance(term, VarTerm):
            seen = first_occurrence.get(term.name)
            if seen is None:
                first_occurrence[term.name] = index
            else:
                comparisons.append(Comparison("eq", Col(index), Col(seen)))
        else:
            _fail(f"not a term: {term!r}, in", source)
    if comparisons:
        plan = Select(plan, tuple(comparisons))
    names = tuple(sorted(first_occurrence))
    plan = Project(plan, tuple(plan.columns[first_occurrence[name]]
                               for name in names))
    return Rename(plan, names)


def _comparison_atom(formula: EqAtom | LeqAtom, op: str) -> Plan:
    """An equality/order atom as a selection over the domain product of its
    variables (``op`` is pre-negated by the caller when lowering ``Not``)."""
    terms = (formula.left, formula.right)
    names = tuple(sorted({t.name for t in terms if isinstance(t, VarTerm)}))

    def ref(term: Term) -> Col | Const:
        if isinstance(term, VarTerm):
            return Col(names.index(term.name))
        if isinstance(term, ConstTerm):
            return Const(term.which)
        _fail(f"not a term: {term!r}, in", formula)

    comparison = Comparison(op, ref(formula.left), ref(formula.right))
    return Select(DomainProduct(names), (comparison,))


# ------------------------------------------------------------------ lowering


# Bounded so a long-lived process generating formulas dynamically cannot
# grow the cache without limit; far larger than any one formula's node
# count, so compilation of a formula in active use stays a single pass.
@lru_cache(maxsize=4096)
def _lower(formula: Formula) -> Plan:
    if isinstance(formula, TrueFormula):
        return DomainProduct(())
    if isinstance(formula, FalseFormula):
        return Empty(())
    if isinstance(formula, RelAtom):
        scan = RelationScan(formula.name, _positional(len(formula.terms)))
        return _apply_terms(scan, formula.terms, formula)
    if isinstance(formula, AuxAtom):
        scan = AuxScan(formula.name, _positional(len(formula.terms)))
        return _apply_terms(scan, formula.terms, formula)
    if isinstance(formula, EqAtom):
        return _comparison_atom(formula, "eq")
    if isinstance(formula, LeqAtom):
        return _comparison_atom(formula, "leq")
    if isinstance(formula, Not):
        return _lower_negation(formula.body)
    if isinstance(formula, And):
        if not formula.conjuncts:
            return DomainProduct(())
        plan = _lower(formula.conjuncts[0])
        for conjunct in formula.conjuncts[1:]:
            plan = Join(plan, _lower(conjunct))
        return _canonical(plan)
    if isinstance(formula, Or):
        if not formula.disjuncts:
            return Empty(())
        plans = [_lower(disjunct) for disjunct in formula.disjuncts]
        target = tuple(sorted(set().union(*(p.columns for p in plans))))
        aligned = tuple(_extend(p, target) for p in plans)
        return aligned[0] if len(aligned) == 1 else Union(aligned)
    if isinstance(formula, Implies):
        return _lower(Or((Not(formula.antecedent), formula.consequent)))
    if isinstance(formula, Exists):
        body = _lower(formula.body)
        widened = tuple(sorted(set(body.columns) | {formula.variable}))
        kept = tuple(c for c in widened if c != formula.variable)
        return Project(_extend(body, widened), kept)
    if isinstance(formula, Forall):
        # ∀x φ = complement of ∃x ¬φ, with the negation pushed into φ.
        negated = _lower(Not(formula.body))
        widened = tuple(sorted(set(negated.columns) | {formula.variable}))
        kept = tuple(c for c in widened if c != formula.variable)
        witnesses = Project(_extend(negated, widened), kept)
        return Difference(DomainProduct(kept), witnesses)
    if isinstance(formula, CountAtLeast):
        if not (isinstance(formula.threshold, int)
                or formula.threshold == "half"):
            _fail(f"counting threshold must be an int or 'half', "
                  f"got {formula.threshold!r}, in", formula)
        body = _lower(formula.body)
        widened = tuple(sorted(set(body.columns) | {formula.variable}))
        return CountSelect(_extend(body, widened), formula.variable,
                           formula.threshold)
    if isinstance(formula, LFPAtom):
        return _lower_lfp(formula)
    if isinstance(formula, (TCAtom, DTCAtom)):
        return _lower_closure(formula)
    raise PlanCompilationError(
        f"cannot compile formula node {type(formula).__name__}"
    )


def _lower_negation(body: Formula) -> Plan:
    """Lower ``Not(body)``, pushing the negation as deep as it goes; only a
    negated *atom* takes an active-domain complement, over its own free
    variables."""
    if isinstance(body, TrueFormula):
        return Empty(())
    if isinstance(body, FalseFormula):
        return DomainProduct(())
    if isinstance(body, Not):
        return _lower(body.body)
    if isinstance(body, And):
        return _lower(Or(tuple(Not(part) for part in body.conjuncts)))
    if isinstance(body, Or):
        return _lower(And(tuple(Not(part) for part in body.disjuncts)))
    if isinstance(body, Implies):
        return _lower(And((body.antecedent, Not(body.consequent))))
    if isinstance(body, Exists):
        return _lower(Forall(body.variable, Not(body.body)))
    if isinstance(body, Forall):
        return _lower(Exists(body.variable, Not(body.body)))
    if isinstance(body, EqAtom):
        return _comparison_atom(body, "ne")
    if isinstance(body, LeqAtom):
        return _comparison_atom(body, "gt")
    plan = _lower(body)
    return Difference(DomainProduct(plan.columns), plan)


def _lower_lfp(formula: LFPAtom) -> Plan:
    variables = formula.variables
    if len(set(variables)) != len(variables):
        _fail("duplicate fixed-point variables in", formula)
    if len(formula.terms) != len(variables):
        _fail(f"LFP applies {len(variables)} fixed-point variables to "
              f"{len(formula.terms)} argument terms, in", formula)
    stray = free_variables_of(formula.body) - set(variables)
    if stray:
        _fail(f"the LFP body's free variables {sorted(stray)} are not among "
              f"the fixed-point variables {list(variables)}, in", formula)
    body = _extend(_lower(formula.body), variables)
    fixpoint = Fixpoint(formula.relation, variables, body)
    return _apply_terms(fixpoint, formula.terms, formula)


def _lower_closure(formula: TCAtom | DTCAtom) -> Plan:
    source_variables = formula.source_variables
    target_variables = formula.target_variables
    k = len(source_variables)
    if len(target_variables) != k:
        _fail("TC/DTC source and target variable tuples differ in length, in",
              formula)
    bound = source_variables + target_variables
    if len(set(bound)) != 2 * k:
        _fail("duplicate TC/DTC bound variables in", formula)
    if len(formula.source_terms) != k or len(formula.target_terms) != k:
        _fail(f"TC/DTC argument tuples must both have {k} terms, in", formula)
    stray = free_variables_of(formula.body) - set(bound)
    if stray:
        _fail(f"the TC/DTC body's free variables {sorted(stray)} are not "
              f"among the bound variables {list(bound)}, in", formula)
    edges = _extend(_lower(formula.body), bound)
    closure = Closure(edges, k, isinstance(formula, DTCAtom))
    return _apply_terms(closure, formula.source_terms + formula.target_terms,
                        formula)


# ----------------------------------------------------------------- frontend


def compile_formula(formula: Formula,
                    variables: Sequence[str] | None = None) -> Plan:
    """Compile a formula to a relational plan.

    Without ``variables`` the plan's columns are the formula's free
    variables in sorted order.  With ``variables`` the plan is widened and
    reordered to exactly that layout (so ``define_relation`` gets its rows
    in the caller's column order); every free variable of the formula must
    appear in it.
    """
    plan = _lower(formula)
    if variables is not None:
        variables = tuple(variables)
        if len(set(variables)) != len(variables):
            _fail(f"duplicate columns in the requested layout {variables}, "
                  f"for", formula)
        unbound = [c for c in plan.columns if c not in variables]
        if unbound:
            _fail(f"free variables {unbound} are missing from the requested "
                  f"column layout {list(variables)}, for", formula)
        plan = _extend(plan, variables)
    return plan


def explain(formula: Formula, variables: Sequence[str] | None = None) -> str:
    """The formula (pretty-printed) next to its compiled plan tree — the
    human-readable face of the planner, used by the CLI's ``--explain``."""
    plan = compile_formula(formula, variables)
    return (
        "formula:\n" + pretty(formula, indent=1)
        + "\nplan:\n"
        + "\n".join("  " + line for line in plan.explain().splitlines())
    )
