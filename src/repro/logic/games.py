"""Ehrenfeucht–Fraïssé games (plain and counting).

Section 7 of the paper separates query classes via structures that agree on
all sentences of a logic up to some resource bound.  The model-theoretic
tool behind such statements is the Ehrenfeucht–Fraïssé game: two structures
agree on all first-order sentences of quantifier rank ``r`` iff the
Duplicator wins the ``r``-round EF game, and agree on all *counting*
first-order sentences of rank ``r`` iff the Duplicator wins the bijective
version.

The implementations below decide the games exactly (by exhaustive search),
so they are only meant for the small structures used in the Figure 1 /
Fact 7.5 experiments — e.g. showing that pure sets of sizes 2k and 2k+1
agree on all FO(without order) sentences of rank k, which is the classical
reason EVEN is not first-order (and not (FO(wo<=)+LFP)) definable.
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

from repro.structures.structure import Structure

__all__ = ["is_partial_isomorphism", "ef_equivalent", "counting_ef_equivalent"]


def is_partial_isomorphism(left: Structure, right: Structure,
                           left_points: Sequence[int], right_points: Sequence[int],
                           respect_order: bool = False) -> bool:
    """Check that ``left_points -> right_points`` is a partial isomorphism.

    With ``respect_order=True`` the mapping must also preserve ``<=`` (the
    ordered-structure game); the default is the unordered game, which is the
    one relevant to the (FO(wo<=)) separations.
    """
    if len(left_points) != len(right_points):
        return False
    pairs = list(zip(left_points, right_points))
    # Well-definedness and injectivity.
    mapping: dict[int, int] = {}
    for a, b in pairs:
        if a in mapping and mapping[a] != b:
            return False
        mapping[a] = b
    if len(set(mapping.values())) != len(mapping):
        return False
    if respect_order:
        for a1, b1 in pairs:
            for a2, b2 in pairs:
                if (a1 <= a2) != (b1 <= b2):
                    return False
    if set(left.vocabulary.names()) != set(right.vocabulary.names()):
        return False
    for name in left.vocabulary:
        arity = left.vocabulary.arity(name)
        indices = range(len(pairs))
        # Check every tuple over the pebbled points.
        def tuples(depth: int, current: tuple[int, ...]):
            if depth == arity:
                yield current
                return
            for i in indices:
                yield from tuples(depth + 1, current + (i,))

        for combo in tuples(0, ()):
            left_row = tuple(left_points[i] for i in combo)
            right_row = tuple(right_points[i] for i in combo)
            if left.holds(name, *left_row) != right.holds(name, *right_row):
                return False
    return True


def ef_equivalent(left: Structure, right: Structure, rounds: int,
                  respect_order: bool = False) -> bool:
    """True when the Duplicator wins the ``rounds``-round EF game, i.e. the
    structures agree on every FO sentence of quantifier rank ``rounds``."""

    def duplicator_wins(left_points: tuple[int, ...], right_points: tuple[int, ...],
                        remaining: int) -> bool:
        if not is_partial_isomorphism(left, right, left_points, right_points,
                                      respect_order):
            return False
        if remaining == 0:
            return True
        # Spoiler plays in the left structure ...
        for a in left.universe:
            if not any(
                duplicator_wins(left_points + (a,), right_points + (b,), remaining - 1)
                for b in right.universe
            ):
                return False
        # ... or in the right structure.
        for b in right.universe:
            if not any(
                duplicator_wins(left_points + (a,), right_points + (b,), remaining - 1)
                for a in left.universe
            ):
                return False
        return True

    return duplicator_wins((), (), rounds)


def counting_ef_equivalent(left: Structure, right: Structure, rounds: int) -> bool:
    """The bijective (counting) EF game: in each round the Duplicator must
    provide a bijection between the universes and the Spoiler picks the
    pebble pair from it.  Winning for ``rounds`` rounds means agreement on
    all counting-FO sentences of quantifier rank ``rounds``.

    Exhaustive over all bijections — only usable for very small structures,
    which suffices for the Fact 7.5 demonstrations.
    """
    if left.size != right.size:
        return False

    universe = list(left.universe)

    def duplicator_wins(left_points: tuple[int, ...], right_points: tuple[int, ...],
                        remaining: int) -> bool:
        if not is_partial_isomorphism(left, right, left_points, right_points):
            return False
        if remaining == 0:
            return True
        for bijection in permutations(universe):
            if all(
                duplicator_wins(left_points + (a,), right_points + (bijection[a],),
                                remaining - 1)
                for a in universe
            ):
                return True
        return False

    return duplicator_wins((), (), rounds)
