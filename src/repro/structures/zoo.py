"""The structure-generator zoo: seeded families for scale experiments.

:mod:`repro.structures.graphs` holds the small paper-shaped workloads
(paths, cycles, alternating graphs); this module is the big-n counterpart
the snapshot tooling builds from.  Every generator comes in two forms:

* ``*_edges`` — a lazy **edge stream** (an iterator of ``(u, v)`` rank
  pairs) suitable for :meth:`~repro.structures.structure.Structure.
  from_edge_stream` and ``snapshot build``: nothing is held in memory
  beyond the packing arrays, so a million-edge graph streams straight
  into CSR form.
* a ``Structure``-returning convenience wrapping the stream (for tests
  and small-n use).

All families are deterministic given their ``seed`` — two runs, or two
machines, produce byte-identical snapshots.  ``ZOO`` maps family names
to their stream constructors for the CLI (``snapshot build --zoo``).

Families:

``layered``
    A layered DAG: ``layers`` ranks of ``width`` vertices, edges only
    between adjacent ranks — closures are deep but acyclic.
``sparse``
    A fixed-out-degree random digraph (``degree`` successors per
    vertex) — the classic sparse-reachability shape.
``dense``
    An Erdős–Rényi digraph of expected density ``probability`` (use
    small ``n``: the edge count is quadratic).
``grid``
    The directed ``rows × cols`` grid (right and down edges) — long
    diameters, tiny degree.
``tournament``
    A random tournament: exactly one directed edge between every vertex
    pair (quadratic; small ``n``).
``clustered``
    Dense clusters of ``cluster_size`` vertices with ``intra`` random
    edges each, plus a sparse ring of bridges between consecutive
    clusters — millions of edges with a closure that stays near-linear
    in the edge count, the P9 benchmark workload.
"""

from __future__ import annotations

import random
from typing import Iterator

from .structure import Structure

__all__ = [
    "ZOO",
    "clustered_edges",
    "clustered_graph",
    "dense_edges",
    "dense_graph",
    "grid_edges",
    "grid_graph",
    "layered_edges",
    "layered_dag",
    "sparse_edges",
    "sparse_graph",
    "tournament_edges",
    "tournament_graph",
]


def layered_edges(layers: int, width: int, degree: int = 2, seed: int = 0
                  ) -> Iterator[tuple[int, int]]:
    """A layered DAG stream: each vertex gets ``degree`` random successors
    in the next layer.  Vertices are numbered layer-major, so 0 is in the
    first layer and ``layers*width - 1`` in the last."""
    rng = random.Random(seed)
    fanout = min(degree, width)
    for layer in range(layers - 1):
        base, nxt = layer * width, (layer + 1) * width
        for offset in range(width):
            source = base + offset
            for target in rng.sample(range(nxt, nxt + width), fanout):
                yield source, target


def layered_dag(layers: int, width: int, degree: int = 2, seed: int = 0
                ) -> Structure:
    return Structure.from_edge_stream(
        layered_edges(layers, width, degree, seed), size=layers * width)


def sparse_edges(size: int, degree: int = 3, seed: int = 0
                 ) -> Iterator[tuple[int, int]]:
    """A fixed-out-degree random digraph stream (no self-loops)."""
    rng = random.Random(seed)
    fanout = min(degree, size - 1) if size > 1 else 0
    for source in range(size):
        seen: set[int] = set()
        while len(seen) < fanout:
            target = rng.randrange(size)
            if target != source and target not in seen:
                seen.add(target)
                yield source, target


def sparse_graph(size: int, degree: int = 3, seed: int = 0) -> Structure:
    return Structure.from_edge_stream(sparse_edges(size, degree, seed),
                                      size=size)


def dense_edges(size: int, probability: float = 0.3, seed: int = 0
                ) -> Iterator[tuple[int, int]]:
    """An Erdős–Rényi digraph stream (quadratic work: keep ``size`` small)."""
    rng = random.Random(seed)
    for source in range(size):
        for target in range(size):
            if source != target and rng.random() < probability:
                yield source, target


def dense_graph(size: int, probability: float = 0.3, seed: int = 0
                ) -> Structure:
    return Structure.from_edge_stream(dense_edges(size, probability, seed),
                                      size=size)


def grid_edges(rows: int, cols: int) -> Iterator[tuple[int, int]]:
    """The directed grid: right and down edges, row-major numbering."""
    for row in range(rows):
        for col in range(cols):
            vertex = row * cols + col
            if col + 1 < cols:
                yield vertex, vertex + 1
            if row + 1 < rows:
                yield vertex, vertex + cols


def grid_graph(rows: int, cols: int) -> Structure:
    return Structure.from_edge_stream(grid_edges(rows, cols),
                                      size=rows * cols)


def tournament_edges(size: int, seed: int = 0) -> Iterator[tuple[int, int]]:
    """A random tournament stream: one directed edge per vertex pair."""
    rng = random.Random(seed)
    for low in range(size):
        for high in range(low + 1, size):
            yield (low, high) if rng.random() < 0.5 else (high, low)


def tournament_graph(size: int, seed: int = 0) -> Structure:
    return Structure.from_edge_stream(tournament_edges(size, seed), size=size)


def clustered_edges(clusters: int, cluster_size: int = 25, intra: int = 125,
                    seed: int = 0) -> Iterator[tuple[int, int]]:
    """The P9 million-edge workload: ``clusters`` dense clusters of
    ``cluster_size`` vertices with ``intra`` random internal edges each,
    chained by one bridge edge between consecutive clusters.  The closure
    is near-linear in the edge count (each vertex reaches roughly its own
    cluster and the bridged tail), so transitive closure at ``n = 2·10^5``
    stays feasible in bounded memory."""
    rng = random.Random(seed)
    for cluster in range(clusters):
        base = cluster * cluster_size
        for _ in range(intra):
            yield (base + rng.randrange(cluster_size),
                   base + rng.randrange(cluster_size))
        if cluster + 1 < clusters:
            yield base, base + cluster_size


def clustered_graph(clusters: int, cluster_size: int = 25, intra: int = 125,
                    seed: int = 0) -> Structure:
    return Structure.from_edge_stream(
        clustered_edges(clusters, cluster_size, intra, seed),
        size=clusters * cluster_size)


#: Stream constructors by family name, for ``snapshot build --zoo``.  Each
#: maps keyword parameters (all integers except ``probability``) to an
#: ``(edge stream, universe size)`` pair.
ZOO = {
    "layered": lambda layers=64, width=64, degree=2, seed=0: (
        layered_edges(layers, width, degree, seed), layers * width),
    "sparse": lambda size=1024, degree=3, seed=0: (
        sparse_edges(size, degree, seed), size),
    "dense": lambda size=128, probability=0.3, seed=0: (
        dense_edges(size, probability, seed), size),
    "grid": lambda rows=32, cols=32: (grid_edges(rows, cols), rows * cols),
    "tournament": lambda size=128, seed=0: (tournament_edges(size, seed),
                                            size),
    "clustered": lambda clusters=1000, cluster_size=25, intra=125, seed=0: (
        clustered_edges(clusters, cluster_size, intra, seed),
        clusters * cluster_size),
}
