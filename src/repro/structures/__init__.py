"""Finite logical structures and the graph/permutation workloads.

This is the descriptive-complexity substrate of Section 3: inputs are finite
structures over an ordered universe ``{0, ..., n-1}``, which SRL programs
see as databases of sets of (tuples of) atoms.
"""

from .cfi import CFIPair, cfi_pair, colored_graph_to_structure, cycle_base, cycle_pair, k4_base
from .encoding import (
    decode_relation,
    encode_relation,
    encode_structure,
    index_to_tuple,
    structure_bit_length,
    tuple_to_index,
)
from .graphs import (
    alternating_graph_structure,
    and_or_tree,
    cycle_graph,
    functional_graph,
    graph_structure,
    layered_graph,
    path_graph,
    permutations_structure,
    random_alternating_graph,
    random_graph,
    random_permutations,
)
from .changeset import Change, Changeset
from .intern import InternTable
from .snapshot import (
    Snapshot,
    SnapshotError,
    SnapshotRelation,
    build_snapshot,
    load_snapshot,
    load_structure,
    save_snapshot,
)
from .structure import Structure, from_database
from .vocabulary import ALTERNATING_GRAPH_VOCABULARY, GRAPH_VOCABULARY, Vocabulary
from .zoo import (
    ZOO,
    clustered_graph,
    dense_graph,
    grid_graph,
    layered_dag,
    sparse_graph,
    tournament_graph,
)
from .wl import (
    ColoredGraph,
    are_isomorphic,
    color_refinement,
    find_isomorphism,
    wl1_indistinguishable,
    wl2_indistinguishable,
    wl2_signature,
)

__all__ = [name for name in dir() if not name.startswith("_")]
