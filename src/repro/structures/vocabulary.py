"""Vocabularies of finite logical structures (Section 3).

A vocabulary ``tau = (R1^{a1}, ..., Rk^{ak})`` is a tuple of relation symbols
of fixed arities; a problem is a subset of ``STRUCT[tau]``, the set of all
finite structures of that vocabulary.  Constant symbols (the paper uses
``0`` and ``n-1``) are handled by the logic layer, which always has access
to the ordered universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Vocabulary", "GRAPH_VOCABULARY", "ALTERNATING_GRAPH_VOCABULARY"]


@dataclass(frozen=True)
class Vocabulary:
    """A finite map from relation names to arities."""

    relations: tuple[tuple[str, int], ...]

    @classmethod
    def of(cls, **arities: int) -> "Vocabulary":
        """``Vocabulary.of(E=2, A=1)`` — keyword-style constructor."""
        return cls(tuple(sorted(arities.items())))

    def arity(self, name: str) -> int:
        for relation, arity in self.relations:
            if relation == name:
                return arity
        raise KeyError(f"unknown relation symbol: {name}")

    def __contains__(self, name: str) -> bool:
        return any(relation == name for relation, _ in self.relations)

    def __iter__(self) -> Iterator[str]:
        return (relation for relation, _ in self.relations)

    def names(self) -> tuple[str, ...]:
        return tuple(relation for relation, _ in self.relations)

    def as_dict(self) -> dict[str, int]:
        return dict(self.relations)

    def extended(self, **arities: int) -> "Vocabulary":
        """A new vocabulary with extra relation symbols."""
        merged = self.as_dict()
        merged.update(arities)
        return Vocabulary.of(**merged)

    def __str__(self) -> str:
        inner = ", ".join(f"{name}^{arity}" for name, arity in self.relations)
        return f"<{inner}>"


#: Directed graphs: a single binary edge relation.
GRAPH_VOCABULARY = Vocabulary.of(E=2)

#: Alternating graphs (Definition 3.4): edges plus a unary predicate marking
#: the universal ("AND") vertices.
ALTERNATING_GRAPH_VOCABULARY = Vocabulary.of(E=2, A=1)
