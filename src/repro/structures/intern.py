"""Dense-int interning: the canonical ``element -> 0..n-1`` domain map.

The logic layer's structures (:class:`~repro.structures.structure.Structure`)
already live on the ordered universe ``{0, ..., n-1}`` — the descriptive-
complexity encoding the paper fixes — and every relation is a frozenset of
small-int tuples.  :class:`InternTable` is the bridge that gets *labeled*
inputs (strings, user ids, arbitrary hashable objects) into that canonical
dense domain: each distinct element is assigned the next free rank in first-
occurrence order, the table is persisted on the structure it produced, and
query results decode back to labels through it.

Dense ranks are what make the columnar backend
(:mod:`repro.core.columnar`) possible at all: a unary relation over ranks
is one Python int used as a bit vector (bit ``i`` = membership of element
``i``), a binary relation is CSR adjacency over ranks — neither
representation exists for relations over raw labels.  The table is also
the persistence contract for ROADMAP item 5's snapshots: a dumped
structure is (n, relations-over-ranks, intern table), nothing else.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

__all__ = ["InternTable"]


class InternTable:
    """A bijection ``label <-> dense rank`` built in first-occurrence order.

    ``intern`` assigns (or returns) a label's rank; ``rank_of`` /
    ``label_of`` are the two lookup directions; ``decode_row`` maps a tuple
    of ranks back to labels.  Tables compare equal when they map the same
    labels to the same ranks.
    """

    __slots__ = ("_ranks", "_labels")

    def __init__(self, labels: Iterable[Hashable] = ()):
        self._ranks: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        for label in labels:
            self.intern(label)

    # ------------------------------------------------------------- building

    def intern(self, label: Hashable) -> int:
        """The rank of ``label``, assigning the next free one if new."""
        rank = self._ranks.get(label)
        if rank is None:
            rank = len(self._labels)
            self._ranks[label] = rank
            self._labels.append(label)
        return rank

    def intern_row(self, row: Sequence[Hashable]) -> tuple[int, ...]:
        """One relation tuple of labels, interned position by position."""
        return tuple(self.intern(label) for label in row)

    # -------------------------------------------------------------- lookups

    def rank_of(self, label: Hashable) -> int:
        """The rank of an already-interned label (KeyError when unknown)."""
        return self._ranks[label]

    def label_of(self, rank: int) -> Hashable:
        """The label holding ``rank``."""
        return self._labels[rank]

    def decode_row(self, row: Sequence[int]) -> tuple[Hashable, ...]:
        """A tuple of ranks (one row of a defined relation) back as labels."""
        labels = self._labels
        return tuple(labels[rank] for rank in row)

    @property
    def labels(self) -> tuple[Hashable, ...]:
        """Every interned label, in rank order."""
        return tuple(self._labels)

    # ------------------------------------------------------------- protocol

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: object) -> bool:
        return label in self._ranks

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._labels)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, InternTable):
            return self._labels == other._labels
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(label) for label in self._labels[:4])
        if len(self._labels) > 4:
            preview += ", ..."
        return f"InternTable(n={len(self._labels)}, [{preview}])"

    def as_mapping(self) -> Mapping[Hashable, int]:
        """A read-only snapshot of the ``label -> rank`` map (the snapshot
        format ROADMAP item 5's mmap dumps will serialize)."""
        return dict(self._ranks)
