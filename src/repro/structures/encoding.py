"""Bit encodings of relations and structures (Definition 3.1).

The paper's first-order interpretations assume a bit-encoding of relations:
``R(x, y)`` over ``D = {0, ..., n-1}`` is a string of ``n^2`` bits whose
``(n*x + y)``-th bit is 1 iff ``R(x, y)`` holds.  These helpers implement
that encoding (and its inverse) so interpretations and reductions can be
checked bit-for-bit in tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .structure import Structure
from .vocabulary import Vocabulary

__all__ = [
    "tuple_to_index",
    "index_to_tuple",
    "encode_relation",
    "decode_relation",
    "encode_structure",
    "structure_bit_length",
]


def tuple_to_index(row: Sequence[int], size: int) -> int:
    """The n-ary positional index of a tuple (the paper's ``j1 j2 ... jbk``)."""
    index = 0
    for value in row:
        if not 0 <= value < size:
            raise ValueError(f"value {value} outside universe of size {size}")
        index = index * size + value
    return index


def index_to_tuple(index: int, arity: int, size: int) -> tuple[int, ...]:
    """Inverse of :func:`tuple_to_index`."""
    if not 0 <= index < size ** arity:
        raise ValueError(f"index {index} out of range for arity {arity}, size {size}")
    row = []
    for _ in range(arity):
        row.append(index % size)
        index //= size
    return tuple(reversed(row))


def encode_relation(rows: Iterable[Sequence[int]], arity: int, size: int) -> list[int]:
    """The ``size**arity``-bit encoding of a relation."""
    bits = [0] * (size ** arity)
    for row in rows:
        if len(row) != arity:
            raise ValueError(f"tuple {tuple(row)} does not have arity {arity}")
        bits[tuple_to_index(row, size)] = 1
    return bits


def decode_relation(bits: Sequence[int], arity: int, size: int) -> frozenset[tuple[int, ...]]:
    """Inverse of :func:`encode_relation`."""
    if len(bits) != size ** arity:
        raise ValueError(
            f"expected {size ** arity} bits for arity {arity} over size {size}, "
            f"got {len(bits)}"
        )
    return frozenset(
        index_to_tuple(index, arity, size)
        for index, bit in enumerate(bits)
        if bit
    )


def encode_structure(structure: Structure) -> dict[str, list[int]]:
    """Encode every relation of a structure as a bit string."""
    return {
        name: encode_relation(structure.relation(name),
                              structure.vocabulary.arity(name),
                              structure.size)
        for name in structure.vocabulary
    }


def structure_bit_length(vocabulary: Vocabulary, size: int) -> int:
    """The total number of bits in the encoding of any structure of this
    vocabulary and universe size."""
    return sum(size ** arity for _, arity in vocabulary.relations)
