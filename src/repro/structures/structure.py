"""Finite logical structures with universe ``{0, ..., n-1}`` (Section 3).

This is the descriptive-complexity encoding of database inputs the paper
uses: every input is a finite structure over an ordered universe, and SRL
programs receive it as sets of (tuples of) atoms.  :meth:`Structure.to_database`
performs that conversion; :func:`from_database` goes the other way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from repro.core import Atom, Database, make_set, make_tuple
from repro.core.errors import InvalidDatabaseError, SRLNameError
from repro.core.values import SRLSet, SRLTuple, Value

from .changeset import Change, Changeset
from .intern import InternTable
from .vocabulary import Vocabulary

__all__ = ["Structure", "from_database", "load_structure_file"]


@dataclass
class Structure:
    """A finite structure: a universe size and relations over it.

    Relations are stored as frozensets of integer tuples; unary relations
    still use 1-tuples internally, but :meth:`relation` accepts bare
    integers for membership tests.

    ``intern`` optionally records how the canonical dense-int universe was
    produced from labeled elements (see :class:`~repro.structures.intern.
    InternTable` and :meth:`from_labeled`); ``None`` means the universe
    *is* its own labeling (elements are the ranks ``0..n-1``).  The table
    rides along through :meth:`with_relation` / :meth:`restrict` and is
    surfaced by :meth:`stats`.
    """

    vocabulary: Vocabulary
    size: int
    relations: dict[str, frozenset[tuple[int, ...]]] = field(default_factory=dict)
    intern: InternTable | None = None

    def __post_init__(self) -> None:
        if self.intern is not None and len(self.intern) != self.size:
            raise ValueError(
                f"intern table maps {len(self.intern)} elements but the "
                f"universe has size {self.size}"
            )
        for name in self.vocabulary:
            self.relations.setdefault(name, frozenset())
        for name, tuples in self.relations.items():
            arity = self.vocabulary.arity(name)
            normalised = set()
            for item in tuples:
                row = tuple(item) if isinstance(item, (tuple, list)) else (item,)
                if len(row) != arity:
                    raise ValueError(
                        f"relation {name} expects arity {arity}, got tuple {row}"
                    )
                if not all(0 <= v < self.size for v in row):
                    raise ValueError(f"relation {name} tuple {row} outside universe")
                normalised.add(tuple(int(v) for v in row))
            self.relations[name] = frozenset(normalised)

    # ------------------------------------------------------------ accessors

    @property
    def universe(self) -> range:
        return range(self.size)

    def relation(self, name: str) -> frozenset[tuple[int, ...]]:
        try:
            return self.relations[name]
        except KeyError:
            available = ", ".join(sorted(self.relations)) or "none"
            raise SRLNameError(
                f"unknown relation {name!r} (available: {available})"
            ) from None

    def holds(self, name: str, *values: int) -> bool:
        return tuple(values) in self.relations[name]

    def count_tuples(self) -> int:
        return sum(len(rows) for rows in self.relations.values())

    def stats(self) -> dict:
        """Summary statistics for ``--stats`` and snapshot manifests: the
        universe size, the intern-table entry count (equal to the size —
        the table is a bijection onto the universe — or the size again for
        the identity labeling), and the per-relation row counts."""
        return {
            "size": self.size,
            "intern_entries": self.size if self.intern is None else len(self.intern),
            "interned": self.intern is not None,
            "relations": {name: len(rows)
                          for name, rows in sorted(self.relations.items())},
        }

    def decode_row(self, row: Sequence[int]) -> tuple:
        """A tuple of universe ranks back as the caller's labels (identity
        when the structure was built directly over ``0..n-1``)."""
        if self.intern is None:
            return tuple(row)
        return self.intern.decode_row(row)

    @classmethod
    def from_labeled(cls, relations: Mapping[str, Iterable[Sequence[Hashable]]],
                     elements: Iterable[Hashable] = (),
                     vocabulary: Vocabulary | None = None) -> "Structure":
        """Build a structure from relations over arbitrary hashable labels.

        Every distinct label — first those listed in ``elements`` (callers
        fix the ordering, and isolated elements, this way), then any others
        in relation-row order — is interned to the next dense rank, and the
        resulting :class:`InternTable` is persisted on the structure.  The
        vocabulary is inferred from the rows unless given explicitly.
        """
        table = InternTable(elements)
        ranked: dict[str, set[tuple[int, ...]]] = {}
        arities: dict[str, int] = {}
        for name, rows in relations.items():
            interned = {table.intern_row(tuple(row) if isinstance(row, (tuple, list))
                                         else (row,))
                        for row in rows}
            ranked[name] = interned
            arities[name] = max((len(row) for row in interned), default=1)
        if vocabulary is None:
            vocabulary = Vocabulary.of(**arities)
        return cls(vocabulary, len(table),
                   {name: frozenset(rows) for name, rows in ranked.items()},
                   intern=table)

    @classmethod
    def from_edge_stream(cls, edges: Iterable[Sequence[Hashable]],
                         relation: str = "E", size: int | None = None,
                         elements: Iterable[Hashable] = ()) -> "Structure":
        """Build a graph structure from an edge stream in one bounded pass.

        Edges are packed into machine-word arrays as they arrive — the
        relation is held as a CSR view
        (:class:`~repro.structures.snapshot.PackedCSRRelation`), never as
        a set of Python tuples, so peak memory is O(edges) *words*.  With
        ``size`` given, components must be ranks in ``0..size-1``; without
        it every distinct component is interned in first-occurrence order
        (``elements`` pre-seeds the ordering, exactly like
        :meth:`from_labeled`) and the intern table is persisted.
        """
        from array import array

        from .snapshot import PackedCSRRelation
        from repro.core.columnar import csr_of_pairs

        sources, targets = array("i"), array("i")
        if size is None:
            table = InternTable(elements)
            for row in edges:
                source, target = row
                sources.append(table.intern(source))
                targets.append(table.intern(target))
            n = len(table)
        else:
            table = None
            n = int(size)
            for row in edges:
                source, target = row
                if not (0 <= source < n and 0 <= target < n):
                    raise ValueError(
                        f"relation {relation} edge ({source!r}, {target!r}) "
                        f"outside universe (size {n})")
                sources.append(source)
                targets.append(target)
        offsets, packed = csr_of_pairs(sources, targets, n)
        del sources, targets
        return cls._unchecked(
            Vocabulary.of(**{relation: 2}), n,
            {relation: PackedCSRRelation(offsets, packed)}, table)

    # ----------------------------------------------------------- conversion

    def to_database(self, include_domain: bool = True,
                    domain_name: str = "D") -> Database:
        """Encode the structure as an SRL database.

        Every relation ``R`` becomes a set named ``R``: unary relations are
        sets of atoms, higher-arity ones sets of tuples of atoms.  When
        ``include_domain`` is set the ordered universe itself is bound to
        ``domain_name`` (the paper's ``D`` / ``NODES``), which SRL programs
        iterate over to simulate quantification and arithmetic.
        """
        database = Database()
        if include_domain:
            database.bind(domain_name, make_set(*(Atom(i) for i in self.universe)))
        for name in self.vocabulary:
            arity = self.vocabulary.arity(name)
            rows = self.relations[name]
            if arity == 1:
                database.bind(name, make_set(*(Atom(row[0]) for row in rows)))
            else:
                database.bind(
                    name,
                    make_set(*(make_tuple(*(Atom(v) for v in row)) for row in rows)),
                )
        return database

    # ------------------------------------------------------------ mutation

    def insert(self, name: str, row: Sequence[Hashable]) -> bool:
        """Insert one fact in place; True iff it was not already present.

        Integer components are universe ranks and must be in range; on an
        interned structure, non-int components are labels — unknown labels
        are interned, growing the universe (the new element gets the next
        rank and ``size`` grows with it).  See :meth:`apply` for the
        batched form and the net-change contract.
        """
        return bool(self.apply(Changeset.inserting(name, row)))

    def delete(self, name: str, row: Sequence[Hashable]) -> bool:
        """Delete one fact in place; True iff it was present.

        Deletion never shrinks the universe: an element interned by an
        earlier insert stays in the universe even when its last fact goes.
        """
        return bool(self.apply(Changeset.deleting(name, row)))

    def apply(self, changeset: Changeset) -> Changeset:
        """Apply a batch of single-fact updates in order, in place.

        Returns the **net** changeset: the facts whose membership actually
        changed between the pre- and post-state (an insert later deleted in
        the same batch nets out; re-inserting a present fact is a no-op).
        The net changeset is what the incremental maintenance layer pushes
        through compiled plans, so ``apply`` is the single choke point
        every mutation path goes through.

        Rows are validated like ``__post_init__``: known relation symbol,
        exact arity, components inside the universe.  On an interned
        structure, non-int components are labels; a label unknown at an
        *insert* is interned first (``size`` grows).  Raises on the first
        invalid operation — earlier operations in the batch stay applied,
        so callers treating a batch as atomic should validate first or
        re-snapshot.
        """
        if not isinstance(changeset, Changeset):
            changeset = Changeset(tuple(changeset))
        working: dict[str, set[tuple[int, ...]]] = {}
        initial: dict[tuple[str, tuple[int, ...]], bool] = {}
        for change in changeset:
            name = change.relation
            if name not in self.relations:
                available = ", ".join(sorted(self.relations)) or "none"
                raise SRLNameError(
                    f"unknown relation {name!r} (available: {available})"
                )
            row = self._resolve_row(change)
            rows = working.get(name)
            if rows is None:
                rows = working[name] = set(self.relations[name])
            key = (name, row)
            if key not in initial:
                initial[key] = row in rows
            if change.op == "insert":
                rows.add(row)
            else:
                rows.discard(row)
        net = []
        for (name, row), was_present in initial.items():
            is_present = row in working[name]
            if is_present and not was_present:
                net.append(Change("insert", name, row))
            elif was_present and not is_present:
                net.append(Change("delete", name, row))
        for name, rows in working.items():
            self.relations[name] = frozenset(rows)
        return Changeset(tuple(net))

    def _resolve_row(self, change: Change) -> tuple[int, ...]:
        """Validate one operation's row and resolve labels to ranks,
        interning (and growing the universe) for new labels on inserts."""
        name, row = change.relation, change.row
        arity = self.vocabulary.arity(name)
        if len(row) != arity:
            raise ValueError(
                f"relation {name} expects arity {arity}, got tuple {row!r}"
            )
        resolved = []
        for component in row:
            if isinstance(component, int) and not isinstance(component, bool):
                if not 0 <= component < self.size:
                    raise ValueError(
                        f"relation {name} tuple {row!r} outside universe "
                        f"(size {self.size})"
                    )
                resolved.append(component)
                continue
            if self.intern is None:
                raise ValueError(
                    f"relation {name} tuple {row!r}: labeled components "
                    f"need an interned structure (build via from_labeled)"
                )
            if component in self.intern:
                resolved.append(self.intern.rank_of(component))
            elif change.op == "insert":
                resolved.append(self.intern.intern(component))
                self.size = len(self.intern)
            else:
                raise ValueError(
                    f"relation {name}: cannot delete fact {row!r} with "
                    f"unknown label {component!r}"
                )
        return tuple(resolved)

    @classmethod
    def _unchecked(cls, vocabulary: Vocabulary, size: int,
                   relations: dict[str, frozenset[tuple[int, ...]]],
                   intern: InternTable | None) -> "Structure":
        """Internal: a structure view skipping ``__post_init__`` validation
        — the maintenance layer's pre-update snapshot (old relation
        frozensets are shared, never copied, so this is O(#relations))."""
        clone = object.__new__(cls)
        clone.vocabulary = vocabulary
        clone.size = size
        clone.relations = relations
        clone.intern = intern
        return clone

    # ------------------------------------------------------------- algebra

    def with_relation(self, name: str, tuples: Iterable[Sequence[int]],
                      arity: int | None = None) -> "Structure":
        """A copy of this structure with relation ``name`` replaced/added."""
        rows = frozenset(tuple(row) for row in tuples)
        if name in self.vocabulary:
            vocabulary = self.vocabulary
        else:
            if arity is None:
                arity = len(next(iter(rows), ()))
                if arity == 0:
                    raise ValueError("cannot infer arity of an empty new relation")
            vocabulary = self.vocabulary.extended(**{name: arity})
        relations = dict(self.relations)
        relations[name] = rows
        return Structure(vocabulary, self.size, relations, intern=self.intern)

    def restrict(self, names: Iterable[str]) -> "Structure":
        """The reduct of this structure to the given relation symbols."""
        names = list(names)
        vocabulary = Vocabulary.of(**{n: self.vocabulary.arity(n) for n in names})
        return Structure(vocabulary, self.size,
                         {n: self.relations[n] for n in names},
                         intern=self.intern)

    def is_isomorphic_by(self, other: "Structure", mapping: Sequence[int]) -> bool:
        """Check that ``mapping`` (a permutation of the universe) is an
        isomorphism from this structure onto ``other``."""
        if self.size != other.size or sorted(mapping) != list(range(self.size)):
            return False
        if set(self.vocabulary.names()) != set(other.vocabulary.names()):
            return False
        for name in self.vocabulary:
            image = frozenset(tuple(mapping[v] for v in row) for row in self.relations[name])
            if image != other.relations[name]:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Structure)
            and self.size == other.size
            and set(self.vocabulary.names()) == set(other.vocabulary.names())
            and all(self.relations[n] == other.relations[n] for n in self.vocabulary)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(f"{name}:{len(rows)}" for name, rows in sorted(self.relations.items()))
        return f"Structure(n={self.size}, {sizes})"


def from_database(database: Database | Mapping[str, object],
                  domain_name: str = "D") -> Structure:
    """Reconstruct a :class:`Structure` from an SRL database produced by
    :meth:`Structure.to_database` (or shaped like one)."""
    if not isinstance(database, Database):
        database = Database(database)

    def ranks_of(name: str, value: Value) -> set[tuple[int, ...]]:
        rows: set[tuple[int, ...]] = set()
        if not isinstance(value, SRLSet):
            raise InvalidDatabaseError(
                f"{name}: a relation must be a set of facts, got "
                f"{type(value).__name__}"
            )
        for index, element in enumerate(value.elements):
            if isinstance(element, Atom):
                rows.add((element.rank,))
            elif isinstance(element, SRLTuple):
                for position, component in enumerate(element):
                    if not isinstance(component, Atom):
                        raise InvalidDatabaseError(
                            f"{name}[{index}][{position}]: a fact component "
                            f"must be an atom, got {component!r}"
                        )
                rows.add(tuple(v.rank for v in element))
            else:
                raise InvalidDatabaseError(
                    f"{name}[{index}]: a fact must be an atom or a tuple of "
                    f"atoms, got {element!r}"
                )
        return rows

    names = [name for name in database.names() if name != domain_name]
    arities: dict[str, int] = {}
    relations: dict[str, frozenset[tuple[int, ...]]] = {}
    max_rank = -1
    if domain_name in database:
        domain_value = database.lookup(domain_name)
        if not isinstance(domain_value, SRLSet):
            raise InvalidDatabaseError(
                f"{domain_name}: the domain must be a set of atoms, got "
                f"{type(domain_value).__name__}"
            )
        for element in domain_value.elements:
            if isinstance(element, Atom):
                max_rank = max(max_rank, element.rank)

    for name in names:
        rows = ranks_of(name, database.lookup(name))
        arities[name] = max((len(row) for row in rows), default=1)
        relations[name] = frozenset(rows)
        for row in rows:
            max_rank = max(max_rank, max(row, default=-1))

    try:
        return Structure(Vocabulary.of(**arities), max_rank + 1, relations)
    except ValueError as error:
        # Mixed arities within one relation (the vocabulary records the
        # maximum; shorter facts then fail the arity check).
        raise InvalidDatabaseError(str(error)) from error


def load_structure_file(path) -> Structure:
    """A structure from either on-disk encoding: binary snapshots are
    recognized by their leading ``RSNP`` magic, anything else parses as
    the JSON database shape.  Shared by the CLI and the query-service
    workers, so both front ends accept exactly the same files."""
    import json
    from pathlib import Path

    from .snapshot import MAGIC, load_structure

    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
    if magic == MAGIC:
        return load_structure(path)
    from repro.core.engine import database_from_json

    return from_database(database_from_json(json.loads(path.read_text())))
