"""Graph structures and workload generators.

These produce the inputs the benchmarks sweep over:

* plain directed graphs (for GAP / transitive closure, Corollaries 4.2/4.4),
* *alternating* graphs with universal/existential vertices (Definition 3.4,
  the P-complete AGAP problem of Theorem 3.10),
* functional graphs (out-degree one; deterministic reachability, DTC),
* layered/grid graphs and random graphs for scaling experiments,
* permutation inputs for iterated multiplication IM_Sn (Definition 4.8).

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .structure import Structure
from .vocabulary import ALTERNATING_GRAPH_VOCABULARY, GRAPH_VOCABULARY, Vocabulary

__all__ = [
    "graph_structure",
    "alternating_graph_structure",
    "path_graph",
    "cycle_graph",
    "random_graph",
    "functional_graph",
    "layered_graph",
    "random_alternating_graph",
    "and_or_tree",
    "permutations_structure",
    "random_permutations",
]


def graph_structure(size: int, edges: Iterable[tuple[int, int]]) -> Structure:
    """A directed graph over universe ``{0..size-1}``."""
    return Structure(GRAPH_VOCABULARY, size, {"E": frozenset(tuple(e) for e in edges)})


def alternating_graph_structure(size: int, edges: Iterable[tuple[int, int]],
                                universal: Iterable[int]) -> Structure:
    """An alternating graph (Definition 3.4): ``A`` marks universal vertices."""
    return Structure(
        ALTERNATING_GRAPH_VOCABULARY,
        size,
        {
            "E": frozenset(tuple(e) for e in edges),
            "A": frozenset((v,) for v in universal),
        },
    )


def path_graph(size: int) -> Structure:
    """The directed path 0 -> 1 -> ... -> size-1."""
    return graph_structure(size, [(i, i + 1) for i in range(size - 1)])


def cycle_graph(size: int) -> Structure:
    """The directed cycle on ``size`` vertices."""
    return graph_structure(size, [(i, (i + 1) % size) for i in range(size)])


def random_graph(size: int, edge_probability: float = 0.15, seed: int = 0) -> Structure:
    """An Erdős–Rényi style directed graph."""
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(size)
        for v in range(size)
        if u != v and rng.random() < edge_probability
    ]
    return graph_structure(size, edges)


def functional_graph(size: int, seed: int = 0) -> Structure:
    """A graph in which every vertex has out-degree exactly one.

    Deterministic transitive closure (DTC, Corollary 4.4) is the natural
    reachability notion on these.
    """
    rng = random.Random(seed)
    edges = [(u, rng.randrange(size)) for u in range(size)]
    return graph_structure(size, edges)


def layered_graph(layers: int, width: int, seed: int = 0,
                  edge_probability: float = 0.5) -> Structure:
    """A DAG of ``layers`` layers with ``width`` vertices each; edges only go
    from one layer to the next.  Vertex 0 is in the first layer, the last
    vertex in the last layer — a standard reachability workload."""
    rng = random.Random(seed)
    size = layers * width
    edges = []
    for layer in range(layers - 1):
        for i in range(width):
            u = layer * width + i
            for j in range(width):
                v = (layer + 1) * width + j
                if rng.random() < edge_probability:
                    edges.append((u, v))
    return graph_structure(size, edges)


def random_alternating_graph(size: int, edge_probability: float = 0.25,
                             universal_fraction: float = 0.4, seed: int = 0) -> Structure:
    """A random alternating graph for AGAP experiments."""
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(size)
        for v in range(size)
        if u != v and rng.random() < edge_probability
    ]
    universal = [v for v in range(size) if rng.random() < universal_fraction]
    return alternating_graph_structure(size, edges, universal)


def and_or_tree(depth: int) -> Structure:
    """A complete binary AND/OR tree of the given depth as an alternating
    graph: the root is vertex 0; internal vertices alternate universal (AND)
    and existential (OR) by level; leaves have no outgoing edges.

    With this orientation APATH(root, leaf) asks whether the specific leaf is
    "reachable through the game", which mirrors the and/or game semantics of
    Definition 3.4.
    """
    size = 2 ** (depth + 1) - 1
    edges = []
    universal = []
    for v in range(size):
        left, right = 2 * v + 1, 2 * v + 2
        if left < size:
            edges.append((v, left))
        if right < size:
            edges.append((v, right))
        level = (v + 1).bit_length() - 1
        if level % 2 == 0 and left < size:
            universal.append(v)
    return alternating_graph_structure(size, edges, universal)


# ------------------------------------------------------------- permutations


def permutations_structure(perms: Sequence[Sequence[int]]) -> Structure:
    """Encode a sequence of permutations of ``[m]`` as a structure.

    The paper codes the IM_Sn input as tuples ``[i, [j, k]]`` meaning "the
    i-th permutation maps j to k".  We use a ternary relation ``P(i, j, k)``
    over a universe large enough to index both the permutations and their
    domain; the SRL encoding mirrors the nested-pair shape.
    """
    count = len(perms)
    degree = len(perms[0]) if perms else 0
    for pi in perms:
        if sorted(pi) != list(range(degree)):
            raise ValueError(f"not a permutation of range({degree}): {pi}")
    size = max(count, degree, 1)
    rows = {(i, j, pi[j]) for i, pi in enumerate(perms) for j in range(degree)}
    return Structure(Vocabulary.of(P=3), size, {"P": frozenset(rows)})


def random_permutations(count: int, degree: int, seed: int = 0) -> list[list[int]]:
    """``count`` uniformly random permutations of ``range(degree)``."""
    rng = random.Random(seed)
    result = []
    for _ in range(count):
        pi = list(range(degree))
        rng.shuffle(pi)
        result.append(pi)
    return result
