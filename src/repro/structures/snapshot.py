"""Binary structure snapshots: the out-of-core persistence format (P9).

A snapshot is one file holding a :class:`~repro.structures.structure.
Structure` — universe size, vocabulary, intern table, and every relation
as a *packed* payload — plus optional derived (memoized) relations and
per-relation degree statistics for the optimizer's cost model.  The
format is designed around two constraints:

* **Load without materializing.**  ``mmap`` the file, parse one JSON
  header, and hand each relation back as a lazy frozenset-like view
  (:class:`SnapshotRelation`) over the mapped bytes.  Row sets are only
  built if some consumer actually iterates; the columnar backends never
  do — they read the packed payloads directly through :meth:`bitset` /
  :meth:`csr_arrays`, so a million-edge closure starts from a cold file
  in milliseconds of deserialization, not minutes of tuple building.
* **Write in one bounded pass.**  :func:`build_snapshot` consumes an
  edge stream, interning labels and packing rows into machine-word
  arrays as it goes — peak memory O(edges) words, never O(edges) tuples.

Layout (all integers little-endian)::

    bytes 0..3    magic  b"RSNP"
    bytes 4..5    format version (u16, currently 1)
    bytes 6..7    reserved (zero)
    bytes 8..15   header length H (u64)
    bytes 16..    UTF-8 JSON header, H bytes
    (padding to a multiple of 8)
    payload       packed sections, each 8-byte aligned

The header records, per relation: arity, row count, encoding, the
section's offset *relative to the payload base* and length, and — for
binary relations — degree statistics (``distinct_sources``,
``distinct_targets``, ``max_out_degree``).  Encodings by arity:

=========  =============================================================
``bitset``  arity 1: the membership bitset as packed 64-bit words
``csr``     arity 2: ``n+1`` u64 row offsets, then the i32 target list
``tuples``  arity 0 and 3+: the rows flattened as i32 values
=========  =============================================================

Every malformed-input path — bad magic, unknown version, header that is
not JSON, sections pointing past the end of the file, payload lengths
that disagree with the declared row counts — raises
:class:`~repro.core.errors.SnapshotError`, which subclasses
``InvalidDatabaseError`` so the CLI reports it as a bad input (exit 2).
"""

from __future__ import annotations

import json
import mmap
import os
import sys
import tempfile
import zlib
from array import array
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.core.columnar import csr_of_pairs, iter_bits, iter_csr_rows

from .intern import InternTable
from .structure import Structure
from .vocabulary import Vocabulary

# The format error lives in core.errors (the CLI maps it to exit 2); the
# import is re-exported here as part of the snapshot API.
from repro.core.errors import SnapshotError

__all__ = [
    "Snapshot",
    "SnapshotError",
    "SnapshotRelation",
    "PackedBitsetRelation",
    "PackedCSRRelation",
    "PackedTupleRelation",
    "build_snapshot",
    "degree_stats_of_csr",
    "load_snapshot",
    "load_structure",
    "save_snapshot",
]

MAGIC = b"RSNP"
VERSION = 1
_HEADER_PREFIX = 16  # magic + version + reserved + header length


def _pad8(length: int) -> int:
    return (-length) % 8


def _le(values: array) -> bytes:
    """The array's bytes in little-endian order regardless of host."""
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def _array_from(typecode: str, raw: bytes | memoryview) -> array:
    values = array(typecode)
    values.frombytes(raw)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts only
        values.byteswap()
    return values


# --------------------------------------------------------- packed relations


class SnapshotRelation:
    """Base of the lazy frozenset-like relation views.

    Concrete subclasses hold one packed payload (a bitset int, a CSR
    array pair, or a flat tuple buffer) and answer ``len``/``in``/
    iteration from it; :meth:`rows` materializes (and caches) the full
    frozenset only when some consumer genuinely needs row sets — the
    packed accessors :meth:`PackedBitsetRelation.bitset` and
    :meth:`PackedCSRRelation.csr_arrays` are what the columnar backends
    use instead.  Set operators are provided (materializing) so these
    views compose with ordinary frozenset code paths.
    """

    __slots__ = ("_rows",)

    def __init__(self) -> None:
        self._rows: frozenset | None = None

    def rows(self) -> frozenset:
        if self._rows is None:
            self._rows = frozenset(self._iter_rows())
        return self._rows

    def _iter_rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[tuple]:
        if self._rows is not None:
            return iter(self._rows)
        return self._iter_rows()

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, row: object) -> bool:
        return row in self.rows()

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SnapshotRelation):
            return self.rows() == other.rows()
        if isinstance(other, (set, frozenset)):
            return self.rows() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.rows())

    def __or__(self, other):
        return self.rows() | other

    __ror__ = __or__

    def __and__(self, other):
        return self.rows() & other

    __rand__ = __and__

    def __sub__(self, other):
        return self.rows() - other

    def __rsub__(self, other):
        return other - self.rows()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rows={len(self)})"


class PackedBitsetRelation(SnapshotRelation):
    """An arity-1 relation as one membership bitset."""

    __slots__ = ("_bits", "_count")

    def __init__(self, bits: int, count: int | None = None):
        super().__init__()
        self._bits = bits
        self._count = bits.bit_count() if count is None else count

    def bitset(self) -> int:
        return self._bits

    def _iter_rows(self) -> Iterator[tuple]:
        return ((index,) for index in iter_bits(self._bits))

    def __len__(self) -> int:
        return self._count

    def __contains__(self, row: object) -> bool:
        if isinstance(row, tuple) and len(row) == 1:
            value = row[0]
            return isinstance(value, int) and value >= 0 \
                and bool(self._bits >> value & 1)
        if isinstance(row, int):
            return row >= 0 and bool(self._bits >> row & 1)
        return False


class PackedCSRRelation(SnapshotRelation):
    """An arity-2 relation as CSR offsets + sorted target lists."""

    __slots__ = ("_offsets", "_targets")

    def __init__(self, offsets: array, targets: array):
        super().__init__()
        self._offsets = offsets
        self._targets = targets

    def csr_arrays(self) -> tuple[array, array]:
        return self._offsets, self._targets

    def _iter_rows(self) -> Iterator[tuple]:
        return iter_csr_rows(self._offsets, self._targets)

    def __len__(self) -> int:
        return len(self._targets)

    def __contains__(self, row: object) -> bool:
        if not (isinstance(row, tuple) and len(row) == 2):
            return False
        source, target = row
        offsets = self._offsets
        if not (isinstance(source, int) and 0 <= source < len(offsets) - 1):
            return False
        targets = self._targets
        lo, hi = offsets[source], offsets[source + 1]
        while lo < hi:  # rows are target-sorted: binary search
            mid = (lo + hi) // 2
            value = targets[mid]
            if value == target:
                return True
            if value < target:
                lo = mid + 1
            else:
                hi = mid
        return False


class PackedTupleRelation(SnapshotRelation):
    """Any other arity, flattened into one i32 buffer."""

    __slots__ = ("_arity", "_flat")

    def __init__(self, arity: int, flat: array):
        super().__init__()
        self._arity = arity
        self._flat = flat

    def _iter_rows(self) -> Iterator[tuple]:
        arity, flat = self._arity, self._flat
        if arity == 0:
            return iter([()] if len(flat) else [])
        return (tuple(flat[i:i + arity])
                for i in range(0, len(flat), arity))

    def __len__(self) -> int:
        if self._arity == 0:
            return 1 if len(self._flat) else 0
        return len(self._flat) // self._arity


# ------------------------------------------------------------- degree stats


def degree_stats_of_csr(offsets: Sequence[int], targets: Sequence[int]
                        ) -> dict[str, int]:
    """Per-relation shape statistics persisted in the snapshot header and
    fed to the optimizer's :class:`~repro.logic.optimize.CostModel`: how
    many sources have any edge, how many distinct targets exist, and the
    worst-case fanout."""
    distinct_sources = 0
    max_out = 0
    for source in range(len(offsets) - 1):
        degree = offsets[source + 1] - offsets[source]
        if degree:
            distinct_sources += 1
            if degree > max_out:
                max_out = degree
    return {
        "rows": len(targets),
        "distinct_sources": distinct_sources,
        "distinct_targets": len(set(targets)),
        "max_out_degree": max_out,
    }


# ------------------------------------------------------------------ writing


def _pack_relation(name: str, arity: int, relation, size: int
                   ) -> tuple[dict, bytes]:
    """One relation as ``(header entry sans offset, payload bytes)``."""
    if arity == 1:
        if isinstance(relation, PackedBitsetRelation):
            bits = relation.bitset()
        else:
            bits = 0
            for row in relation:
                bits |= 1 << row[0]
        words = (size + 63) // 64
        payload = bits.to_bytes(8 * words, "little")
        return {"arity": 1, "rows": bits.bit_count(),
                "encoding": "bitset"}, payload
    if arity == 2:
        if isinstance(relation, PackedCSRRelation):
            offsets, targets = relation.csr_arrays()
        else:
            sources, sinks = array("i"), array("i")
            for row in relation:
                sources.append(row[0])
                sinks.append(row[1])
            offsets, targets = csr_of_pairs(sources, sinks, size)
        body = _le(offsets) + _le(targets)
        entry = {"arity": 2, "rows": len(targets), "encoding": "csr",
                 "stats": degree_stats_of_csr(offsets, targets)}
        return entry, body
    flat = array("i")
    count = 0
    for row in sorted(relation):
        count += 1
        flat.extend(row)
    if arity == 0:
        # The unit relation: one marker value when the empty tuple holds.
        if count:
            flat.append(1)
        return {"arity": 0, "rows": count, "encoding": "tuples"}, _le(flat)
    return {"arity": arity, "rows": count, "encoding": "tuples"}, _le(flat)


def save_snapshot(structure: Structure, path: str | os.PathLike,
                  derived: Mapping[str, frozenset] | None = None) -> dict:
    """Write ``structure`` (and optional ``derived`` memoized relations)
    as a snapshot file, returning the header that was persisted.

    Intern-table labels are stored in the JSON header and must therefore
    be JSON-serializable; anything else raises :class:`SnapshotError`
    (persist such structures over their ranks instead)."""
    labels = None
    if structure.intern is not None:
        labels = list(structure.intern.labels)
        try:
            labels = json.loads(json.dumps(labels))
        except (TypeError, ValueError) as error:
            raise SnapshotError(
                f"intern labels are not JSON-serializable: {error}"
            ) from error
    entries: dict[str, dict] = {}
    payloads: list[bytes] = []
    cursor = 0

    def add(name: str, arity: int, relation, bucket: dict) -> None:
        nonlocal cursor
        entry, payload = _pack_relation(name, arity, relation,
                                        structure.size)
        entry["offset"] = cursor
        entry["length"] = len(payload)
        bucket[name] = entry
        pad = _pad8(len(payload))
        payloads.append(payload + b"\0" * pad)
        cursor += len(payload) + pad

    for name in structure.vocabulary:
        add(name, structure.vocabulary.arity(name),
            structure.relations[name], entries)
    derived_entries: dict[str, dict] = {}
    for name, rows in (derived or {}).items():
        arity = len(next(iter(rows), ()))
        add(name, arity, rows, derived_entries)

    checksum = 0
    for payload in payloads:
        checksum = zlib.crc32(payload, checksum)
    header = {
        "format": "repro-structure-snapshot",
        "version": VERSION,
        "size": structure.size,
        "vocabulary": structure.vocabulary.as_dict(),
        "labels": labels,
        "relations": entries,
        "derived": derived_entries,
        # Verified on open: a torn or bit-flipped payload section fails
        # loudly as SnapshotError instead of decoding into wrong rows.
        "checksum": {"algorithm": "crc32", "value": checksum,
                     "payload_bytes": cursor},
    }
    encoded = json.dumps(header, separators=(",", ":")).encode("utf-8")
    # Atomic publish: write a sibling temp file, fsync it, then
    # os.replace onto the target — a crash mid-write leaves either the
    # old snapshot or no snapshot, never a torn file under the real name.
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(MAGIC)
            handle.write((VERSION).to_bytes(2, "little"))
            handle.write(b"\0\0")
            handle.write(len(encoded).to_bytes(8, "little"))
            handle.write(encoded)
            handle.write(b"\0" * _pad8(_HEADER_PREFIX + len(encoded)))
            for payload in payloads:
                handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return header


# ------------------------------------------------------------------ reading


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SnapshotError(message)


class Snapshot:
    """One opened snapshot: the parsed header, the lazy structure, and
    any derived relations stored alongside it.

    The underlying buffer is read fully into memory only on small files;
    larger ones stay as an ``mmap`` view for as long as a relation view
    might still read from it (the arrays a view decodes are copies, so
    the mapping is released once every relation has been touched —
    :meth:`close` forces it)."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as error:
            raise SnapshotError(f"cannot open snapshot: {error}") from error
        try:
            size = os.fstat(self._file.fileno()).st_size
            _require(size >= _HEADER_PREFIX,
                     f"{self.path}: too short for a snapshot header "
                     f"({size} bytes)")
            try:
                self._view = mmap.mmap(self._file.fileno(), 0,
                                       access=mmap.ACCESS_READ)
            except (ValueError, OSError) as error:
                raise SnapshotError(
                    f"{self.path}: cannot map snapshot: {error}") from error
            self.header = self._parse_header()
        except Exception:
            self._file.close()
            raise
        self._structure: Structure | None = None
        self._derived: dict[str, SnapshotRelation] | None = None

    # ------------------------------------------------------------- header

    def _parse_header(self) -> dict:
        view = self._view
        _require(bytes(view[0:4]) == MAGIC,
                 f"{self.path}: bad magic {bytes(view[0:4])!r} "
                 f"(expected {MAGIC!r})")
        version = int.from_bytes(view[4:6], "little")
        _require(version == VERSION,
                 f"{self.path}: unsupported snapshot version {version} "
                 f"(this build reads version {VERSION})")
        header_length = int.from_bytes(view[8:16], "little")
        _require(_HEADER_PREFIX + header_length <= len(view),
                 f"{self.path}: header length {header_length} runs past "
                 f"the end of the file ({len(view)} bytes)")
        raw = view[_HEADER_PREFIX:_HEADER_PREFIX + header_length]
        try:
            header = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotError(
                f"{self.path}: header is not valid JSON: {error}"
            ) from error
        _require(isinstance(header, dict), f"{self.path}: header must be "
                 f"a JSON object, got {type(header).__name__}")
        size = header.get("size")
        _require(isinstance(size, int) and size >= 0,
                 f"{self.path}: header size must be a non-negative "
                 f"integer, got {size!r}")
        vocabulary = header.get("vocabulary")
        _require(isinstance(vocabulary, dict) and all(
            isinstance(arity, int) and arity >= 0
            for arity in vocabulary.values()),
            f"{self.path}: header vocabulary must map names to arities")
        for bucket in ("relations", "derived"):
            _require(isinstance(header.get(bucket, {}), dict),
                     f"{self.path}: header {bucket} must be an object")
        self._payload_base = _HEADER_PREFIX + header_length \
            + _pad8(_HEADER_PREFIX + header_length)
        checksum = header.get("checksum")
        if checksum is not None:
            # Files written before the checksum existed simply lack the
            # field; files that carry one must verify, in full, at open.
            _require(isinstance(checksum, dict)
                     and checksum.get("algorithm") == "crc32"
                     and isinstance(checksum.get("value"), int)
                     and isinstance(checksum.get("payload_bytes"), int),
                     f"{self.path}: malformed checksum entry {checksum!r}")
            span = checksum["payload_bytes"]
            _require(self._payload_base + span <= len(view),
                     f"{self.path}: checksummed payload ({span} bytes) "
                     f"runs past the end of the file ({len(view)} bytes)")
            actual = zlib.crc32(
                view[self._payload_base:self._payload_base + span])
            _require(actual == checksum["value"],
                     f"{self.path}: payload checksum mismatch (stored "
                     f"crc32 {checksum['value']:#010x}, computed "
                     f"{actual:#010x}) — the snapshot is corrupt or torn")
        return header

    # ------------------------------------------------------------ sections

    def _section(self, name: str, entry: dict) -> memoryview:
        _require(isinstance(entry, dict)
                 and isinstance(entry.get("offset"), int)
                 and isinstance(entry.get("length"), int)
                 and isinstance(entry.get("rows"), int)
                 and entry.get("rows") >= 0
                 and entry.get("offset") >= 0
                 and entry.get("length") >= 0,
                 f"{self.path}: relation {name!r} has a malformed header "
                 f"entry")
        start = self._payload_base + entry["offset"]
        stop = start + entry["length"]
        _require(stop <= len(self._view),
                 f"{self.path}: relation {name!r} section "
                 f"[{start}, {stop}) runs past the end of the file "
                 f"({len(self._view)} bytes)")
        return memoryview(self._view)[start:stop]

    def _decode(self, name: str, entry: dict) -> SnapshotRelation:
        section = self._section(name, entry)
        encoding = entry.get("encoding")
        arity = entry.get("arity")
        size = self.header["size"]
        if encoding == "bitset":
            _require(arity == 1, f"{self.path}: relation {name!r} bitset "
                     f"encoding requires arity 1, got {arity!r}")
            words = (size + 63) // 64
            _require(len(section) == 8 * words,
                     f"{self.path}: relation {name!r} bitset payload is "
                     f"{len(section)} bytes, expected {8 * words}")
            bits = int.from_bytes(section, "little")
            relation = PackedBitsetRelation(bits)
            _require(len(relation) == entry["rows"],
                     f"{self.path}: relation {name!r} bitset holds "
                     f"{len(relation)} rows, header says {entry['rows']}")
            return relation
        if encoding == "csr":
            _require(arity == 2, f"{self.path}: relation {name!r} csr "
                     f"encoding requires arity 2, got {arity!r}")
            rows = entry["rows"]
            expected = 8 * (size + 1) + 4 * rows
            _require(len(section) == expected,
                     f"{self.path}: relation {name!r} csr payload is "
                     f"{len(section)} bytes, expected {expected} "
                     f"({rows} rows over universe {size})")
            offsets = _array_from("q", section[:8 * (size + 1)])
            targets = _array_from("i", section[8 * (size + 1):])
            _require(len(offsets) == size + 1 and offsets[0] == 0
                     and offsets[-1] == rows
                     and all(offsets[i] <= offsets[i + 1]
                             for i in range(size)),
                     f"{self.path}: relation {name!r} csr offsets are not "
                     f"monotone over [0, {rows}]")
            _require(all(0 <= t < size for t in targets),
                     f"{self.path}: relation {name!r} has targets outside "
                     f"the universe of {size}")
            return PackedCSRRelation(offsets, targets)
        _require(encoding == "tuples",
                 f"{self.path}: relation {name!r} has unknown encoding "
                 f"{encoding!r}")
        _require(isinstance(arity, int) and arity >= 0,
                 f"{self.path}: relation {name!r} has invalid arity "
                 f"{arity!r}")
        rows = entry["rows"]
        expected = 4 * arity * rows if arity else (4 if rows else 0)
        _require(len(section) == expected,
                 f"{self.path}: relation {name!r} tuple payload is "
                 f"{len(section)} bytes, expected {expected}")
        flat = _array_from("i", section)
        if arity:
            _require(all(0 <= value < size for value in flat),
                     f"{self.path}: relation {name!r} has components "
                     f"outside the universe of {size}")
        return PackedTupleRelation(arity, flat)

    # ------------------------------------------------------------- results

    @property
    def structure(self) -> Structure:
        """The lazily-decoded structure (decoded once, then cached)."""
        if self._structure is None:
            header = self.header
            vocabulary = Vocabulary.of(**header["vocabulary"])
            relations: dict = {}
            entries = header.get("relations", {})
            for name in vocabulary:
                entry = entries.get(name)
                _require(entry is not None,
                         f"{self.path}: relation {name!r} is in the "
                         f"vocabulary but has no section")
                _require(entry.get("arity") == vocabulary.arity(name),
                         f"{self.path}: relation {name!r} arity "
                         f"{entry.get('arity')!r} disagrees with the "
                         f"vocabulary ({vocabulary.arity(name)})")
                relations[name] = self._decode(name, entry)
            labels = header.get("labels")
            intern = None
            if labels is not None:
                _require(isinstance(labels, list)
                         and len(labels) == header["size"],
                         f"{self.path}: {len(labels) if isinstance(labels, list) else '?'} "
                         f"intern labels for a universe of {header['size']}")
                intern = InternTable(labels)
                _require(len(intern) == header["size"],
                         f"{self.path}: intern labels are not distinct")
            structure = Structure._unchecked(vocabulary, header["size"],
                                             relations, intern)
            structure.degree_stats = {
                name: dict(entry["stats"])
                for name, entry in entries.items()
                if isinstance(entry.get("stats"), dict)
            }
            self._structure = structure
        return self._structure

    @property
    def derived(self) -> dict[str, SnapshotRelation]:
        """Derived/memoized relations stored alongside the inputs."""
        if self._derived is None:
            self._derived = {
                name: self._decode(name, entry)
                for name, entry in self.header.get("derived", {}).items()
            }
        return self._derived

    def info(self) -> dict:
        """The ``snapshot info`` CLI payload: header facts plus file size."""
        header = self.header
        return {
            "path": self.path,
            "file_bytes": len(self._view),
            "size": header["size"],
            "interned": header.get("labels") is not None,
            "vocabulary": dict(header["vocabulary"]),
            "relations": {
                name: {key: entry[key] for key in
                       ("arity", "rows", "encoding", "length")}
                | ({"stats": entry["stats"]} if "stats" in entry else {})
                for name, entry in header.get("relations", {}).items()
            },
            "derived": {
                name: {key: entry[key] for key in
                       ("arity", "rows", "encoding", "length")}
                for name, entry in header.get("derived", {}).items()
            },
        }

    def close(self) -> None:
        """Release the mapping (relation views already decoded keep
        working; undecoded ones must not be touched afterwards)."""
        self._view.close()
        self._file.close()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_snapshot(path: str | os.PathLike) -> Snapshot:
    """Open and validate a snapshot file (header only; relations decode
    lazily)."""
    return Snapshot(path)


def load_structure(path: str | os.PathLike) -> Structure:
    """The one-call loading convenience: the snapshot's structure, with
    every relation decoded as a lazy packed view."""
    return load_snapshot(path).structure


# ----------------------------------------------------------- streaming build


def build_snapshot(edges: Iterable[Sequence[Hashable]],
                   path: str | os.PathLike, relation: str = "E",
                   size: int | None = None,
                   elements: Iterable[Hashable] = ()) -> dict:
    """Stream ``edges`` into a snapshot file in one bounded pass.

    Rows are packed into machine-word arrays as they arrive (peak memory
    O(edges) *words*); with ``size`` given the components are taken as
    universe ranks, otherwise every distinct component is interned in
    first-occurrence order (seeded by ``elements``) and the intern table
    is persisted.  Returns the written header."""
    structure = Structure.from_edge_stream(edges, relation=relation,
                                           size=size, elements=elements)
    return save_snapshot(structure, path)
