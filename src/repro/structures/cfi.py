"""Hard pairs of structures for counting logics (Theorem 7.7).

The paper's Theorem 7.7 cites the Cai–Fürer–Immerman construction: a
sequence of pairs ``G_n, H_n`` that agree on all ``(FO(wo<=) + count)``
sentences with at most ``n`` variables yet are distinguishable in linear
time when an ordering is available.  Two constructions are provided:

* :func:`cfi_pair` — the genuine CFI companion construction over an
  arbitrary connected base graph: every base vertex becomes a gadget of
  even-cardinality subsets of its incident edges, every base edge a pair of
  "assignment" vertices; the twisted companion flips exactly one vertex to
  odd-cardinality subsets.  The two graphs are non-isomorphic but hard for
  bounded-dimension Weisfeiler–Leman refinement (the higher the base graph's
  connectivity, the higher the dimension needed).

* :func:`cycle_pair` — the classic small separating example used by the
  benchmarks as an inexpensive stand-in: a single cycle ``C_{2m}`` versus
  two disjoint cycles ``C_m + C_m``.  The pair is 1-WL-indistinguishable
  (every vertex looks identical to 2-variable counting logic) yet an SRL
  program computing transitive closure — a polynomial-time,
  order-independent query — separates them, which is exactly the *shape* of
  Theorem 7.7's statement.  DESIGN.md records this substitution.

Both constructions return :class:`~repro.structures.wl.ColoredGraph` objects
(plus plain :class:`~repro.structures.structure.Structure` views via
:func:`colored_graph_to_structure`) so they plug into the WL tools and the
SRL pipeline alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from .structure import Structure
from .vocabulary import Vocabulary
from .wl import ColoredGraph

__all__ = [
    "CFIPair",
    "cfi_pair",
    "cycle_pair",
    "colored_graph_to_structure",
    "k4_base",
    "cycle_base",
]


@dataclass
class CFIPair:
    """An untwisted/twisted pair of coloured graphs."""

    untwisted: ColoredGraph
    twisted: ColoredGraph
    description: str


def k4_base() -> list[tuple[int, int]]:
    """The complete graph K4 as an undirected edge list (a 3-regular base)."""
    return [(u, v) for u, v in combinations(range(4), 2)]


def cycle_base(length: int) -> list[tuple[int, int]]:
    """An undirected cycle of the given length (a 2-regular base)."""
    if length < 3:
        raise ValueError("a cycle base needs at least 3 vertices")
    return [(i, (i + 1) % length) for i in range(length)]


def _build_cfi(base_size: int, base_edges: Sequence[tuple[int, int]],
               twisted_vertex: int | None) -> ColoredGraph:
    """Build the CFI companion of the base graph.

    ``twisted_vertex`` selects the vertex whose gadget uses odd-cardinality
    subsets; ``None`` builds the untwisted companion.
    """
    edges = [frozenset(e) for e in base_edges]
    incident: dict[int, list[int]] = {v: [] for v in range(base_size)}
    for index, edge in enumerate(edges):
        for endpoint in edge:
            incident[endpoint].append(index)

    vertices: list[tuple] = []            # descriptive labels
    colors: list = []
    index_of: dict[tuple, int] = {}

    def add(label: tuple, color) -> int:
        index_of[label] = len(vertices)
        vertices.append(label)
        colors.append(color)
        return index_of[label]

    # Two assignment vertices per base edge; both share the colour of the edge.
    for edge_index in range(len(edges)):
        add(("edge", edge_index, 0), ("edge", edge_index))
        add(("edge", edge_index, 1), ("edge", edge_index))

    # Vertex gadgets: one node per subset of incident edges of the right parity.
    for v in range(base_size):
        parity = 1 if v == twisted_vertex else 0
        incident_edges = incident[v]
        for r in range(len(incident_edges) + 1):
            if r % 2 != parity:
                continue
            for subset in combinations(incident_edges, r):
                add(("vertex", v, frozenset(subset)), ("vertex", v))

    graph_edges: list[tuple[int, int]] = []
    for label, index in index_of.items():
        if label[0] != "vertex":
            continue
        _, v, subset = label
        for edge_index in incident[v]:
            side = 1 if edge_index in subset else 0
            graph_edges.append((index, index_of[("edge", edge_index, side)]))

    return ColoredGraph.from_edges(len(vertices), graph_edges, colors)


def cfi_pair(base_edges: Iterable[tuple[int, int]] | None = None,
             base_size: int | None = None) -> CFIPair:
    """The CFI pair over the given undirected base graph (default: K4)."""
    if base_edges is None:
        base_edges = k4_base()
    base_edges = list(base_edges)
    if base_size is None:
        base_size = 1 + max(max(u, v) for u, v in base_edges)
    untwisted = _build_cfi(base_size, base_edges, twisted_vertex=None)
    twisted = _build_cfi(base_size, base_edges, twisted_vertex=0)
    return CFIPair(
        untwisted=untwisted,
        twisted=twisted,
        description=f"CFI companions of a base graph with {base_size} vertices "
                    f"and {len(base_edges)} edges",
    )


def cycle_pair(half_length: int) -> CFIPair:
    """``C_{2m}`` versus ``C_m + C_m`` — 1-WL-indistinguishable,
    connectivity-separable (the benchmarks' inexpensive stand-in)."""
    if half_length < 3:
        raise ValueError("half_length must be at least 3")
    m = half_length
    single = ColoredGraph.from_edges(
        2 * m, [(i, (i + 1) % (2 * m)) for i in range(2 * m)]
    )
    two_edges = [(i, (i + 1) % m) for i in range(m)]
    two_edges += [(m + i, m + ((i + 1) % m)) for i in range(m)]
    double = ColoredGraph.from_edges(2 * m, two_edges)
    return CFIPair(
        untwisted=single,
        twisted=double,
        description=f"C_{2 * m} versus two copies of C_{m}",
    )


def colored_graph_to_structure(graph: ColoredGraph) -> Structure:
    """View a coloured graph as a plain (symmetric) edge structure, suitable
    for feeding to SRL programs and the FO/LFP evaluator.  Colours are
    dropped; use a colour relation explicitly if a query needs them."""
    edges = set()
    for u, neighbours in enumerate(graph.adjacency):
        for v in neighbours:
            edges.add((u, v))
            edges.add((v, u))
    return Structure(Vocabulary.of(E=2), graph.size, {"E": frozenset(edges)})
