"""Changesets: ordered batches of single-fact updates to a structure.

This is the write side of the Dyn-FO story (Patnaik-Immerman): a
:class:`Changeset` is a sequence of single-tuple ``insert`` / ``delete``
operations, applied in order by :meth:`Structure.apply
<repro.structures.structure.Structure.apply>`.  ``apply`` returns the
*net* changeset — the facts whose membership actually changed end to
end — which is exactly the delta the incremental view maintenance layer
(:mod:`repro.logic.ivm`) pushes through compiled plans.

The JSON shape (the CLI's ``--updates`` file) is a list of operations::

    [{"op": "insert", "relation": "E", "row": [0, 5]},
     {"op": "delete", "relation": "E", "row": [1, 2]}]

``"+"`` and ``"-"`` are accepted as aliases for ``"insert"`` /
``"delete"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

__all__ = ["Change", "Changeset"]

_OP_ALIASES = {"insert": "insert", "+": "insert", "delete": "delete", "-": "delete"}


@dataclass(frozen=True)
class Change:
    """One single-fact update: insert or delete ``row`` in ``relation``.

    ``row`` components are universe ranks (ints); on an interned structure
    non-int components are labels, resolved — and for inserts, interned,
    growing the universe — at application time.
    """

    op: str
    relation: str
    row: tuple

    def __post_init__(self) -> None:
        canonical = _OP_ALIASES.get(self.op)
        if canonical is None:
            raise ValueError(
                f"unknown change op {self.op!r}: expected 'insert' or 'delete'"
            )
        object.__setattr__(self, "op", canonical)
        object.__setattr__(self, "row", tuple(self.row))

    def to_json(self) -> dict:
        return {"op": self.op, "relation": self.relation, "row": list(self.row)}


@dataclass(frozen=True)
class Changeset:
    """An ordered batch of :class:`Change` operations.

    Order matters while applying (an insert followed by a delete of the
    same fact nets out to nothing), but the *net* changeset ``apply``
    hands back is order-free: per relation, its inserts and deletes are
    disjoint.
    """

    changes: tuple[Change, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "changes", tuple(self.changes))

    # ------------------------------------------------------------ building

    @classmethod
    def inserting(cls, relation: str, *rows: Sequence[Hashable]) -> "Changeset":
        return cls(tuple(Change("insert", relation, tuple(row)) for row in rows))

    @classmethod
    def deleting(cls, relation: str, *rows: Sequence[Hashable]) -> "Changeset":
        return cls(tuple(Change("delete", relation, tuple(row)) for row in rows))

    def __add__(self, other: "Changeset") -> "Changeset":
        if not isinstance(other, Changeset):
            return NotImplemented
        return Changeset(self.changes + other.changes)

    # ------------------------------------------------------------- protocol

    def __iter__(self) -> Iterator[Change]:
        return iter(self.changes)

    def __len__(self) -> int:
        return len(self.changes)

    def __bool__(self) -> bool:
        return bool(self.changes)

    # ----------------------------------------------------------- summaries

    def relations(self) -> frozenset[str]:
        """Every relation symbol this changeset touches."""
        return frozenset(change.relation for change in self.changes)

    def by_op(self) -> tuple[dict[str, frozenset], dict[str, frozenset]]:
        """``(inserted, deleted)`` as per-relation row sets.

        Meaningful on a *net* changeset (the return value of
        ``Structure.apply``), where each fact appears at most once.
        """
        inserted: dict[str, set] = {}
        deleted: dict[str, set] = {}
        for change in self.changes:
            bucket = inserted if change.op == "insert" else deleted
            bucket.setdefault(change.relation, set()).add(change.row)
        return (
            {name: frozenset(rows) for name, rows in inserted.items()},
            {name: frozenset(rows) for name, rows in deleted.items()},
        )

    # ---------------------------------------------------------------- JSON

    @classmethod
    def from_json(cls, data: Iterable) -> "Changeset":
        """Parse the CLI's ``--updates`` JSON shape (module docstring)."""
        changes = []
        for index, item in enumerate(data):
            if isinstance(item, Mapping):
                try:
                    op, relation, row = item["op"], item["relation"], item["row"]
                except KeyError as missing:
                    raise ValueError(
                        f"update {index}: missing key {missing}"
                    ) from None
            elif isinstance(item, Sequence) and not isinstance(item, str) \
                    and len(item) == 3:
                op, relation, row = item
            else:
                raise ValueError(
                    f"update {index}: expected an object with op/relation/row "
                    f"(or an [op, relation, row] triple), got {item!r}"
                )
            if not isinstance(row, Sequence) or isinstance(row, str):
                raise ValueError(f"update {index}: row must be an array, got {row!r}")
            changes.append(Change(op, relation, tuple(row)))
        return cls(tuple(changes))

    def to_json(self) -> list[dict]:
        return [change.to_json() for change in self.changes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inserts = sum(1 for c in self.changes if c.op == "insert")
        return (f"Changeset({len(self.changes)} changes: "
                f"+{inserts}/-{len(self.changes) - inserts})")
