"""Weisfeiler–Leman colour refinement (1-WL and 2-WL).

Section 7 / Theorem 7.7 of the paper rests on structures that agree on all
``(FO(wo<=) + count)`` sentences with a bounded number of variables.  The
textbook correspondence is that equivalence in counting logic with ``k+1``
variables coincides with indistinguishability under ``k``-dimensional
Weisfeiler–Leman refinement, so WL is the practical stand-in we use to test
"a bounded-variable counting logic cannot tell these apart" (see DESIGN.md's
substitution notes).

The module also contains a colour-aware graph-isomorphism backtracking
search, used by the tests to confirm that WL-equivalent pairs really are
non-isomorphic (feasible at the small sizes the experiments use).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

from .structure import Structure

__all__ = [
    "ColoredGraph",
    "color_refinement",
    "wl1_indistinguishable",
    "wl2_signature",
    "wl2_indistinguishable",
    "find_isomorphism",
    "are_isomorphic",
]


@dataclass
class ColoredGraph:
    """An undirected vertex-coloured graph.

    ``adjacency[v]`` is the set of neighbours of ``v``; ``colors[v]`` is an
    arbitrary hashable initial colour (vertex class).
    """

    size: int
    adjacency: list[set[int]]
    colors: list

    @classmethod
    def from_edges(cls, size: int, edges: Sequence[tuple[int, int]],
                   colors: Sequence | None = None) -> "ColoredGraph":
        adjacency: list[set[int]] = [set() for _ in range(size)]
        for u, v in edges:
            adjacency[u].add(v)
            adjacency[v].add(u)
        return cls(size, adjacency, list(colors) if colors is not None else [0] * size)

    @classmethod
    def from_structure(cls, structure: Structure, edge_relation: str = "E",
                       colors: Sequence | None = None) -> "ColoredGraph":
        edges = [(u, v) for u, v in structure.relation(edge_relation)]
        return cls.from_edges(structure.size, edges, colors)

    def degree_sequence(self) -> list[int]:
        return sorted(len(neighbours) for neighbours in self.adjacency)


# ------------------------------------------------------------------ 1-WL


def color_refinement(graph: ColoredGraph, rounds: int | None = None) -> list[int]:
    """Run 1-WL colour refinement to stabilisation (or ``rounds`` rounds).

    Returns the final colour of every vertex; colours are canonical integers,
    comparable *across* graphs refined by this function in the same process
    only through :func:`wl1_indistinguishable`, which refines both graphs
    together.
    """
    colors = list(graph.colors)
    limit = rounds if rounds is not None else graph.size
    for _ in range(max(limit, 1)):
        signatures = [
            (colors[v], tuple(sorted(Counter(colors[u] for u in graph.adjacency[v]).items())))
            for v in range(graph.size)
        ]
        palette = {signature: index for index, signature in enumerate(sorted(set(signatures)))}
        new_colors = [palette[signature] for signature in signatures]
        if new_colors == colors:
            break
        colors = new_colors
    return colors


def wl1_indistinguishable(left: ColoredGraph, right: ColoredGraph) -> bool:
    """True when 1-WL cannot tell the two graphs apart (same stable colour
    histogram).  The graphs are refined jointly so colour names align."""
    if left.size != right.size:
        return False
    offset = left.size
    merged = ColoredGraph(
        left.size + right.size,
        [set(neighbours) for neighbours in left.adjacency]
        + [{u + offset for u in neighbours} for neighbours in right.adjacency],
        list(left.colors) + list(right.colors),
    )
    colors = color_refinement(merged)
    left_histogram = Counter(colors[:offset])
    right_histogram = Counter(colors[offset:])
    return left_histogram == right_histogram


# ------------------------------------------------------------------ 2-WL


def wl2_signature(graph: ColoredGraph, rounds: int | None = None) -> Counter:
    """The stable colour histogram of 2-WL (pairs refinement).

    Pair ``(u, v)`` starts with colour (colour(u), colour(v), edge?) and is
    refined by the multiset of colour pairs ``((u,w), (w,v))`` over all
    ``w``.  Quadratic in the number of pairs, cubic per round — fine for the
    experiment sizes.
    """
    n = graph.size
    adjacency = graph.adjacency

    def base_color(u: int, v: int):
        kind = "loop" if u == v else ("edge" if v in adjacency[u] else "non-edge")
        return (graph.colors[u], graph.colors[v], kind)

    colors = {(u, v): base_color(u, v) for u in range(n) for v in range(n)}
    limit = rounds if rounds is not None else n * n
    for _ in range(max(limit, 1)):
        signatures = {}
        for (u, v), color in colors.items():
            neighbourhood = Counter((colors[(u, w)], colors[(w, v)]) for w in range(n))
            signatures[(u, v)] = (color, tuple(sorted(neighbourhood.items())))
        palette = {signature: index
                   for index, signature in enumerate(sorted(set(signatures.values())))}
        new_colors = {pair: palette[signature] for pair, signature in signatures.items()}
        if new_colors == colors:
            break
        colors = new_colors
    return Counter(colors.values())


def wl2_indistinguishable(left: ColoredGraph, right: ColoredGraph,
                          rounds: int | None = None) -> bool:
    """True when 2-WL produces the same stable colour histogram.

    As with 1-WL the graphs are refined jointly (as one disjoint union) so
    that colour identities are shared.
    """
    if left.size != right.size:
        return False
    offset = left.size
    merged = ColoredGraph(
        left.size + right.size,
        [set(neighbours) for neighbours in left.adjacency]
        + [{u + offset for u in neighbours} for neighbours in right.adjacency],
        list(left.colors) + list(right.colors),
    )
    n = merged.size
    adjacency = merged.adjacency

    def base_color(u: int, v: int):
        kind = "loop" if u == v else ("edge" if v in adjacency[u] else "non-edge")
        return (merged.colors[u], merged.colors[v], kind)

    colors = {(u, v): base_color(u, v) for u in range(n) for v in range(n)}
    limit = rounds if rounds is not None else n
    for _ in range(max(limit, 1)):
        signatures = {}
        for (u, v), color in colors.items():
            neighbourhood = Counter((colors[(u, w)], colors[(w, v)]) for w in range(n))
            signatures[(u, v)] = (color, tuple(sorted(neighbourhood.items())))
        palette = {signature: index
                   for index, signature in enumerate(sorted(set(signatures.values())))}
        new_colors = {pair: palette[signature] for pair, signature in signatures.items()}
        if new_colors == colors:
            break
        colors = new_colors

    left_histogram = Counter(
        colors[(u, v)] for u in range(offset) for v in range(offset)
    )
    right_histogram = Counter(
        colors[(u, v)] for u in range(offset, n) for v in range(offset, n)
    )
    return left_histogram == right_histogram


# ------------------------------------------------------- isomorphism search


def find_isomorphism(left: ColoredGraph, right: ColoredGraph) -> Optional[list[int]]:
    """A colour-pruned backtracking isomorphism search.

    Returns a vertex mapping (``mapping[u]`` in the right graph corresponds
    to ``u`` in the left graph) or ``None``.  Intended for the small
    instances used in tests and benchmarks; WL colours are used to prune the
    search space aggressively.
    """
    if left.size != right.size:
        return None
    if sorted(map(len, left.adjacency)) != sorted(map(len, right.adjacency)):
        return None

    left_colors = color_refinement(
        ColoredGraph(left.size, left.adjacency, list(left.colors))
    )
    # A valid mapping can only send a vertex to one with an identical initial
    # colour.  Individual refined colours are graph-local, so candidates are
    # keyed on (initial colour, degree) and the left graph's refined colours
    # serve only to order the search.
    if Counter(left.colors) != Counter(right.colors):
        return None

    order = sorted(range(left.size), key=lambda v: (left_colors[v], -len(left.adjacency[v])))
    mapping: list[Optional[int]] = [None] * left.size
    used = [False] * right.size

    def compatible(u: int, v: int) -> bool:
        if left.colors[u] != right.colors[v]:
            return False
        if len(left.adjacency[u]) != len(right.adjacency[v]):
            return False
        for w in range(left.size):
            image = mapping[w]
            if image is None:
                continue
            if (w in left.adjacency[u]) != (image in right.adjacency[v]):
                return False
        return True

    def backtrack(position: int) -> bool:
        if position == len(order):
            return True
        u = order[position]
        for v in range(right.size):
            if used[v] or not compatible(u, v):
                continue
            mapping[u] = v
            used[v] = True
            if backtrack(position + 1):
                return True
            mapping[u] = None
            used[v] = False
        return False

    if backtrack(0):
        return [m for m in mapping if m is not None] if None not in mapping else None
    return None


def are_isomorphic(left: ColoredGraph, right: ColoredGraph) -> bool:
    """True when the two coloured graphs are isomorphic."""
    return find_isomorphism(left, right) is not None
