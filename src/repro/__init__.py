"""repro — a reproduction of *The Expressiveness of a Family of Finite Set
Languages* (Immerman, Patnaik, Stemple; PODS 1991 / TCS 155, 1996).

The package implements the paper's set-reduce language (SRL) family and the
substrates its expressiveness results rest on:

``repro.core``
    The SRL language: AST, parser, type checker, instrumented evaluator,
    the Fact 2.4 standard library, the syntactic restrictions (SRL, BASRL,
    SRFO+TC, SRFO+DTC, SRL+new, LRL), Section 6 complexity-from-syntax
    analysis, Section 7 order-independence tools and the Machiavelli ``hom``
    operator.

``repro.structures``
    Finite logical structures / relational databases, graph generators,
    Cai-Fürer-Immerman pairs and Weisfeiler-Leman colour refinement.

``repro.logic``
    First-order logic over finite structures with LFP, TC, DTC and counting
    quantifiers, plus first-order interpretations (reductions).

``repro.machines``
    Deterministic Turing machines and the Proposition 6.2 compiler from
    linear-time machines into SRL expressions.

``repro.primrec``
    Primitive recursive functions and the Theorem 5.2 translations between
    PrimRec and SRL + new.

``repro.queries``
    The concrete programs of the paper (AGAP, transitive closure, BASRL
    arithmetic, iterated permutation multiplication, powerset, EVEN, ...)
    together with direct Python baselines.

``repro.complexity``
    The complexity-class landscape: the Figure 1 containment lattice and the
    SRL_h / DTIME(2_h#n) hierarchy.

Quick start
-----------
>>> from repro.core import parse_program, run_program
>>> program = parse_program('''
... (define (flip x) (if x false true))
... (flip true)
... ''')
>>> run_program(program)
False
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
