"""``python -m repro`` — run an SRL source file, or a logic query, through
the full pipeline.

The default form drives the same :class:`~repro.core.engine.Session`
facade the rest of the repo uses: parse the program, type-check it,
classify it against the paper's syntactic restrictions, execute it on the
selected backend, and print the result together with the engine's
:class:`EvaluationStats`.

Usage::

    python -m repro program.srl [--db database.json] [--backend compiled]
                                [--no-stdlib] [--max-steps N] [--quiet]

The database file is a JSON object mapping input names to values: ``true``
/ ``false`` are booleans, bare integers are atom ranks, an untagged array
is a *set* whose untagged array elements are *tuples* (so a binary relation
is just ``"EDGES": [[0, 1], [1, 2]]``), and deeper nesting uses the tagged
forms ``{"atom": r}``, ``{"nat": n}``, ``{"set": [...]}``,
``{"tuple": [...]}`` and ``{"list": [...]}``.

The ``logic`` subcommand evaluates one of the canonical FO(+TC/DTC/LFP)
queries of :data:`repro.logic.queries.CANONICAL_QUERIES` over a
JSON-encoded finite structure and prints the defined relation::

    python -m repro logic tc --structure graph.json
                             [--backend plan|columnar|tuple]
                             [--explain] [--list]

The structure file uses the same JSON shape as the database file (the
relation names become the structure's relations; a set ``"D"`` of atoms,
when present, fixes the universe size — exactly what
:func:`repro.structures.structure.from_database` reads).  A binary
snapshot file (magic ``RSNP``, any extension — ``.snap`` by convention)
is detected by its leading bytes and loaded through
:func:`repro.structures.snapshot.load_structure` instead: relations stay
in their packed mmap views, so million-edge structures open in
milliseconds without materializing tuple sets.

The ``snapshot`` subcommand builds and inspects those files::

    python -m repro snapshot build out.snap --zoo clustered clusters=8000
    python -m repro snapshot build out.snap --edges edges.json [--size N]
    python -m repro snapshot build out.snap --structure graph.json
    python -m repro snapshot info out.snap

The ``serve`` subcommand starts the long-lived query service (resident
structures, supervised worker pool, HTTP/JSON endpoints — see
``repro.service``)::

    python -m repro serve --load g=graph.snap [--port 8377] [--workers 2]

Long-running subcommands exit cleanly on SIGINT/SIGTERM: the first
signal cancels the evaluation cooperatively (exit code 3, partial stats
on stderr), a second one falls back to the blunt default.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import (
    BACKENDS,
    Database,
    EvaluationLimits,
    Session,
    parse_program,
    with_standard_library,
)
from repro.core.engine import database_from_json
from repro.core.errors import (
    InvalidDatabaseError,
    ResourceLimitExceeded,
    RestrictionViolation,
    SRLError,
    SRLNameError,
    SRLSyntaxError,
    SRLTypeError,
)
from repro.core.governor import Budget, CancelToken, cancel_on_signals
from repro.core.restrictions import strictest_restriction
from repro.core.typecheck import check_program, database_types
from repro.core.values import format_value

#: The CLI's exit-code taxonomy (documented in README):
#: 2 — the input is at fault (parse / type / restriction errors, malformed
#:     database or structure JSON, unreadable files, usage errors);
#: 3 — a resource budget stopped the run (deadline, --max-rows, cancel):
#:     the query may well succeed with a bigger budget;
#: 4 — the engine is at fault (runtime/internal errors).
EXIT_INPUT = 2
EXIT_RESOURCE = 3
EXIT_INTERNAL = 4

_INPUT_ERRORS = (SRLSyntaxError, SRLTypeError, SRLNameError,
                 RestrictionViolation, InvalidDatabaseError,
                 OSError, json.JSONDecodeError)


def _report(error: Exception) -> int:
    """Print ``error`` and pick the exit code for its failure class."""
    if isinstance(error, ResourceLimitExceeded):
        print(f"error: resource limit exceeded: {error}", file=sys.stderr)
        stats = getattr(error, "stats", None)
        if stats is not None:
            print("partial stats: " + ", ".join(
                f"{key}={count}" for key, count in stats.as_dict().items()
            ), file=sys.stderr)
        return EXIT_RESOURCE
    print(f"error: {error}", file=sys.stderr)
    if isinstance(error, _INPUT_ERRORS):
        return EXIT_INPUT
    return EXIT_INTERNAL


def _build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parse, type-check, restriction-check and run an SRL program.",
        epilog="Subcommands: 'python -m repro logic <query> --structure s' "
               "evaluates a canonical FO(+TC/DTC/LFP) query over a JSON or "
               "snapshot structure; 'python -m repro snapshot build/info' "
               "manages binary snapshots (see each subcommand's --help); a "
               "program file literally named 'logic' or 'snapshot' can be "
               "run as './logic'.",
    )
    parser.add_argument("program", type=Path,
                        help="SRL source file (s-expression syntax)")
    parser.add_argument("--db", type=Path, default=None,
                        help="JSON database file supplying the input sets/relations")
    parser.add_argument("--backend", choices=BACKENDS, default="compiled",
                        help="execution backend (default: compiled)")
    parser.add_argument("--no-stdlib", action="store_true",
                        help="do not add the Fact 2.4 standard library definitions")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="abort after this many evaluation steps")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="abort the run after this much wall-clock time "
                             "(exit code 3)")
    parser.add_argument("--skip-checks", action="store_true",
                        help="skip the type and restriction checks, just run")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the result value")
    return parser


def _build_logic_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro logic",
        description="Evaluate a canonical FO(+TC/DTC/LFP) query over a "
                    "JSON-encoded finite structure.",
    )
    parser.add_argument("query", nargs="?", default=None,
                        help="query name from repro.logic.queries."
                             "CANONICAL_QUERIES (see --list)")
    parser.add_argument("--structure", type=Path, default=None,
                        help="structure file: JSON (database shape: relation "
                             "name -> array of tuples, optional domain 'D') "
                             "or a binary snapshot ('snapshot build'), "
                             "detected by its RSNP magic")
    parser.add_argument("--backend", choices=("plan", "columnar", "tuple"),
                        default="plan",
                        help="logic evaluation strategy (default: plan — the "
                             "set-at-a-time relational planner; columnar "
                             "lowers each plan to bitset/CSR kernel code; "
                             "tuple is the enumeration oracle)")
    parser.add_argument("--no-optimize", action="store_true",
                        help="execute the raw compiled plan, skipping the "
                             "rewrite pipeline of repro.logic.optimize (the "
                             "plan optimizer's differential oracle)")
    parser.add_argument("--explain", action="store_true",
                        help="also print the formula and its compiled plan "
                             "(with the optimizer on: the logical plan next "
                             "to the optimized plan, annotated with "
                             "estimated cardinalities)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="abort the query after this much wall-clock time "
                             "(exit code 3)")
    parser.add_argument("--max-rows", type=int, default=None, metavar="N",
                        help="abort once the plan backend has materialized "
                             "more than N rows (exit code 3)")
    parser.add_argument("--max-bytes", type=int, default=None, metavar="N",
                        help="abort once the packed working set of the "
                             "big-n columnar backend exceeds N resident "
                             "bytes (exit code 3)")
    parser.add_argument("--stats", action="store_true",
                        help="also print the plan execution counters (rows "
                             "materialized, index probes, fixpoint rounds, "
                             "peak resident rows/bytes) and any degradation "
                             "events (e.g. a columnar universe-cap fallback)")
    parser.add_argument("--updates", type=Path, default=None, metavar="FILE",
                        help="JSON update sequence (a list of {op, relation, "
                             "row} objects, op one of insert/delete/+/-): "
                             "evaluate the query, apply the updates with "
                             "incremental view maintenance, and report the "
                             "maintained relation")
    parser.add_argument("--list", action="store_true",
                        help="list the available queries and exit")
    return parser


def _load_structure_file(path: Path):
    """A structure from either encoding: binary snapshots are recognized
    by their leading ``RSNP`` magic, anything else parses as the JSON
    database shape (shared with the query-service workers)."""
    from repro.structures.structure import load_structure_file

    return load_structure_file(path)


def logic_main(argv: list[str]) -> int:
    from repro.logic.plan import PlanStats
    from repro.logic.queries import CANONICAL_QUERIES

    args = _build_logic_argument_parser().parse_args(argv)

    if args.list:
        width = max(len(name) for name in CANONICAL_QUERIES)
        for name, query in sorted(CANONICAL_QUERIES.items()):
            layout = ", ".join(query.variables) if query.variables else "sentence"
            print(f"{name:<{width}}  ({layout})  {query.description}")
        return 0

    if args.query is None:
        print("error: a query name is required (try --list)", file=sys.stderr)
        return EXIT_INPUT
    query = CANONICAL_QUERIES.get(args.query)
    if query is None:
        print(f"error: unknown query {args.query!r}; known: "
              f"{', '.join(sorted(CANONICAL_QUERIES))}", file=sys.stderr)
        return EXIT_INPUT
    if args.structure is None:
        print("error: --structure structure.json is required", file=sys.stderr)
        return EXIT_INPUT

    optimize = not args.no_optimize
    # The counters are plan-execution counters; the tuple oracle never
    # touches them, so --stats would print misleading zeros there.  They
    # are always *collected* on the plan backend, so a run stopped by the
    # budget can report its partial progress.
    stats = PlanStats() if args.backend in ("plan", "columnar") else None
    if args.stats and stats is None:
        print("warning: --stats counts plan executions; the tuple backend "
              "records nothing", file=sys.stderr)
    # Ctrl-C / SIGTERM land as cooperative cancellation: the governor
    # raises EvaluationCancelled at its next checkpoint, which _report
    # turns into exit 3 with the partial stats — not a KeyboardInterrupt
    # traceback.  A second signal falls back to the blunt default.
    token = CancelToken()
    budget = Budget(deadline_seconds=args.timeout,
                    max_rows_materialized=args.max_rows,
                    max_bytes_resident=args.max_bytes,
                    cancel_token=token)
    degradations: list = []
    with cancel_on_signals(token):
        return _logic_run(args, query, optimize, stats, budget, degradations)


def _logic_run(args, query, optimize, stats, budget,
               degradations: list) -> int:
    from repro.logic.compile import PlanCompilationError, explain
    from repro.logic.eval import define_relation
    from repro.logic.optimize import explain_optimized

    try:
        structure = _load_structure_file(args.structure)
        formula = query.formula()
        if args.explain:
            if args.backend in ("plan", "columnar") and optimize:
                print(explain_optimized(formula, structure, query.variables))
            else:
                print(explain(formula, query.variables))
        ivm_summary = None
        net = None
        if args.updates is not None:
            from repro.logic.eval import ModelChecker
            from repro.structures.changeset import Changeset

            updates = Changeset.from_json(
                json.loads(args.updates.read_text()))
            checker = ModelChecker(structure, backend=args.backend,
                                   optimize=optimize, budget=budget)
            if stats is not None:
                checker.plan_stats = stats
            checker.defined_relation(formula)
            net = checker.apply_update(updates)
            columns, rows = checker.defined_relation(formula)
            if query.variables:
                positions = [columns.index(v) for v in query.variables]
                relation = frozenset(tuple(row[p] for p in positions)
                                     for row in rows)
            else:
                relation = rows
            ivm_summary = dict(checker.ivm_stats)
            degradations.extend(checker.degradations)
        else:
            relation = define_relation(formula, structure, query.variables,
                                       backend=args.backend,
                                       optimize=optimize,
                                       stats=stats, budget=budget,
                                       degradations=degradations)
    except PlanCompilationError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_INPUT
    except (SRLError, OSError, json.JSONDecodeError, ValueError) as error:
        return _report(error)

    strategy = args.backend if args.backend == "tuple" else \
        (args.backend if optimize else f"{args.backend}, unoptimized")
    if degradations:
        ladder = ", ".join(f"{event.stage}->{event.fallback}"
                           for event in degradations)
        print(f"note: degraded mid-run ({ladder}); the result is exact but "
              "came from a slower backend (--stats shows the causes)",
              file=sys.stderr)
    print(f"query:       {args.query} over n = {structure.size} "
          f"({strategy} backend)")
    if ivm_summary is not None:
        inserts = sum(1 for change in net if change.op == "insert")
        maintained = ", ".join(f"{name}={count}" for name, count
                               in sorted(ivm_summary.items()))
        print(f"updates:     {len(net)} net changes "
              f"(+{inserts}/-{len(net) - inserts}); "
              f"maintenance: {maintained or 'no memo touched'}")
    if args.stats and stats is not None:
        print("stats:       " + ", ".join(
            f"{key}={count}" for key, count in stats.as_dict().items()
        ))
        meta = structure.stats()
        print(f"structure:   size={meta['size']}, "
              f"intern_entries={meta['intern_entries']}, "
              f"interned={meta['interned']}")
        if args.backend == "columnar":
            from repro.logic.codegen import last_report, representation_of
            reps = ", ".join(
                f"{name}={representation_of(structure.vocabulary.arity(name))}"
                for name in sorted(structure.relations))
            print(f"columnar:    {reps or 'no relations'}")
            report = last_report()
            if report is not None:
                kinds = ", ".join(f"{kind}={count}" for kind, count
                                  in report["representations"].items() if count)
                print(f"codegen:     universe={report['universe']}, "
                      f"{kinds or 'no scans'}")
                if report["tuple_fallbacks"]:
                    print("fallbacks:   "
                          + ", ".join(report["tuple_fallbacks"]))
    if args.stats:
        for event in degradations:
            print(f"degraded:    {event.stage} -> {event.fallback} "
                  f"({event.error})")
    if not query.variables:
        print(f"result:      {() in relation}")
        return 0
    print(f"columns:     ({', '.join(query.variables)})")
    print(f"rows:        {len(relation)}")
    for row in sorted(relation):
        print("  " + " ".join(str(value) for value in row))
    return 0


def _build_snapshot_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro snapshot",
        description="Build and inspect binary structure snapshots "
                    "(packed bitset/CSR relations, mmap-loadable).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    build = commands.add_parser(
        "build", help="stream a graph into a snapshot file")
    build.add_argument("output", type=Path, help="snapshot file to write")
    source = build.add_mutually_exclusive_group(required=True)
    source.add_argument("--edges", type=Path, metavar="FILE",
                        help="JSON array of [u, v] pairs (ranks with "
                             "--size, otherwise labels interned in "
                             "first-occurrence order)")
    source.add_argument("--structure", type=Path, metavar="FILE",
                        help="JSON structure file (database shape) to "
                             "convert wholesale")
    source.add_argument("--zoo", nargs="+", metavar="FAMILY|KEY=VALUE",
                        help="generate from repro.structures.zoo: a family "
                             "name then key=value parameters, e.g. "
                             "'--zoo clustered clusters=8000 seed=1'")
    build.add_argument("--size", type=int, default=None, metavar="N",
                       help="universe size for --edges (components are "
                            "then ranks in 0..N-1)")
    build.add_argument("--relation", default="E", metavar="NAME",
                       help="relation name for --edges/--zoo (default: E)")
    info = commands.add_parser("info", help="print a snapshot's header")
    info.add_argument("snapshot", type=Path, help="snapshot file to inspect")
    return parser


def _zoo_stream(spec: list[str]):
    """``['clustered', 'clusters=8000']`` -> the family's ``(edge stream,
    universe size)``; raises ``ValueError`` on unknown families/keys."""
    from repro.structures.zoo import ZOO

    family = ZOO.get(spec[0])
    if family is None:
        raise ValueError(f"unknown zoo family {spec[0]!r}; known: "
                         f"{', '.join(sorted(ZOO))}")
    parameters = {}
    for item in spec[1:]:
        key, separator, raw = item.partition("=")
        if not separator:
            raise ValueError(f"zoo parameter {item!r} is not KEY=VALUE")
        parameters[key] = float(raw) if key == "probability" else int(raw)
    try:
        return family(**parameters)
    except TypeError as error:
        raise ValueError(f"bad parameters for zoo family {spec[0]!r}: "
                         f"{error}") from error


def _cancellable_stream(stream, token: CancelToken, every: int = 4096):
    """Yield ``stream``'s edges, checking the cancel token every ``every``
    edges — the choke point that lets Ctrl-C stop a million-edge
    ``snapshot build`` as a typed exit-3 instead of a traceback."""
    from repro.core.errors import EvaluationCancelled

    countdown = every
    for edge in stream:
        countdown -= 1
        if countdown <= 0:
            countdown = every
            if token.cancelled:
                raise EvaluationCancelled()
        yield edge
    if token.cancelled:
        raise EvaluationCancelled()


def snapshot_main(argv: list[str]) -> int:
    from repro.structures.snapshot import (
        build_snapshot,
        load_snapshot,
        save_snapshot,
    )

    args = _build_snapshot_argument_parser().parse_args(argv)
    token = CancelToken()
    try:
        if args.command == "info":
            with load_snapshot(args.snapshot) as snapshot:
                print(json.dumps(snapshot.info(), indent=2, default=str))
            return 0
        with cancel_on_signals(token):
            if args.zoo is not None:
                stream, size = _zoo_stream(args.zoo)
                header = build_snapshot(
                    _cancellable_stream(stream, token), args.output,
                    relation=args.relation, size=size)
            elif args.edges is not None:
                pairs = json.loads(args.edges.read_text())
                header = build_snapshot(
                    _cancellable_stream(pairs, token), args.output,
                    relation=args.relation, size=args.size)
            else:
                structure = _load_structure_file(args.structure)
                header = save_snapshot(structure, args.output)
        rows = sum(entry["rows"]
                   for entry in header.get("relations", {}).values())
        print(f"wrote {args.output}: n = {header['size']}, "
              f"{rows} rows across "
              f"{len(header.get('relations', {}))} relation(s)")
        return 0
    except (SRLError, OSError, json.JSONDecodeError) as error:
        return _report(error)
    except ValueError as error:
        # Bad zoo/edge parameters are the caller's fault, not the engine's.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_INPUT


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "logic":
        return logic_main(argv[1:])
    if argv and argv[0] == "snapshot":
        return snapshot_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.server import serve_main

        return serve_main(argv[1:])
    args = _build_argument_parser().parse_args(argv)

    try:
        source = args.program.read_text()
    except OSError as error:
        print(f"error: cannot read {args.program}: {error}", file=sys.stderr)
        return EXIT_INPUT

    try:
        database = Database()
        if args.db is not None:
            database = database_from_json(json.loads(args.db.read_text()))
        program = parse_program(source)
        if not args.no_stdlib:
            with_standard_library(program)
        if program.main is None:
            print("error: the program has no main expression to run", file=sys.stderr)
            return EXIT_INPUT

        if not args.skip_checks:
            types = database_types(database)
            report = check_program(program, input_types=types)
            restriction = strictest_restriction(program, types)
            if not args.quiet:
                print(f"type:        {report.result_type}")
                print(f"restriction: {restriction.name} "
                      f"({restriction.complexity_class}, {restriction.paper_reference})")

        limits = EvaluationLimits(max_steps=args.max_steps) \
            if args.max_steps is not None else None
        token = CancelToken()
        budget = Budget(deadline_seconds=args.timeout, cancel_token=token)
        session = Session(program, limits=limits, backend=args.backend,
                          budget=budget)
        with cancel_on_signals(token):
            value = session.run(database)
    except (SRLError, OSError, json.JSONDecodeError) as error:
        return _report(error)

    if args.quiet:
        print(format_value(value))
        return 0
    print(f"backend:     {args.backend}")
    print(f"result:      {format_value(value)}")
    print("stats:       " + ", ".join(
        f"{key}={count}" for key, count in session.stats.as_dict().items()
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
