"""Length-prefixed JSON frames: the wire protocol of the query service.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The same framing runs in two places:

* server <-> worker, over the worker's stdin/stdout pipes (the server
  writes requests to the worker's stdin and reads replies from its
  stdout; a worker that dies shows up as EOF on the reply side);
* optionally client <-> server, for callers that prefer the raw socket
  protocol to HTTP (the HTTP front end speaks the same JSON bodies).

Everything that can go wrong on the wire — EOF mid-frame, an implausible
length prefix, a body that is not valid JSON — raises
:class:`~repro.core.errors.ProtocolError`.  A clean EOF *between* frames
returns ``None`` from :func:`read_frame`: that is how a worker's death,
or a client hanging up, is distinguished from a torn message.

:class:`FrameStream` wraps a raw file descriptor with its own buffer so
reads can carry a deadline (``select`` + ``os.read``; Python's buffered
readers cannot safely mix with ``select``).  The writer side runs the
``service.net.drop`` chaos point, which can drop or truncate a frame —
the reader must then see a clean :class:`ProtocolError`/EOF, never a
half-parsed message.
"""

from __future__ import annotations

import json
import os
import select

from repro.core.errors import ProtocolError
from repro.testing.chaos import chaos_point

__all__ = ["FrameStream", "MAX_FRAME_BYTES", "read_frame", "write_frame"]

#: Refuse frames past this size: a garbled length prefix must not make
#: the reader try to allocate gigabytes before noticing.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def encode_frame(message: dict) -> bytes:
    """One frame's bytes: length prefix + JSON payload.  The
    ``service.net.drop`` chaos point runs here — ``raise`` drops the
    frame (a :class:`ProtocolError` the sender handles as a dead
    connection), ``corrupt`` truncates it mid-payload."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    frame = len(payload).to_bytes(4, "big") + payload
    try:
        return chaos_point("service.net.drop", frame,
                           corrupt=lambda data: data[:max(5, len(data) // 2)])
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError(f"frame dropped in transit: {error}") from error


def write_frame(stream, message: dict) -> None:
    """Write one frame to a binary file-like object and flush it."""
    stream.write(encode_frame(message))
    stream.flush()


def read_frame(stream) -> dict | None:
    """Read one frame from a binary file-like object.

    Returns ``None`` on clean EOF (no bytes at all); raises
    :class:`ProtocolError` on a torn frame or malformed payload.
    """
    prefix = stream.read(4)
    if not prefix:
        return None
    if len(prefix) < 4:
        raise ProtocolError(
            f"stream ended inside a frame length prefix ({len(prefix)} of "
            f"4 bytes)")
    return _decode_body(stream.read(int.from_bytes(prefix, "big")),
                        int.from_bytes(prefix, "big"))


def _decode_body(payload: bytes, expected: int) -> dict:
    if expected > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix {expected} exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap (stream corrupt?)")
    if len(payload) < expected:
        raise ProtocolError(
            f"stream ended inside a frame payload ({len(payload)} of "
            f"{expected} bytes)")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") \
            from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}")
    return message


class FrameStream:
    """Frames over a raw read fd / write fd pair, with read deadlines.

    The pool talks to each worker through one of these: ``request`` fd is
    the worker's stdin (write side), ``reply`` fd its stdout (read side).
    Reads buffer internally and use ``select`` so a worker that hangs —
    as opposed to one that dies, which is immediate EOF — surfaces as
    :class:`TimeoutError` after the caller's deadline instead of blocking
    the dispatching thread forever.
    """

    def __init__(self, read_fd: int | None, write_fd: int | None):
        self._read_fd = read_fd
        self._write_fd = write_fd
        self._buffer = bytearray()

    # ------------------------------------------------------------- writing

    def send(self, message: dict) -> None:
        if self._write_fd is None:
            raise ProtocolError("stream is write-closed")
        data = encode_frame(message)
        try:
            while data:
                written = os.write(self._write_fd, data)
                data = data[written:]
        except (BrokenPipeError, OSError) as error:
            raise ProtocolError(f"cannot write frame: {error}") from error

    # ------------------------------------------------------------- reading

    def _fill(self, needed: int, deadline: float | None,
              clock) -> bool:
        """Grow the buffer to ``needed`` bytes.  Returns False on EOF
        before the first byte of this read; raises ``TimeoutError`` when
        the deadline passes with the fd silent."""
        while len(self._buffer) < needed:
            if deadline is not None:
                remaining = deadline - clock()
                if remaining <= 0:
                    raise TimeoutError("frame read deadline exceeded")
                ready, _, _ = select.select([self._read_fd], [], [],
                                            remaining)
                if not ready:
                    raise TimeoutError("frame read deadline exceeded")
            chunk = os.read(self._read_fd, 65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError(
                        f"stream ended inside a frame ({len(self._buffer)} "
                        f"of {needed} bytes)")
                return False
            self._buffer.extend(chunk)
        return True

    def receive(self, timeout: float | None = None) -> dict | None:
        """Read one frame; ``None`` on clean EOF, :class:`ProtocolError`
        on a torn frame, ``TimeoutError`` past ``timeout`` seconds."""
        import time

        if self._read_fd is None:
            raise ProtocolError("stream is read-closed")
        clock = time.monotonic
        deadline = None if timeout is None else clock() + timeout
        if not self._fill(4, deadline, clock):
            return None
        expected = int.from_bytes(self._buffer[:4], "big")
        if expected > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame length prefix {expected} exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap (stream corrupt?)")
        try:
            if not self._fill(4 + expected, deadline, clock):
                raise ProtocolError("stream ended inside a frame payload")
        except ProtocolError:
            raise
        body = bytes(self._buffer[4:4 + expected])
        del self._buffer[:4 + expected]
        return _decode_body(body, expected)

    def close(self) -> None:
        for fd in (self._read_fd, self._write_fd):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._read_fd = self._write_fd = None
