"""The query-service worker process (``python -m repro.service.worker``).

A worker is one OS process holding :class:`Structure`\\ s resident and
answering query frames over its stdin/stdout pipes.  It is deliberately
*stateless across requests* in everything but caches: the server may
kill it at any moment (and chaos tests do, with ``SIGKILL``), respawn
it, and replay an idempotent read elsewhere — so nothing a worker holds
is ever the only copy of anything.

Caching: evaluation goes through one :class:`ModelChecker` per
``(structure, backend, optimize, stats signature)``.  The checker's memo
*is* the compiled+optimized plan cache — plans (and their defined
relations) are keyed by the frozen formula, and the **stats signature**
(relation cardinalities + universe size, i.e. everything the cost-based
optimizer reads) is part of the checker key, so a structure whose
statistics change gets fresh plans instead of stale reorderings.

Protocol ops (see :mod:`repro.service.protocol` for framing):

=============  =========================================================
``ping``       liveness probe -> ``{ok, pid}``
``load``       ``{name, path}``: make a structure resident (JSON or RSNP
               snapshot, sniffed by magic) -> ``{ok, size}``
``query``      ``{structure, query, backend?, optimize?,
               deadline_seconds?, max_rows?}`` -> ``{ok, columns, rows}``
               / ``{ok, result}`` for sentences / ``{ok: false, error}``
``shutdown``   acknowledge, then exit 0
=============  =========================================================

Every reply carries the request's ``id`` so the supervisor can pair
replies with in-flight requests.  A ``query`` failure is a *typed* error
envelope — ``kind`` is ``input`` / ``resource`` / ``internal``, mirroring
the CLI's exit-code taxonomy — never a crash of the worker itself.  The
one deliberate exception: the ``service.worker.crash`` chaos point
escalates to ``os._exit`` to model the failure the supervisor exists
for.
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.errors import (
    ProtocolError,
    ResourceLimitExceeded,
    SRLError,
)
from repro.core.governor import Budget
from repro.logic.eval import LOGIC_BACKENDS, ModelChecker
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures.structure import Structure, load_structure_file
from repro.testing.chaos import ChaosError, chaos_point, install_policy_from_env

from .protocol import read_frame, write_frame

__all__ = ["Worker", "main", "stats_signature"]

#: The exit status of a chaos-injected hard crash (mirrors 128+SIGKILL,
#: what a real ``kill -9`` reports).
CRASH_EXIT = 137


def stats_signature(structure: Structure) -> tuple:
    """Everything the cost-based optimizer reads from a structure, as a
    hashable plan-cache key component: universe size plus per-relation
    cardinalities (and the persisted degree statistics, when present)."""
    degrees = getattr(structure, "degree_stats", None) or {}
    return (
        structure.size,
        tuple(sorted(
            (name, len(relation),
             tuple(sorted(degrees.get(name, {}).items())))
            for name, relation in structure.relations.items())),
    )


def error_envelope(error: Exception) -> dict:
    """The typed wire form of a query failure (the worker-side analogue
    of the CLI's exit-code taxonomy)."""
    if isinstance(error, ResourceLimitExceeded):
        envelope = {
            "type": type(error).__name__,
            "kind": "resource",
            "message": str(error),
            "resource": error.resource,
            "limit": error.limit,
            "used": error.used,
        }
        stats = getattr(error, "stats", None)
        if stats is not None:
            envelope["partial_stats"] = dict(stats.as_dict())
        return envelope
    from repro.logic.compile import PlanCompilationError

    if isinstance(error, (KeyError, ValueError, PlanCompilationError)) or \
            isinstance(error, SRLError):
        kind = "input" if isinstance(
            error, (KeyError, ValueError, PlanCompilationError)) else "internal"
        return {"type": type(error).__name__, "kind": kind,
                "message": str(error)}
    return {"type": type(error).__name__, "kind": "internal",
            "message": str(error)}


class Worker:
    """The in-process core of a worker: resident structures + checkers.

    Split from the pipe loop so tests can drive it directly (and so the
    server's ``workers=0`` inline mode reuses exactly this evaluation
    path, minus the process boundary).
    """

    def __init__(self) -> None:
        self.structures: dict[str, Structure] = {}
        self._checkers: dict[tuple, ModelChecker] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.stopped = False
        #: Inline-mode hook: a :class:`CancelToken` the server threads into
        #: the next query's budget (client disconnect -> cancellation).
        #: Meaningless across a process boundary, so the pipe loop never
        #: sets it.
        self.external_cancel = None

    # ------------------------------------------------------------ handlers

    def handle(self, request: dict) -> dict:
        op = request.get("op")
        reply_id = request.get("id")
        try:
            if op == "ping":
                return {"ok": True, "id": reply_id, "op": "ping",
                        "pid": os.getpid(),
                        "structures": sorted(self.structures)}
            if op == "load":
                return self._handle_load(request, reply_id)
            if op == "query":
                return self._handle_query(request, reply_id)
            if op == "shutdown":
                self.stopped = True
                return {"ok": True, "id": reply_id, "op": "shutdown"}
            raise ValueError(f"unknown op {op!r}")
        except ChaosError:
            raise
        except Exception as error:
            return {"ok": False, "id": reply_id,
                    "error": error_envelope(error)}

    def _handle_load(self, request: dict, reply_id) -> dict:
        name = request["name"]
        structure = load_structure_file(request["path"])
        self.structures[name] = structure
        # A reload under the same name invalidates that name's checkers.
        self._checkers = {key: checker
                          for key, checker in self._checkers.items()
                          if key[0] != name}
        return {"ok": True, "id": reply_id, "op": "load", "name": name,
                "size": structure.size}

    def _checker_for(self, name: str, backend: str,
                     optimize: bool) -> ModelChecker:
        structure = self.structures.get(name)
        if structure is None:
            raise KeyError(f"structure {name!r} is not resident; loaded: "
                           f"{sorted(self.structures) or 'none'}")
        key = (name, backend, optimize, stats_signature(structure))
        checker = self._checkers.get(key)
        if checker is None:
            # New stats signature: drop this (name, backend) slot's stale
            # checker (and its plans, optimized against dead statistics).
            self._checkers = {
                existing: value
                for existing, value in self._checkers.items()
                if existing[:3] != (name, backend, optimize)}
            checker = ModelChecker(structure, backend=backend,
                                   optimize=optimize)
            self._checkers[key] = checker
        return checker

    def _handle_query(self, request: dict, reply_id) -> dict:
        started = time.perf_counter()
        # The supervised-crash injection point: a raise here is escalated
        # to process death by the pipe loop (or re-raised to the caller's
        # harness when driven in-process).
        chaos_point("service.worker.crash")
        query = CANONICAL_QUERIES.get(request.get("query"))
        if query is None:
            raise ValueError(
                f"unknown query {request.get('query')!r}; known: "
                f"{', '.join(sorted(CANONICAL_QUERIES))}")
        backend = request.get("backend", "columnar")
        if backend not in LOGIC_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}: expected one of "
                f"{LOGIC_BACKENDS}")
        optimize = bool(request.get("optimize", True))
        checker = self._checker_for(request["structure"], backend, optimize)
        deadline = request.get("deadline_seconds")
        max_rows = request.get("max_rows")
        token = self.external_cancel
        if deadline is not None or max_rows is not None or token is not None:
            checker.budget = Budget(deadline_seconds=deadline,
                                    max_rows_materialized=max_rows,
                                    cancel_token=token)
        else:
            checker.budget = None
        formula = query.formula()
        cache_key = ("plan", formula, frozenset())
        cached = cache_key in checker._fixpoint_cache
        if cached:
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1
        mark = len(checker.degradations)
        columns, rows = checker.defined_relation(formula)
        reply = {
            "ok": True,
            "id": reply_id,
            "query": query.name,
            "structure": request["structure"],
            "backend": backend,
            "pid": os.getpid(),
            "cached": cached,
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
            "degradations": [
                {"stage": event.stage, "fallback": event.fallback}
                for event in checker.degradations[mark:]],
            "stats": {
                "plan_cache_hits": self.plan_cache_hits,
                "plan_cache_misses": self.plan_cache_misses,
                **checker.plan_stats.as_dict(),
            },
        }
        if query.variables:
            positions = [columns.index(variable)
                         for variable in query.variables]
            reply["columns"] = list(query.variables)
            reply["rows"] = sorted(
                [row[position] for position in positions] for row in rows)
        else:
            reply["result"] = () in rows
        return reply


def main(argv: list[str] | None = None) -> int:
    """The pipe loop: frames in on stdin, frames out on stdout, logs on
    stderr.  ``sys.stdout`` is re-pointed at stderr up front so a stray
    ``print`` anywhere in the engine can never corrupt the framing."""
    del argv
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    sys.stdout = sys.stderr
    install_policy_from_env()
    worker = Worker()
    while True:
        try:
            request = read_frame(stdin)
        except ProtocolError as error:
            print(f"worker {os.getpid()}: protocol error on stdin: {error}",
                  file=sys.stderr)
            return 4
        if request is None:  # server hung up: normal shutdown
            return 0
        try:
            reply = worker.handle(request)
        except ChaosError:
            # The injected worker crash: die the way a SIGKILL'd or
            # OOM-killed process dies — no reply, no cleanup, no flush.
            sys.stderr.flush()
            os._exit(CRASH_EXIT)
        try:
            write_frame(stdout, reply)
        except (ProtocolError, OSError) as error:
            print(f"worker {os.getpid()}: cannot reply: {error}",
                  file=sys.stderr)
            return 4
        if worker.stopped:
            return 0


if __name__ == "__main__":
    sys.exit(main())
