"""The query service layer (P10): a long-lived server over the engine.

``repro.service`` turns the batch model checker into a serving system
(ROADMAP item 2) with robustness as the headline: structures stay
resident in a pool of supervised worker *processes*, compiled+optimized
plans are cached per (formula, stats signature), and every cross-process
failure mode — a worker dying mid-query, a full queue, a blown deadline,
a torn protocol frame — resolves to the correct answer or a typed error,
never a hang and never a wrong answer.

Layering (each module is independently testable):

``protocol``   length-prefixed JSON frames + the request/response shapes
``worker``     the worker process: resident structures, plan cache,
               governed evaluation (``python -m repro.service.worker``)
``pool``       supervision: spawn/respawn with exponential backoff,
               crash detection (pipe EOF / deadline grace), bounded
               retry of in-flight requests, per-structure circuit
               breaker (columnar -> plan after repeated deaths)
``admission``  bounded queue depth + load shedding (``Overloaded``)
``server``     the HTTP/JSON front end: ``POST /query``, ``GET
               /health``, ``GET /ready``, graceful drain on SIGTERM

The CLI entry point is ``python -m repro serve`` (see ``server.main``).
"""

from .admission import AdmissionController
from .pool import WorkerPool
from .protocol import read_frame, write_frame
from .server import QueryService

__all__ = ["AdmissionController", "QueryService", "WorkerPool",
           "read_frame", "write_frame"]
