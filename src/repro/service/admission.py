"""Admission control: bounded concurrency, bounded queue, load shedding.

The service accepts a request only when it can actually serve it soon:
``max_concurrency`` slots execute at once, at most ``max_queue_depth``
more may wait, and everything past that is shed immediately with a typed
:class:`~repro.core.errors.Overloaded` carrying a ``retry_after`` hint
(the HTTP front end turns it into ``503`` + ``Retry-After``).  Shedding
at the door is the robustness choice: a queue without a bound converts
overload into unbounded latency for *every* request, which the deadline
layer then converts into a pool-wide storm of ``DeadlineExceeded``.

The ``service.queue.overflow`` chaos point fires before the capacity
check and forces a shed as if the queue were full, so tests can assert
the overload surface (typed error, Retry-After, no hang) without having
to actually saturate a pool.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import Overloaded
from repro.testing.chaos import ChaosError, chaos_point

__all__ = ["AdmissionController"]


class AdmissionController:
    """A counting gate: ``slot()`` admits, queues, or sheds.

    Use as a context manager per request::

        with admission.slot(deadline_seconds=remaining):
            ... dispatch to the pool ...

    ``slot`` blocks (bounded by the caller's deadline) only while the
    request holds a *queue* position; once past ``max_queue_depth``
    waiters, or when the wait would outlive the deadline, it raises
    :class:`Overloaded` instead of blocking.
    """

    def __init__(self, max_concurrency: int = 4, max_queue_depth: int = 16):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self._lock = threading.Lock()
        self._freed = threading.Condition(self._lock)
        self._active = 0
        self._queued = 0
        self.stats = {"admitted": 0, "queued": 0, "shed": 0}

    # ------------------------------------------------------------- the gate

    def slot(self, deadline_seconds: float | None = None):
        return _Slot(self, deadline_seconds)

    def _acquire(self, deadline_seconds: float | None) -> None:
        try:
            chaos_point("service.queue.overflow")
        except ChaosError as error:
            self.stats["shed"] += 1
            raise Overloaded(
                "load shed (injected queue overflow)",
                retry_after=self._retry_after()) from error
        with self._lock:
            if self._active < self.max_concurrency:
                self._active += 1
                self.stats["admitted"] += 1
                return
            if self._queued >= self.max_queue_depth:
                self.stats["shed"] += 1
                raise Overloaded(
                    f"queue full ({self._queued} waiting, "
                    f"{self._active} executing)",
                    retry_after=self._retry_after())
            self._queued += 1
            self.stats["queued"] += 1
            deadline = None if deadline_seconds is None \
                else time.monotonic() + deadline_seconds
            try:
                while self._active >= self.max_concurrency:
                    if deadline is None:
                        self._freed.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._freed.wait(
                            timeout=remaining):
                        self.stats["shed"] += 1
                        raise Overloaded(
                            "queued past the request deadline",
                            retry_after=self._retry_after())
                self._active += 1
                self.stats["admitted"] += 1
            finally:
                self._queued -= 1

    def _release(self) -> None:
        with self._lock:
            self._active -= 1
            self._freed.notify()

    def _retry_after(self) -> float:
        """A crude but honest hint: one second per queued request ahead,
        floored at one second."""
        return float(max(1, self._queued))

    # ------------------------------------------------------------ reporting

    def snapshot(self) -> dict:
        with self._lock:
            return {"active": self._active, "queued": self._queued,
                    "max_concurrency": self.max_concurrency,
                    "max_queue_depth": self.max_queue_depth,
                    **self.stats}


class _Slot:
    def __init__(self, controller: AdmissionController,
                 deadline_seconds: float | None):
        self._controller = controller
        self._deadline_seconds = deadline_seconds

    def __enter__(self) -> "_Slot":
        self._controller._acquire(self._deadline_seconds)
        return self

    def __exit__(self, *exc_info) -> None:
        self._controller._release()
