"""The supervised worker pool: spawn, watch, respawn, retry, degrade.

The pool owns N worker *processes* (:mod:`repro.service.worker`) and is
the robustness core of the service.  Its contract, enforced by the chaos
suite: a request handed to :meth:`WorkerPool.query` always terminates
with the correct answer or a typed error — a worker dying mid-query
(OOM, ``kill -9``, injected crash) is detected, the worker respawned,
and the request replayed on a healthy worker (queries are idempotent
reads) within a bounded retry budget; past the budget the caller gets
:class:`~repro.core.errors.WorkerCrashed`, never a hang and never a
wrong answer.

Failure detection is two-layered:

* **pipe EOF** — a dead worker's stdout closes; the blocked
  :meth:`FrameStream.receive` returns immediately.  This is the fast
  path and catches every real process death.
* **deadline grace** — a *hung* worker (infinite loop with the pipe
  still open) is caught by the read timeout: the request's remaining
  deadline plus :attr:`PoolConfig.grace_seconds`.  A hang is treated
  exactly like a crash: kill, respawn, account a death.

Respawns back off exponentially (``backoff_base * 2^(deaths-1)``, capped)
so a worker that dies at startup — e.g. a corrupt snapshot — cannot spin
the supervisor; the backoff resets once a worker survives long enough to
answer something.

Per-structure **circuit breaker**: repeated worker deaths while serving a
structure's columnar queries trip that structure to the ``plan`` rung
(recorded as a :class:`~repro.core.governor.DegradationEvent`, surfaced
in ``/health``), on the theory that the columnar kernels are the only
rung with large flat allocations — the OOM-shaped failure.  The breaker
re-closes after :attr:`PoolConfig.breaker_reset_seconds` of calm.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.core.errors import ProtocolError, WorkerCrashed
from repro.core.governor import DegradationEvent
from repro.testing.chaos import CHAOS_ENV, active_policy, policy_to_json

from .protocol import FrameStream

__all__ = ["PoolConfig", "WorkerHandle", "WorkerPool"]


@dataclass(frozen=True)
class PoolConfig:
    """Supervision knobs, all overridable from ``serve`` CLI flags."""

    workers: int = 2
    #: Replays of one request after worker deaths before ``WorkerCrashed``.
    max_retries: int = 2
    #: First respawn delay; doubles per consecutive death, capped below.
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    #: Extra read-deadline slack past the request's own deadline before a
    #: silent worker is declared hung.  Requests with no deadline use
    #: ``default_deadline_seconds``.
    grace_seconds: float = 5.0
    default_deadline_seconds: float = 30.0
    #: Worker deaths while serving one structure before its circuit
    #: breaker trips the columnar rung down to ``plan``.
    breaker_threshold: int = 2
    breaker_reset_seconds: float = 30.0


class WorkerHandle:
    """One supervised worker process plus its pipes and bookkeeping.

    The parent end uses raw fds (:class:`FrameStream`) — Python's
    buffered pipe objects cannot carry ``select`` deadlines.  Each handle
    is driven by at most one request at a time (``lease`` serializes
    dispatch); the supervisor thread owns respawning.
    """

    def __init__(self, index: int, loads: list[tuple[str, str]]):
        self.index = index
        self.lease = threading.Lock()
        self.proc: subprocess.Popen | None = None
        self.stream: FrameStream | None = None
        self.loaded: set[str] = set()
        self.deaths = 0
        self.last_death = 0.0
        self._loads = loads
        self._sequence = 0

    # ------------------------------------------------------------ lifecycle

    def spawn(self) -> None:
        """Start the process and replay the load set.  Raises on a worker
        that cannot even load (the supervisor backs off and retries)."""
        request_read, request_write = os.pipe()
        reply_read, reply_write = os.pipe()
        environment = dict(os.environ)
        # The child must resolve the *same* ``repro`` as the parent even
        # when the package is importable only via sys.path (pytest's
        # ``pythonpath``, a source checkout) rather than an install.
        import repro

        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        existing = environment.get("PYTHONPATH")
        if package_root not in (existing or "").split(os.pathsep):
            environment["PYTHONPATH"] = package_root + (
                os.pathsep + existing if existing else "")
        policy = active_policy()
        if policy is not None:
            environment[CHAOS_ENV] = policy_to_json(policy)
        else:
            environment.pop(CHAOS_ENV, None)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker"],
            stdin=request_read, stdout=reply_write, stderr=sys.stderr,
            env=environment, close_fds=True)
        os.close(request_read)
        os.close(reply_write)
        self.stream = FrameStream(reply_read, request_write)
        self.loaded = set()
        for name, path in list(self._loads):
            reply = self.call({"op": "load", "name": name, "path": path},
                              timeout=120.0)
            if not reply.get("ok"):
                raise WorkerCrashed(
                    f"worker {self.index} failed to load {name!r}: "
                    f"{reply.get('error', {}).get('message')}")
            self.loaded.add(name)

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def call(self, request: dict, timeout: float | None) -> dict:
        """One request/reply exchange.  Raises :class:`WorkerCrashed` on
        EOF/torn frame (death) or timeout (hang — the caller must kill)."""
        if self.stream is None:
            raise WorkerCrashed(f"worker {self.index} is not running")
        self._sequence += 1
        request = dict(request, id=self._sequence)
        try:
            self.stream.send(request)
            while True:
                reply = self.stream.receive(timeout=timeout)
                if reply is None:
                    raise WorkerCrashed(
                        f"worker {self.index} (pid "
                        f"{self.proc.pid if self.proc else '?'}) died "
                        f"mid-request: pipe EOF")
                # A stale reply to an abandoned earlier request: drain it.
                if reply.get("id") == self._sequence:
                    return reply
        except TimeoutError as error:
            raise WorkerCrashed(
                f"worker {self.index} hung past its deadline grace "
                f"({timeout:.1f}s)") from error
        except ProtocolError as error:
            raise WorkerCrashed(
                f"worker {self.index} connection failed: {error}") from error

    def kill(self) -> None:
        """Tear the process down unconditionally (crash path and drain)."""
        if self.stream is not None:
            self.stream.close()
            self.stream = None
        if self.proc is not None:
            if self.proc.poll() is None:
                self.proc.kill()
            self.proc.wait()
            self.proc = None

    def shutdown(self, timeout: float = 5.0) -> None:
        """The polite exit: ``shutdown`` op, bounded wait, then kill."""
        if self.alive and self.stream is not None:
            try:
                self.call({"op": "shutdown"}, timeout=timeout)
            except WorkerCrashed:
                pass
        if self.proc is not None:
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                pass
        self.kill()


@dataclass
class _Breaker:
    """Per-structure circuit-breaker state (guarded by the pool lock)."""

    deaths: int = 0
    tripped_at: float | None = None
    events: list[DegradationEvent] = field(default_factory=list)


class WorkerPool:
    """N supervised workers behind one dispatch surface.

    Thread-safe: the HTTP server hands requests to :meth:`query` from
    its handler threads; a background supervisor thread respawns dead
    workers with exponential backoff.
    """

    def __init__(self, config: PoolConfig | None = None):
        self.config = config or PoolConfig()
        self._loads: list[tuple[str, str]] = []
        self._workers = [WorkerHandle(index, self._loads)
                         for index in range(max(1, self.config.workers))]
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._breakers: dict[str, _Breaker] = {}
        self._acquire_queue: list[object] = []
        self._respawn_queue: list[WorkerHandle] = []
        self._respawn_wakeup = threading.Condition()
        self._draining = False
        self._supervisor: threading.Thread | None = None
        self.stats = {"requests": 0, "retries": 0, "worker_deaths": 0,
                      "crashed_replies": 0}

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        for handle in self._workers:
            handle.spawn()
        self._supervisor = threading.Thread(
            target=self._supervise, name="pool-supervisor", daemon=True)
        self._supervisor.start()

    def load(self, name: str, path: str) -> int:
        """Make ``(name, path)`` resident on every worker (and on every
        future respawn).  Returns the structure's universe size."""
        self._loads.append((name, str(path)))
        size = 0
        for handle in self._workers:
            with handle.lease:
                if not handle.alive:
                    continue  # the respawn replays the load list
                reply = handle.call(
                    {"op": "load", "name": name, "path": str(path)},
                    timeout=120.0)
                if not reply.get("ok"):
                    raise WorkerCrashed(
                        f"load of {name!r} failed on worker {handle.index}: "
                        f"{reply.get('error', {}).get('message')}")
                handle.loaded.add(name)
                size = reply.get("size", 0)
        return size

    def drain(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: stop dispatching, let leased requests finish
        (bounded), then shut every worker down."""
        with self._lock:
            self._draining = True
            self._available.notify_all()
        with self._respawn_wakeup:
            self._respawn_wakeup.notify_all()
        deadline = time.monotonic() + timeout
        for handle in self._workers:
            remaining = max(0.5, deadline - time.monotonic())
            acquired = handle.lease.acquire(timeout=remaining)
            try:
                handle.shutdown(timeout=max(0.5, deadline - time.monotonic()))
            finally:
                if acquired:
                    handle.lease.release()
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)

    # ----------------------------------------------------------- health

    def ready(self) -> bool:
        """Full readiness: every worker alive with the load set resident."""
        wanted = {name for name, _ in self._loads}
        return not self._draining and all(
            handle.alive and wanted <= handle.loaded
            for handle in self._workers)

    def health(self) -> dict:
        with self._lock:
            breakers = {
                name: {"deaths": breaker.deaths,
                       "tripped": breaker.tripped_at is not None}
                for name, breaker in self._breakers.items()}
        return {
            "workers": [
                {"index": handle.index, "alive": handle.alive,
                 "pid": handle.proc.pid if handle.proc else None,
                 "deaths": handle.deaths,
                 "loaded": sorted(handle.loaded)}
                for handle in self._workers],
            "ready": self.ready(),
            "draining": self._draining,
            "breakers": breakers,
            "stats": dict(self.stats),
        }

    def degradations(self) -> list[DegradationEvent]:
        with self._lock:
            return [event for breaker in self._breakers.values()
                    for event in breaker.events]

    # ----------------------------------------------------------- dispatch

    def query(self, request: dict,
              deadline_seconds: float | None = None) -> dict:
        """Dispatch one idempotent read, retrying across worker deaths.

        ``deadline_seconds`` is the *remaining* wall-clock budget; it is
        forwarded to the worker's :class:`Budget` and bounds the pipe
        read (plus grace).  Raises :class:`WorkerCrashed` after the retry
        budget; other failures come back as the worker's typed error
        reply, which the caller maps to its own surface (HTTP status or
        exit code).
        """
        self.stats["requests"] += 1
        budget = deadline_seconds
        if budget is None:
            budget = self.config.default_deadline_seconds
        overall_deadline = time.monotonic() + budget + \
            self.config.grace_seconds * (self.config.max_retries + 1)
        request = dict(request)
        structure = request.get("structure")
        if structure is not None and self._breaker_open(structure) and \
                request.get("backend", "columnar") == "columnar":
            request["backend"] = "plan"
            request["breaker_degraded"] = True
        attempts = 0
        while True:
            attempts += 1
            handle = self._acquire(overall_deadline)
            try:
                remaining = min(budget,
                                max(0.1, overall_deadline - time.monotonic()))
                send = dict(request, deadline_seconds=request.get(
                    "deadline_seconds", remaining))
                timeout = min(remaining, budget) + self.config.grace_seconds
                reply = handle.call(send, timeout=timeout)
                if handle.deaths and reply.get("ok"):
                    handle.deaths = 0  # survived a real request: calm again
                return reply
            except WorkerCrashed as crash:
                self._note_death(handle, structure)
                if attempts > self.config.max_retries:
                    self.stats["crashed_replies"] += 1
                    raise WorkerCrashed(
                        f"request failed after {attempts} attempt(s): "
                        f"{crash}", attempts=attempts) from crash
                self.stats["retries"] += 1
            finally:
                handle.lease.release()
                # Wake the parked _acquire tickets immediately: without
                # this, waiters only notice a freed worker on their poll
                # tick, which becomes the service's p99.
                with self._lock:
                    self._available.notify_all()

    def _acquire(self, overall_deadline: float) -> WorkerHandle:
        """Lease a live worker, FIFO-fair; block (bounded) when all are
        dead or busy.

        Fairness is load-bearing for the p99: without the ticket queue, a
        thread that just released a lease loops around and re-grabs it
        before any parked waiter gets the GIL back — under steady
        concurrency one client can starve for hundreds of milliseconds
        while its peers barge.  Only the oldest waiter may claim.
        """
        ticket = object()
        with self._lock:
            self._acquire_queue.append(ticket)
            try:
                while True:
                    if self._draining:
                        raise WorkerCrashed("pool is draining")
                    if self._acquire_queue[0] is ticket:
                        for handle in self._workers:
                            if not handle.alive:
                                continue
                            if handle.lease.acquire(blocking=False):
                                if handle.alive:
                                    return handle
                                handle.lease.release()
                    remaining = overall_deadline - time.monotonic()
                    if remaining <= 0:
                        raise WorkerCrashed(
                            "no healthy worker became available before "
                            "the request deadline")
                    # The tick is only a liveness backstop (missed
                    # notify, worker death); releases notify promptly.
                    self._available.wait(
                        timeout=min(0.05, max(0.001, remaining)))
            finally:
                self._acquire_queue.remove(ticket)
                self._available.notify_all()

    # -------------------------------------------------------- supervision

    def _note_death(self, handle: WorkerHandle, structure: str | None) -> None:
        """Account a death, tear the corpse down, and queue a respawn."""
        self.stats["worker_deaths"] += 1
        handle.deaths += 1
        handle.last_death = time.monotonic()
        handle.kill()
        if structure is not None:
            with self._lock:
                breaker = self._breakers.setdefault(structure, _Breaker())
                breaker.deaths += 1
                if breaker.deaths >= self.config.breaker_threshold and \
                        breaker.tripped_at is None:
                    breaker.tripped_at = time.monotonic()
                    breaker.events.append(DegradationEvent(
                        stage="service.columnar",
                        fallback="plan",
                        error=f"circuit breaker: {breaker.deaths} worker "
                              f"death(s) serving {structure!r}"))
        with self._respawn_wakeup:
            self._respawn_queue.append(handle)
            self._respawn_wakeup.notify()

    def _breaker_open(self, structure: str) -> bool:
        with self._lock:
            breaker = self._breakers.get(structure)
            if breaker is None or breaker.tripped_at is None:
                return False
            if time.monotonic() - breaker.tripped_at >= \
                    self.config.breaker_reset_seconds:
                breaker.tripped_at = None  # half-open: try columnar again
                breaker.deaths = 0
                return False
            return True

    def _reap_idle_deaths(self) -> None:
        """Sweep for workers that died while *idle* (e.g. a stray OOM kill
        between requests).  Dispatch never touches a dead handle, so such
        a corpse would otherwise sit unrespawned forever — and readiness
        would never recover.  Caller holds ``_respawn_wakeup``."""
        if self._draining:
            return
        for handle in self._workers:
            proc = handle.proc
            if proc is None or proc.poll() is None:
                continue
            if not handle.lease.acquire(blocking=False):
                continue  # in use: the request path accounts this death
            try:
                if handle.proc is not None and \
                        handle.proc.poll() is not None:
                    self.stats["worker_deaths"] += 1
                    handle.deaths += 1
                    handle.last_death = time.monotonic()
                    handle.kill()
                    self._respawn_queue.append(handle)
            finally:
                handle.lease.release()

    def _supervise(self) -> None:
        """The supervisor thread: respawn queued corpses with exponential
        backoff, reset backoff on calm."""
        while True:
            with self._respawn_wakeup:
                while not self._respawn_queue and not self._draining:
                    self._respawn_wakeup.wait(timeout=0.2)
                    self._reap_idle_deaths()
                if self._draining:
                    return
                handle = self._respawn_queue.pop(0)
            delay = min(
                self.config.backoff_cap_seconds,
                self.config.backoff_base_seconds *
                (2 ** max(0, handle.deaths - 1)))
            time.sleep(delay)
            if self._draining:
                return
            with handle.lease:
                if handle.alive:
                    continue
                try:
                    handle.spawn()
                except Exception as error:  # spawn/load failed: re-queue
                    handle.deaths += 1
                    handle.kill()
                    print(f"pool: respawn of worker {handle.index} failed: "
                          f"{error}", file=sys.stderr)
                    with self._respawn_wakeup:
                        self._respawn_queue.append(handle)
                    continue
            with self._lock:
                self._available.notify_all()
