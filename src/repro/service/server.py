"""The query service front end: HTTP/JSON over the supervised pool.

``python -m repro serve --load g=graph.rsnp`` starts a long-lived server
whose endpoints map the engine's typed failure taxonomy onto HTTP:

=======================  ================================================
``POST /query``          evaluate a canonical query on a resident
                         structure; body mirrors the worker request
                         (``structure``, ``query``, ``backend?``,
                         ``optimize?``, ``deadline_seconds?``,
                         ``max_rows?``)
``POST /load``           make another structure resident on every worker
``GET /health``          liveness + full pool/admission/breaker report
``GET /ready``           readiness: 200 only when every worker is alive
                         with the full load set resident (and the server
                         is not draining)
=======================  ================================================

Status mapping (the HTTP face of the CLI's exit-code taxonomy)::

    200  answered (including answers served degraded, flagged in body)
    400  bad input: unknown query/structure/backend, malformed body
    408  client disconnected before the answer (inline mode, cancelled)
    422  resource limit other than time (RowLimitExceeded, ...)
    502  WorkerCrashed: retries exhausted against dying workers
    503  Overloaded (load shed; Retry-After header) or draining
    504  DeadlineExceeded / EvaluationCancelled past the budget
    500  anything internal

Two execution modes share every code path above the dispatch seam:
``workers >= 1`` uses the supervised process pool (:mod:`.pool`);
``workers = 0`` runs a :class:`~repro.service.worker.Worker` inline
under a lock — no crash isolation, but the same caches and the same
typed errors, and the mode where a client disconnect can propagate as a
:class:`~repro.core.governor.CancelToken` into the running evaluation.

Graceful drain: SIGTERM (or SIGINT) flips readiness to 503, lets
in-flight requests finish (bounded), shuts the workers down politely,
then stops the listener.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.errors import Overloaded, WorkerCrashed
from repro.core.governor import CancelToken

from .admission import AdmissionController
from .pool import PoolConfig, WorkerPool

__all__ = ["QueryService", "ServiceConfig", "serve_main"]


@dataclass(frozen=True)
class ServiceConfig:
    host: str = "127.0.0.1"
    port: int = 8377
    workers: int = 2
    max_concurrency: int = 4
    max_queue_depth: int = 16
    default_deadline_seconds: float = 30.0
    max_retries: int = 2
    breaker_threshold: int = 2
    drain_timeout_seconds: float = 10.0


class QueryService:
    """The transport-independent core: admission -> dispatch -> typed
    status.  The HTTP handler (and the tests, directly) call
    :meth:`handle_query` and get ``(status, body)`` back."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            max_queue_depth=self.config.max_queue_depth)
        self.pool: WorkerPool | None = None
        self._inline = None
        self._inline_lock = threading.Lock()
        self.draining = False
        self.started = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self.config.workers >= 1:
            self.pool = WorkerPool(PoolConfig(
                workers=self.config.workers,
                max_retries=self.config.max_retries,
                default_deadline_seconds=self.config.default_deadline_seconds,
                breaker_threshold=self.config.breaker_threshold))
            self.pool.start()
        else:
            from .worker import Worker

            self._inline = Worker()
        self.started = True

    def load(self, name: str, path: str) -> dict:
        if self.pool is not None:
            size = self.pool.load(name, path)
            return {"ok": True, "name": name, "size": size}
        with self._inline_lock:
            reply = self._inline.handle(
                {"op": "load", "name": name, "path": str(path)})
        return reply

    def drain(self) -> None:
        self.draining = True
        if self.pool is not None:
            self.pool.drain(timeout=self.config.drain_timeout_seconds)

    # ----------------------------------------------------------- health

    def ready(self) -> bool:
        if self.draining or not self.started:
            return False
        if self.pool is not None:
            return self.pool.ready()
        return True

    def health(self) -> dict:
        body = {
            "ok": True,
            "mode": "pool" if self.pool is not None else "inline",
            "ready": self.ready(),
            "draining": self.draining,
            "admission": self.admission.snapshot(),
        }
        if self.pool is not None:
            body["pool"] = self.pool.health()
            body["degradations"] = [
                {"stage": event.stage, "fallback": event.fallback,
                 "error": event.error}
                for event in self.pool.degradations()]
        return body

    # ----------------------------------------------------------- dispatch

    def handle_query(self, payload: dict,
                     cancel_token: CancelToken | None = None
                     ) -> tuple[int, dict]:
        """One request through admission + dispatch.  Returns
        ``(http_status, body)``; never raises for request-shaped
        failures."""
        if self.draining:
            return 503, {"ok": False, "error": {
                "type": "Draining", "kind": "overload",
                "message": "server is draining", "retry_after": 1.0}}
        if not isinstance(payload, dict):
            return 400, {"ok": False, "error": {
                "type": "ProtocolError", "kind": "input",
                "message": "request body must be a JSON object"}}
        deadline = payload.get("deadline_seconds",
                               self.config.default_deadline_seconds)
        if deadline is not None and (
                not isinstance(deadline, (int, float)) or deadline < 0):
            return 400, {"ok": False, "error": {
                "type": "ValueError", "kind": "input",
                "message": f"deadline_seconds must be a non-negative "
                           f"number, got {deadline!r}"}}
        started = time.monotonic()
        try:
            with self.admission.slot(deadline_seconds=deadline):
                remaining = None if deadline is None else max(
                    0.0, deadline - (time.monotonic() - started))
                return self._dispatch(payload, remaining, cancel_token)
        except Overloaded as error:
            return 503, {"ok": False, "error": {
                "type": "Overloaded", "kind": "overload",
                "message": str(error), "retry_after": error.retry_after}}
        except WorkerCrashed as error:
            return 502, {"ok": False, "error": {
                "type": "WorkerCrashed", "kind": "crash",
                "message": str(error), "attempts": error.attempts}}
        except Exception as error:  # the 500 backstop: typed, not a hang
            return 500, {"ok": False, "error": {
                "type": type(error).__name__, "kind": "internal",
                "message": str(error)}}

    def _dispatch(self, payload: dict, remaining: float | None,
                  cancel_token: CancelToken | None) -> tuple[int, dict]:
        request = {
            "op": "query",
            "structure": payload.get("structure"),
            "query": payload.get("query"),
            "backend": payload.get("backend", "columnar"),
            "optimize": payload.get("optimize", True),
            "deadline_seconds": remaining,
            "max_rows": payload.get("max_rows"),
        }
        if request["structure"] is None or request["query"] is None:
            return 400, {"ok": False, "error": {
                "type": "ValueError", "kind": "input",
                "message": "body must name a 'structure' and a 'query'"}}
        if self.pool is not None:
            reply = self.pool.query(request, deadline_seconds=remaining)
        else:
            reply = self._inline_query(request, remaining, cancel_token)
        return self._status_of(reply), reply

    def _inline_query(self, request: dict, remaining: float | None,
                      cancel_token: CancelToken | None) -> dict:
        del remaining  # already folded into the request's deadline_seconds
        with self._inline_lock:
            # Thread the client's cancel token into the evaluation budget:
            # a disconnect observed by the HTTP handler cancels the token,
            # and the governor raises EvaluationCancelled at its next
            # checkpoint.
            self._inline.external_cancel = cancel_token
            try:
                return self._inline.handle(request)
            finally:
                self._inline.external_cancel = None

    @staticmethod
    def _status_of(reply: dict) -> int:
        if reply.get("ok"):
            return 200
        error = reply.get("error", {})
        kind = error.get("kind")
        if kind == "input":
            return 400
        if kind == "resource":
            if error.get("type") in ("DeadlineExceeded",
                                     "EvaluationCancelled"):
                return 504
            return 422
        if kind == "overload":
            return 503
        if kind == "crash":
            return 502
        return 500


# ------------------------------------------------------------------ HTTP


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    service: QueryService  # installed by _make_server

    # Quiet by default; one access-log line per request on stderr.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        import sys

        print(f"serve: {self.address_string()} {format % args}",
              file=sys.stderr)

    def _send_json(self, status: int, body: dict,
                   retry_after: float | None = None) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, int(retry_after))))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up: nothing left to tell them

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/health":
            self._send_json(200, self.service.health())
        elif self.path == "/ready":
            if self.service.ready():
                self._send_json(200, {"ok": True, "ready": True})
            else:
                self._send_json(503, {"ok": False, "ready": False,
                                      "draining": self.service.draining},
                                retry_after=1)
        else:
            self._send_json(404, {"ok": False, "error": {
                "type": "NotFound", "kind": "input",
                "message": f"no such endpoint: {self.path}"}})

    def _read_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_json(400, {"ok": False, "error": {
                "type": "ProtocolError", "kind": "input",
                "message": f"request body is not valid JSON: {error}"}})
            return None
        if not isinstance(body, dict):
            self._send_json(400, {"ok": False, "error": {
                "type": "ProtocolError", "kind": "input",
                "message": "request body must be a JSON object"}})
            return None
        return body

    def _watch_disconnect(self):
        """Inline mode only: watch the connection for EOF while the query
        runs, cancelling the request's token when the client hangs up.
        Returns ``(token, stop)``; pool mode returns ``(None, no-op)`` —
        there, abandonment is bounded by the request deadline instead."""
        if self.service.pool is not None:
            return None, lambda: None
        import select
        import socket

        token = CancelToken()
        stopped = threading.Event()

        def watch():
            while not stopped.is_set():
                try:
                    ready, _, _ = select.select([self.connection], [], [],
                                                0.05)
                    if ready and not self.connection.recv(
                            1, socket.MSG_PEEK):
                        token.cancel()
                        return
                except (OSError, ValueError):
                    return  # connection torn down under us: nothing to do
                stopped.wait(timeout=0.05)

        thread = threading.Thread(target=watch, name="disconnect-watch",
                                  daemon=True)
        thread.start()

        def stop():
            stopped.set()
            thread.join(timeout=1.0)

        return token, stop

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        body = self._read_body()
        if body is None:
            return
        if self.path == "/query":
            token, stop_watch = self._watch_disconnect()
            try:
                status, reply = self.service.handle_query(
                    body, cancel_token=token)
            finally:
                stop_watch()
            if token is not None and token.cancelled and \
                    reply.get("error", {}).get("type") == \
                    "EvaluationCancelled":
                status = 408  # the client hung up; nobody is listening
            retry_after = reply.get("error", {}).get("retry_after") \
                if status == 503 else None
            self._send_json(status, reply, retry_after=retry_after)
        elif self.path == "/load":
            try:
                reply = self.service.load(body["name"], body["path"])
                self._send_json(200 if reply.get("ok") else 400, reply)
            except KeyError as error:
                self._send_json(400, {"ok": False, "error": {
                    "type": "ValueError", "kind": "input",
                    "message": f"load body must carry {error}"}})
            except Exception as error:
                self._send_json(500, {"ok": False, "error": {
                    "type": type(error).__name__, "kind": "internal",
                    "message": str(error)}})
        else:
            self._send_json(404, {"ok": False, "error": {
                "type": "NotFound", "kind": "input",
                "message": f"no such endpoint: {self.path}"}})


def _make_server(service: QueryService, host: str,
                 port: int) -> ThreadingHTTPServer:
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


# ------------------------------------------------------------------- CLI


def serve_main(argv: list[str]) -> int:
    """``python -m repro serve``: parse flags, start the pool, serve until
    SIGTERM/SIGINT, drain gracefully."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="long-lived query server over resident structures")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8377,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (0 = inline, no isolation)")
    parser.add_argument("--load", action="append", default=[],
                        metavar="NAME=PATH",
                        help="structure to make resident (repeatable); "
                             "PATH is a JSON database or RSNP snapshot")
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--deadline", type=float, default=30.0,
                        help="default per-request deadline (seconds)")
    parser.add_argument("--retries", type=int, default=2,
                        help="replays of a request after worker crashes")
    args = parser.parse_args(argv)

    loads = []
    for spec in args.load:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            print(f"error: --load expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 2
        loads.append((name, path))

    service = QueryService(ServiceConfig(
        host=args.host, port=args.port, workers=args.workers,
        max_concurrency=args.max_concurrency,
        max_queue_depth=args.queue_depth,
        default_deadline_seconds=args.deadline,
        max_retries=args.retries))
    try:
        service.start()
        for name, path in loads:
            reply = service.load(name, path)
            if not reply.get("ok"):
                print(f"error: cannot load {name}={path}: "
                      f"{reply.get('error', {}).get('message')}",
                      file=sys.stderr)
                return 2
    except Exception as error:
        print(f"error: service start failed: {error}", file=sys.stderr)
        return 2

    server = _make_server(service, args.host, args.port)
    stop = threading.Event()

    def on_signal(signum, frame):
        del frame
        print(f"serve: received signal {signum}, draining", file=sys.stderr)
        stop.set()
        # A second signal restores default handling: the blunt way out.
        signal.signal(signum, signal.SIG_DFL)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, on_signal)

    thread = threading.Thread(target=server.serve_forever,
                              name="serve-listener", daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    print(f"serve: listening on http://{host}:{port} "
          f"({args.workers} worker(s), "
          f"{len(loads)} structure(s) resident)", flush=True)
    try:
        while not stop.is_set():
            stop.wait(timeout=0.2)
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):
                pass
        service.drain()
        server.shutdown()
        server.server_close()
        thread.join(timeout=2.0)
    print("serve: drained", file=sys.stderr)
    return 0
