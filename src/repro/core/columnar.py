"""Columnar relations: bitsets, CSR adjacency, and the dense-int kernels.

The set-of-tuples representation (:class:`~repro.core.relalg.
IndexedRelation`) pays per-tuple hashing and boxed comparisons on every
operation.  Over the canonical dense universe ``{0, ..., n-1}`` (see
:mod:`repro.structures.intern`) there is a far cheaper encoding:

* **arity 1** — one Python int used as a bit vector: bit ``i`` set iff
  element ``i`` is in the relation.  Union/difference/complement are one
  bitwise op over the whole relation; membership is a shift.
* **arity 2** — CSR adjacency: a sorted target array plus per-source
  offsets (the classic compressed-sparse-row layout), with the per-source
  *bitmask rows* (``row_bits[x]`` = bitset of ``y`` with ``(x, y)`` in the
  relation) cached alongside — the form the join/fixpoint kernels consume,
  where composing two relations is ``n`` bitwise ORs instead of a hash
  join.  Either form is derived from the other on demand.
* **arity ≥ 3** (and arity 0) — the tuple-set fallback: a plain set of
  tuples, the representation of last resort the plan codegen degrades to.

:class:`ColumnarRelation` carries one relation in whichever representation
its arity picked, with the operator surface the plan executor needs
(select / project / rename / natural join / semijoin / antijoin as bitset
masks / union / difference as bitwise or / and-not / transitive closure as
frontier BFS with a visited bitset).  The module-level kernels operate on
the *raw* payloads (ints, lists of ints, sets) — they are what the
per-plan code generator (:mod:`repro.logic.codegen`) emits calls to, so
the boxed class never appears on the hot path.

**Big universes.**  The bitmask-row encoding is dense: one Python int per
source whose size is O(highest set bit / 8) bytes, so a sparse relation
over ``n`` elements still costs up to ``n**2 / 8`` bytes.  Above
:data:`DENSE_WIDTH_THRESHOLD` the *chunked* kernels below take over:
arity-2 payloads become machine-word CSR pairs (``array('q')`` offsets +
``array('i')`` targets, memory O(rows)), closure runs over the SCC
condensation with memory O(output), and single-source reachability is a
plain frontier BFS with a byte-per-node visited array.  These are what
the big-n plan interpreter (:mod:`repro.logic.chunked`) calls.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "ColumnarRelation",
    "DENSE_WIDTH_THRESHOLD",
    "bits_of_unary",
    "rows_of_bits",
    "adjacency_of_binary",
    "rows_of_adjacency",
    "csr_of_adjacency",
    "adjacency_of_csr",
    "iter_bits",
    "transpose",
    "compose",
    "mask_rows_source",
    "mask_rows_target",
    "and_rows",
    "andnot_rows",
    "or_rows",
    "proj_source",
    "proj_target",
    "count_per_source",
    "closure_adjacency",
    "reach_from",
    "patch_closure_insert",
    "overdeleted_rows",
    "csr_of_pairs",
    "csr_of_sparse",
    "sparse_of_csr",
    "iter_csr_rows",
    "csr_bytes",
    "transpose_csr",
    "compose_csr",
    "scc_csr",
    "closure_csr",
    "reach_from_csr",
]


# ----------------------------------------------------------- raw conversions

#: Bit offsets set in each byte value — the per-byte decode table that lets
#: every bit-iteration kernel walk ``int.to_bytes`` output eight bits at a
#: time instead of one ``bit_length`` round-trip per bit.
_BYTE_OFFSETS = tuple(
    tuple(offset for offset in range(8) if value >> offset & 1)
    for value in range(256))


def bits_of_unary(rows: Iterable[Sequence[int]]) -> int:
    """A unary relation (iterable of 1-tuples) as one bit vector.  Rows of
    the wrong arity are filtered, mirroring the plan scans."""
    bits = 0
    for row in rows:
        if len(row) == 1:
            bits |= 1 << row[0]
    return bits


def rows_of_bits(bits: int) -> set[tuple[int]]:
    """The 1-tuple rows of a bit vector."""
    return {(index,) for index in iter_bits(bits)}


def adjacency_of_binary(rows: Iterable[Sequence[int]], n: int) -> list[int]:
    """A binary relation as bitmask rows: ``adj[x]`` holds bit ``y`` iff
    ``(x, y)`` is a row.  Wrong-arity rows are filtered."""
    adjacency = [0] * n
    for row in rows:
        if len(row) == 2:
            adjacency[row[0]] |= 1 << row[1]
    return adjacency


def rows_of_adjacency(adjacency: list[int]) -> set[tuple[int, int]]:
    """The pair rows of bitmask-row adjacency."""
    rows: set[tuple[int, int]] = set()
    update = rows.update
    table = _BYTE_OFFSETS
    for source, bits in enumerate(adjacency):
        if bits:
            data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
            update((source, (base << 3) + offset)
                   for base, byte in enumerate(data) if byte
                   for offset in table[byte])
    return rows


def csr_of_adjacency(adjacency: list[int]) -> tuple[list[int], list[int]]:
    """The CSR form of bitmask rows: ``(offsets, targets)`` with
    ``targets[offsets[x]:offsets[x+1]]`` the sorted successors of ``x``."""
    offsets = [0] * (len(adjacency) + 1)
    targets: list[int] = []
    extend = targets.extend
    table = _BYTE_OFFSETS
    for source, bits in enumerate(adjacency):
        if bits:
            data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
            extend((base << 3) + offset
                   for base, byte in enumerate(data) if byte
                   for offset in table[byte])
        offsets[source + 1] = len(targets)
    return offsets, targets


def adjacency_of_csr(offsets: Sequence[int], targets: Sequence[int]
                     ) -> list[int]:
    """Bitmask rows from a CSR pair."""
    adjacency = []
    for source in range(len(offsets) - 1):
        bits = 0
        for position in range(offsets[source], offsets[source + 1]):
            bits |= 1 << targets[position]
        adjacency.append(bits)
    return adjacency


def iter_bits(bits: int) -> Iterator[int]:
    """The set bit positions of ``bits``, ascending."""
    if not bits:
        return
    data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
    table = _BYTE_OFFSETS
    for base, byte in enumerate(data):
        if byte:
            base <<= 3
            for offset in table[byte]:
                yield base + offset


# -------------------------------------------------------------- binary kernels


#: Cached delta-swap schedules for the packed butterfly transpose, keyed by
#: padded width: ``(delta, mask)`` per power-of-two level, where ``mask``
#: selects the packed positions with row bit clear and column bit set.
_TRANSPOSE_SWAPS: dict[int, tuple[tuple[int, int], ...]] = {}

#: Above this padded width the packed matrix (``width**2`` bits) stops
#: paying for itself; fall back to the row-scan transpose.
_MAX_BUTTERFLY_WIDTH = 2048


def _transpose_swaps(width: int) -> tuple[tuple[int, int], ...]:
    swaps = _TRANSPOSE_SWAPS.get(width)
    if swaps is None:
        schedule = []
        step = width >> 1
        while step:
            columns = 0
            for column in range(width):
                if column & step:
                    columns |= 1 << column
            mask = 0
            for row in range(width):
                if not row & step:
                    mask |= columns << (row * width)
            schedule.append((step * (width - 1), mask))
            step >>= 1
        swaps = _TRANSPOSE_SWAPS[width] = tuple(schedule)
    return swaps


def transpose(adjacency: list[int], n: int) -> list[int]:
    """The reversed relation: ``out[y]`` holds bit ``x`` iff ``adj[x]``
    holds bit ``y``.

    For universes up to ``_MAX_BUTTERFLY_WIDTH`` the rows are packed into
    one ``width**2``-bit integer and transposed by the classic power-of-two
    delta swaps (Hacker's Delight 7-3 generalized): each level exchanges
    row bit ``s`` with column bit ``s`` in three whole-matrix bitwise ops,
    so the work is ``O(log n)`` big-int operations instead of one Python
    iteration per set bit."""
    width = 8
    while width < n:
        width <<= 1
    if width > _MAX_BUTTERFLY_WIDTH:
        out = [0] * n
        table = _BYTE_OFFSETS
        for source, bits in enumerate(adjacency):
            if bits:
                mark = 1 << source
                data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
                for base, byte in enumerate(data):
                    if byte:
                        base8 = base << 3
                        for offset in table[byte]:
                            out[base8 + offset] |= mark
        return out
    stride = width >> 3
    packed = int.from_bytes(
        b"".join(bits.to_bytes(stride, "little") for bits in adjacency),
        "little")
    for delta, mask in _transpose_swaps(width):
        moved = (packed ^ (packed >> delta)) & mask
        packed ^= moved ^ (moved << delta)
    data = packed.to_bytes(width * stride, "little")
    return [int.from_bytes(data[source * stride:(source + 1) * stride],
                           "little")
            for source in range(n)]


def compose(left: list[int], right: list[int]) -> list[int]:
    """Relational composition ``{(x, z) | ∃y: left(x, y) ∧ right(y, z)}`` —
    the ``exists z`` join pattern as ``n`` rounds of bitwise OR."""
    out = []
    append = out.append
    table = _BYTE_OFFSETS
    for bits in left:
        row = 0
        if bits:
            data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
            for base, byte in enumerate(data):
                if byte:
                    base8 = base << 3
                    for offset in table[byte]:
                        row |= right[base8 + offset]
        append(row)
    return out


def mask_rows_source(adjacency: list[int], bits: int) -> list[int]:
    """Keep only the rows whose *source* is in ``bits`` (a semijoin on the
    first column, as a mask)."""
    return [row if (bits >> source) & 1 else 0
            for source, row in enumerate(adjacency)]


def mask_rows_target(adjacency: list[int], bits: int) -> list[int]:
    """Intersect every row's *targets* with ``bits`` (a semijoin on the
    second column, as a mask)."""
    return [row & bits for row in adjacency]


def and_rows(left: list[int], right: list[int]) -> list[int]:
    """Pairwise intersection of two bitmask-row relations."""
    return [a & b for a, b in zip(left, right)]


def andnot_rows(left: list[int], right: list[int]) -> list[int]:
    """Pairwise difference (``left`` minus ``right``) — bitwise and-not."""
    return [a & ~b for a, b in zip(left, right)]


def or_rows(operands: Sequence[list[int]]) -> list[int]:
    """Pairwise union of several bitmask-row relations."""
    out = list(operands[0])
    for rows in operands[1:]:
        for index, bits in enumerate(rows):
            out[index] |= bits
    return out


def proj_source(adjacency: list[int]) -> int:
    """The sources with at least one target, as a bit vector (projection
    onto the first column)."""
    bits = 0
    for source, row in enumerate(adjacency):
        if row:
            bits |= 1 << source
    return bits


def proj_target(adjacency: list[int]) -> int:
    """Every target of any source (projection onto the second column)."""
    bits = 0
    for row in adjacency:
        bits |= row
    return bits


def count_per_source(adjacency: list[int], threshold: int) -> int:
    """The sources with at least ``threshold`` targets (the counting
    quantifier's group-and-threshold, one popcount per source)."""
    bits = 0
    for source, row in enumerate(adjacency):
        if row.bit_count() >= threshold:
            bits |= 1 << source
    return bits


def closure_adjacency(adjacency: list[int], n: int,
                      deterministic: bool = False,
                      governor=None) -> list[int]:
    """The *reflexive* transitive closure of bitmask-row adjacency, by
    level-synchronized frontier BFS with a visited bitset per source.

    ``deterministic`` applies the DTC reading first: only out-degree-one
    sources keep their edge.  Rounds match the semi-naive closure kernel's
    (one per BFS wave), so a ``governor``'s round budget bites at the same
    granularity as the set-at-a-time backend.
    """
    if deterministic:
        adjacency = [row if row.bit_count() == 1 else 0 for row in adjacency]
        if governor is None:
            # Out-degree <= 1 everywhere: reach sets along a chain nest, so
            # one memoized pointer-chase per component replaces the waves.
            # (Governed runs keep the wave loop below so the round budget
            # bites at exactly the interpreter's granularity.)
            return _closure_functional(adjacency, n)
    reach = [(1 << source) | adjacency[source] for source in range(n)]
    frontier = list(adjacency)
    table = _BYTE_OFFSETS
    while True:
        if governor is not None:
            governor.note_round()
        advanced = False
        for source in range(n):
            bits = frontier[source]
            if not bits:
                continue
            step = 0
            data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
            for base, byte in enumerate(data):
                if byte:
                    base8 = base << 3
                    for offset in table[byte]:
                        step |= adjacency[base8 + offset]
            new = step & ~reach[source]
            frontier[source] = new
            if new:
                advanced = True
                reach[source] |= new
        if not advanced:
            return reach


def _closure_functional(adjacency: list[int], n: int) -> list[int]:
    """Reflexive closure when every row has at most one bit: walk each
    unvisited chain, resolve the cycle or sink it ends in, then unwind the
    suffix-nested reach sets in reverse.  O(n) big-int ORs total."""
    reach = [0] * n
    state = bytearray(n)          # 0 unvisited / 1 on current path / 2 done
    for start in range(n):
        if state[start]:
            continue
        path = []
        node = start
        while not state[node]:
            state[node] = 1
            path.append(node)
            successor = adjacency[node]
            if not successor:
                break
            node = successor.bit_length() - 1
        if not adjacency[path[-1]]:
            tail = 0                               # the chain ends in a sink
        elif state[node] == 2:
            tail = reach[node]                     # joined a finished chain
        else:                                      # closed a new cycle
            position = path.index(node)
            tail = 0
            for member in path[position:]:
                tail |= 1 << member
            for member in path[position:]:
                reach[member] = tail
                state[member] = 2
            del path[position:]
        for member in reversed(path):
            tail = reach[member] = (1 << member) | tail
            state[member] = 2
    return reach


# --------------------------------------------------- closure patch kernels
#
# The incremental maintenance layer (:mod:`repro.logic.ivm`) keeps a
# memoized reflexive transitive closure live under single-edge updates.
# Insertion is the Dyn-FO rule (Patnaik-Immerman): the new pairs after
# adding edge ``(u, v)`` are exactly ``{(x, y) : (x, u) in T and
# (v, y) in T}`` — one pass of row ORs, no fixed point.  Deletion is
# DRed: :func:`overdeleted_rows` computes the over-deleted candidates
# (every pair whose *every* derivation might route through a removed
# edge), and the caller re-derives each affected source with one
# :func:`reach_from` BFS over the post-delete adjacency.


def reach_from(adjacency: list[int], source: int) -> int:
    """The *reflexive* reach bitset of one ``source`` over bitmask-row
    adjacency — the per-source re-derivation kernel of DRed deletion."""
    seen = 1 << source
    frontier = adjacency[source] & ~seen
    table = _BYTE_OFFSETS
    while frontier:
        seen |= frontier
        step = 0
        data = frontier.to_bytes((frontier.bit_length() + 7) >> 3, "little")
        for base, byte in enumerate(data):
            if byte:
                base8 = base << 3
                for offset in table[byte]:
                    step |= adjacency[base8 + offset]
        frontier = step & ~seen
    return seen


def patch_closure_insert(reach: list[int], u: int, v: int) -> int:
    """Patch reflexive-closure rows ``reach`` in place for one inserted
    edge ``(u, v)``: every source that reaches ``u`` gains ``v``'s reach
    set (reflexivity covers the ``x = u`` / ``y = v`` endpoints).  Returns
    the bitset of sources whose rows changed."""
    gain = reach[v] | (1 << v)
    bit_u = 1 << u
    changed = 0
    for x in range(len(reach)):
        row = reach[x]
        if row & bit_u and gain & ~row:
            reach[x] = row | gain
            changed |= 1 << x
    return changed


def overdeleted_rows(reach: list[int], removed: Iterable[tuple[int, int]]
                     ) -> list[int]:
    """The DRed over-delete: per-source candidate masks ``D`` with
    ``D[x]`` the bitset of targets ``y`` such that some removed edge
    ``(u, v)`` has ``(x, u)`` and ``(v, y)`` in the old closure ``reach``.
    Every truly-dead pair is a candidate (each of its old derivations used
    a removed edge), so sources with ``D[x] == 0`` keep their rows
    verbatim.  Reflexive pairs never die and are masked out."""
    n = len(reach)
    out = [0] * n
    for u, v in removed:
        gain = reach[v] | (1 << v)
        bit_u = 1 << u
        for x in range(n):
            if reach[x] & bit_u:
                out[x] |= gain
    for x in range(n):
        out[x] &= reach[x] & ~(1 << x)
    return out


# --------------------------------------------------------- chunked kernels
#
# Machine-word CSR kernels for universes too wide for giant-int rows.
# Payload convention: ``offsets`` is an ``array('q')`` of length ``n + 1``
# and ``targets`` an ``array('i')`` with ``targets[offsets[x]:
# offsets[x + 1]]`` the strictly ascending, duplicate-free successors of
# ``x`` — the same invariant the snapshot format persists, so an mmap'd
# section is directly consumable.

#: Universe width above which giant-int bitmask rows (O(n) bytes *per
#: source*, O(n**2) total) are abandoned for machine-word CSR payloads.
#: At and below it the dense kernels win on constant factors; above it
#: they cannot even be allocated for sparse million-edge structures.
DENSE_WIDTH_THRESHOLD = 1 << 13


def csr_of_pairs(sources: Sequence[int], targets: Sequence[int], n: int
                 ) -> tuple[array, array]:
    """CSR from parallel source/target sequences by counting sort, with
    per-row dedup — one O(rows) pass plus one short sort per row, never a
    global sort and never a tuple set."""
    counts = array("q", bytes(8 * (n + 1)))
    for source in sources:
        counts[source + 1] += 1
    offsets = counts  # prefix-sum in place
    for index in range(1, n + 1):
        offsets[index] += offsets[index - 1]
    out = array("i", bytes(4 * len(targets)))
    cursor = list(offsets[:n])
    for source, target in zip(sources, targets):
        out[cursor[source]] = target
        cursor[source] += 1
    # Sort each row in place; the first duplicate forces a compacting
    # rebuild (re-sorting the already-sorted prefix is idempotent).
    for source in range(n):
        start, end = offsets[source], offsets[source + 1]
        if end - start > 1:
            row = sorted(set(out[start:end]))
            if len(row) != end - start:
                clean_offsets = array("q", bytes(8 * (n + 1)))
                clean_targets = array("i")
                for src in range(n):
                    lo, hi = offsets[src], offsets[src + 1]
                    if hi > lo:
                        clean_targets.extend(sorted(set(out[lo:hi])))
                    clean_offsets[src + 1] = len(clean_targets)
                return clean_offsets, clean_targets
            out[start:end] = array("i", row)
    return offsets, out


def csr_of_sparse(rows: dict, n: int) -> tuple[array, array]:
    """CSR from a sparse ``{source: set-of-targets}`` dict (the working
    form the chunked plan interpreter mutates)."""
    offsets = array("q", bytes(8 * (n + 1)))
    targets = array("i")
    for source in range(n):
        row = rows.get(source)
        if row:
            targets.extend(sorted(row))
        offsets[source + 1] = len(targets)
    return offsets, targets


def sparse_of_csr(offsets: Sequence[int], targets: Sequence[int]) -> dict:
    """Sparse ``{source: set-of-targets}`` dict of a CSR pair (absent
    sources have no successors)."""
    rows: dict[int, set[int]] = {}
    for source in range(len(offsets) - 1):
        start, end = offsets[source], offsets[source + 1]
        if end > start:
            rows[source] = set(targets[start:end])
    return rows


def iter_csr_rows(offsets: Sequence[int], targets: Sequence[int]
                  ) -> Iterator[tuple[int, int]]:
    """The pair rows of a CSR pair, in (source, target) order."""
    for source in range(len(offsets) - 1):
        for position in range(offsets[source], offsets[source + 1]):
            yield source, targets[position]


def csr_bytes(offsets: array, targets: array) -> int:
    """The structural byte footprint of a CSR pair (what the memory
    governor accounts)."""
    return (offsets.itemsize * len(offsets)
            + targets.itemsize * len(targets))


def transpose_csr(offsets: Sequence[int], targets: Sequence[int], n: int
                  ) -> tuple[array, array]:
    """The converse relation, by counting sort on the target column.
    Output rows come out sorted for free (sources are visited ascending)."""
    counts = array("q", bytes(8 * (n + 1)))
    for target in targets:
        counts[target + 1] += 1
    out_offsets = counts
    for index in range(1, n + 1):
        out_offsets[index] += out_offsets[index - 1]
    out_targets = array("i", bytes(4 * len(targets)))
    cursor = list(out_offsets[:n])
    for source in range(n):
        for position in range(offsets[source], offsets[source + 1]):
            target = targets[position]
            out_targets[cursor[target]] = source
            cursor[target] += 1
    return out_offsets, out_targets


def compose_csr(left_offsets: Sequence[int], left_targets: Sequence[int],
                right_offsets: Sequence[int], right_targets: Sequence[int],
                n: int, governor=None) -> tuple[array, array]:
    """Relational composition ``{(x, z) : (x, y) in L and (y, z) in R}``
    of two CSR pairs.  Works row-at-a-time — the live set is one output
    row plus the inputs, never a dense matrix."""
    offsets = array("q", bytes(8 * (n + 1)))
    out = array("i")
    for source in range(n):
        start, end = left_offsets[source], left_offsets[source + 1]
        if end > start:
            row: set[int] = set()
            for position in range(start, end):
                mid = left_targets[position]
                row.update(
                    right_targets[right_offsets[mid]:right_offsets[mid + 1]])
            out.extend(sorted(row))
            if governor is not None:
                governor.note_rows(len(row))
        offsets[source + 1] = len(out)
    return offsets, out


def scc_csr(offsets: Sequence[int], targets: Sequence[int], n: int
            ) -> tuple[array, int]:
    """Strongly connected components of a CSR graph by iterative Tarjan.

    Returns ``(component, count)`` where ``component[x]`` is ``x``'s
    component id.  Ids are assigned in completion order, which for Tarjan
    is *reverse topological*: every edge crossing components goes from a
    higher id to a lower one, so a single ascending sweep visits each
    component after everything it reaches.
    """
    unvisited = -1
    index = [unvisited] * n
    low = [0] * n
    component = array("q", bytes(8 * n))
    stack: list[int] = []
    on_stack = bytearray(n)
    work: list[list[int]] = []  # [node, next-edge-position] frames
    counter = 0
    count = 0
    for root in range(n):
        if index[root] != unvisited:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        work.append([root, offsets[root]])
        while work:
            frame = work[-1]
            node, position = frame
            end = offsets[node + 1]
            descended = False
            while position < end:
                successor = targets[position]
                position += 1
                seen = index[successor]
                if seen == unvisited:
                    frame[1] = position
                    index[successor] = low[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack[successor] = 1
                    work.append([successor, offsets[successor]])
                    descended = True
                    break
                if on_stack[successor] and seen < low[node]:
                    low[node] = seen
            if descended:
                continue
            work.pop()
            if low[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    component[member] = count
                    if member == node:
                        break
                count += 1
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
    return component, count


def _functional_csr(offsets: Sequence[int], targets: Sequence[int], n: int
                    ) -> tuple[array, array]:
    """The DTC reading: only out-degree-one sources keep their edge."""
    out_offsets = array("q", bytes(8 * (n + 1)))
    out_targets = array("i")
    for source in range(n):
        start, end = offsets[source], offsets[source + 1]
        if end - start == 1:
            out_targets.append(targets[start])
        out_offsets[source + 1] = len(out_targets)
    return out_offsets, out_targets


def closure_csr(offsets: Sequence[int], targets: Sequence[int], n: int,
                deterministic: bool = False, governor=None, stats=None
                ) -> tuple[array, array]:
    """The *reflexive* transitive closure of a CSR graph, via the SCC
    condensation: Tarjan numbers components in reverse topological order,
    one ascending sweep accumulates per-component reach sets (each from
    already-finished successors), and every node's output row is its
    component's expansion — shared across the component, built once with
    C-speed ``array.extend``.

    Memory is O(|closure| + n) words, never the dense ``n**2 / 8`` bits:
    the per-component reach sets are exactly the condensation's closure,
    which the output subsumes.  A ``governor`` gets ``check_rows_ahead``
    before the expansion is allocated and ``note_bytes`` as it grows; a
    ``stats`` (:class:`~repro.logic.plan.PlanStats`) records the peak
    working set.  (The kernel is not round-iterative, so a fixpoint-round
    budget does not constrain it; deadline and cancellation bite through
    ``tick`` between components.)
    """
    if deterministic:
        offsets, targets = _functional_csr(offsets, targets, n)
    component, count = scc_csr(offsets, targets, n)
    members: list[array] = [array("i") for _ in range(count)]
    for node in range(n):
        members[component[node]].append(node)
    successors: list[set[int]] = [set() for _ in range(count)]
    for source in range(n):
        own = component[source]
        row = successors[own]
        for position in range(offsets[source], offsets[source + 1]):
            other = component[targets[position]]
            if other != own:
                row.add(other)
    # Reach sets over the condensation, sinks first (ascending ids): every
    # successor component carries a smaller id, so its entry is final.
    reach: list = [None] * count
    for comp in range(count):
        row = {comp}
        for successor in successors[comp]:
            row |= reach[successor]
        reach[comp] = row
        if governor is not None:
            governor.tick(len(row))
    # Expansion: one shared target row per component.
    total = 0
    for comp in range(count):
        size = 0
        for reached in reach[comp]:
            size += len(members[reached])
        total += size * len(members[comp])
    if governor is not None:
        governor.check_rows_ahead(total)
    expansions: list[array] = []
    for comp in range(count):
        row = array("i")
        for reached in sorted(reach[comp]):
            row.extend(members[reached])
        buffer = array("i", sorted(row)) if len(reach[comp]) > 1 else row
        expansions.append(buffer)
        if governor is not None:
            governor.tick(len(buffer))
    out_offsets = array("q", bytes(8 * (n + 1)))
    out_targets = array("i", bytes(4 * total))
    position = 0
    for node in range(n):
        row = expansions[component[node]]
        width = len(row)
        out_targets[position:position + width] = row
        position += width
        out_offsets[node + 1] = position
    resident = csr_bytes(out_offsets, out_targets) + 4 * total
    if governor is not None:
        governor.note_bytes(resident)
    if stats is not None:
        stats.note_resident(rows=total, byte_count=resident)
    return out_offsets, out_targets


def reach_from_csr(offsets: Sequence[int], targets: Sequence[int], n: int,
                   source: int, governor=None) -> array:
    """The *reflexive* reach set of one source over a CSR graph, as a
    sorted ``array('i')`` — level-synchronized BFS with a byte-per-node
    visited array, one governor round per wave (the chunked analogue of
    :func:`reach_from`)."""
    seen = bytearray(n)
    seen[source] = 1
    reached = [source]
    frontier = [source]
    while frontier:
        if governor is not None:
            governor.note_round()
        step: list[int] = []
        for node in frontier:
            for position in range(offsets[node], offsets[node + 1]):
                target = targets[position]
                if not seen[target]:
                    seen[target] = 1
                    step.append(target)
        reached.extend(step)
        frontier = step
    return array("i", sorted(reached))


# ------------------------------------------------------------ the boxed form


class ColumnarRelation:
    """One relation over the dense universe, in its arity's representation.

    ``kind`` is ``"bitset"`` (arity 1), ``"csr"`` (arity 2) or ``"tuples"``
    (arity 0 and arity ≥ 3 — the fallback representation).  The class is
    the *boundary* form: conversions in and out, the operator surface for
    direct use and tests.  The plan code generator works on the raw
    payloads (:attr:`bits` / :attr:`row_bits` / :attr:`rows`) through the
    module kernels instead.
    """

    __slots__ = ("n", "arity", "kind", "_bits", "_row_bits", "_csr", "_rows")

    def __init__(self, n: int, arity: int, *, bits: int | None = None,
                 row_bits: list[int] | None = None,
                 rows: set | None = None):
        self.n = n
        self.arity = arity
        self._bits = bits
        self._row_bits = row_bits
        self._csr: tuple[list[int], list[int]] | None = None
        self._rows = rows
        if arity == 1 and bits is not None:
            self.kind = "bitset"
        elif arity == 2 and row_bits is not None:
            self.kind = "csr"
        elif rows is not None:
            self.kind = "tuples"
        else:
            raise ValueError("no payload supplied for the relation's arity")

    # ---------------------------------------------------------- constructors

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]], arity: int, n: int
                  ) -> "ColumnarRelation":
        """Pick the representation by arity: bitset (1), CSR (2), tuple-set
        fallback (0 and ≥ 3)."""
        if arity == 1:
            return cls(n, 1, bits=bits_of_unary(rows))
        if arity == 2:
            return cls(n, 2, row_bits=adjacency_of_binary(rows, n))
        return cls(n, arity,
                   rows={tuple(row) for row in rows if len(row) == arity})

    @classmethod
    def from_bits(cls, bits: int, n: int) -> "ColumnarRelation":
        return cls(n, 1, bits=bits)

    @classmethod
    def from_adjacency(cls, row_bits: list[int], n: int) -> "ColumnarRelation":
        return cls(n, 2, row_bits=row_bits)

    # -------------------------------------------------------------- payloads

    @property
    def bits(self) -> int:
        """The bit vector (arity-1 relations only)."""
        if self.arity != 1:
            raise TypeError(f"bits undefined for arity {self.arity}")
        if self._bits is None:
            self._bits = bits_of_unary(self._rows or ())
        return self._bits

    @property
    def row_bits(self) -> list[int]:
        """The bitmask rows (arity-2 relations only)."""
        if self.arity != 2:
            raise TypeError(f"row_bits undefined for arity {self.arity}")
        if self._row_bits is None:
            self._row_bits = adjacency_of_binary(self._rows or (), self.n)
        return self._row_bits

    def csr(self) -> tuple[list[int], list[int]]:
        """The CSR pair ``(offsets, sorted targets)`` (arity 2; derived
        once from the bitmask rows and cached)."""
        if self._csr is None:
            self._csr = csr_of_adjacency(self.row_bits)
        return self._csr

    def to_rows(self) -> set[tuple[int, ...]]:
        """The relation as a set of tuples (whatever the representation)."""
        if self.kind == "bitset":
            return rows_of_bits(self._bits)
        if self.kind == "csr":
            return rows_of_adjacency(self._row_bits)
        return set(self._rows)

    # -------------------------------------------------------------- protocol

    def __len__(self) -> int:
        if self.kind == "bitset":
            return self._bits.bit_count()
        if self.kind == "csr":
            return sum(row.bit_count() for row in self._row_bits)
        return len(self._rows)

    def __contains__(self, row: object) -> bool:
        if not isinstance(row, tuple) or len(row) != self.arity:
            return False
        if self.kind == "bitset":
            value = row[0]
            return 0 <= value < self.n and bool((self._bits >> value) & 1)
        if self.kind == "csr":
            source, target = row
            return (0 <= source < self.n and 0 <= target < self.n
                    and bool((self._row_bits[source] >> target) & 1))
        return row in self._rows

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(sorted(self.to_rows()))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnarRelation):
            return self.arity == other.arity and self.to_rows() == other.to_rows()
        if isinstance(other, (set, frozenset)):
            return self.to_rows() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ColumnarRelation(n={self.n}, arity={self.arity}, "
                f"kind={self.kind!r}, rows={len(self)})")

    # ------------------------------------------------------ operator surface

    def _same_shape(self, other: "ColumnarRelation") -> None:
        if self.arity != other.arity or self.n != other.n:
            raise ValueError(
                f"shape mismatch: arity {self.arity}/{other.arity}, "
                f"n {self.n}/{other.n}"
            )

    def union(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Set union — bitwise OR in the columnar representations."""
        self._same_shape(other)
        if self.kind == "bitset":
            return ColumnarRelation(self.n, 1, bits=self.bits | other.bits)
        if self.kind == "csr":
            return ColumnarRelation(
                self.n, 2, row_bits=or_rows([self.row_bits, other.row_bits]))
        return ColumnarRelation(self.n, self.arity,
                                rows=self.to_rows() | other.to_rows())

    def difference(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Set difference — bitwise AND-NOT in the columnar representations
        (with a full-domain left operand this is the complement kernel)."""
        self._same_shape(other)
        if self.kind == "bitset":
            return ColumnarRelation(self.n, 1, bits=self.bits & ~other.bits)
        if self.kind == "csr":
            return ColumnarRelation(
                self.n, 2, row_bits=andnot_rows(self.row_bits, other.row_bits))
        return ColumnarRelation(self.n, self.arity,
                                rows=self.to_rows() - other.to_rows())

    def intersection(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Set intersection — bitwise AND."""
        self._same_shape(other)
        if self.kind == "bitset":
            return ColumnarRelation(self.n, 1, bits=self.bits & other.bits)
        if self.kind == "csr":
            return ColumnarRelation(
                self.n, 2, row_bits=and_rows(self.row_bits, other.row_bits))
        return ColumnarRelation(self.n, self.arity,
                                rows=self.to_rows() & other.to_rows())

    def complement(self) -> "ColumnarRelation":
        """The active-domain complement ``universe^arity`` minus this
        relation — the inductive-counting workhorse, nearly free on
        bitsets."""
        full = (1 << self.n) - 1
        if self.kind == "bitset":
            return ColumnarRelation(self.n, 1, bits=full & ~self.bits)
        if self.kind == "csr":
            return ColumnarRelation(
                self.n, 2, row_bits=[full & ~row for row in self.row_bits])
        from itertools import product
        everything = set(product(range(self.n), repeat=self.arity))
        return ColumnarRelation(self.n, self.arity,
                                rows=everything - self.to_rows())

    def project(self, positions: Sequence[int]) -> "ColumnarRelation":
        """Projection onto the given column positions (duplicates collapse,
        order applies — a full-width permutation is a rename)."""
        positions = tuple(positions)
        if self.kind == "csr":
            if positions == (0,):
                return ColumnarRelation(self.n, 1, bits=proj_source(self.row_bits))
            if positions == (1,):
                return ColumnarRelation(self.n, 1, bits=proj_target(self.row_bits))
            if positions == (1, 0):
                return ColumnarRelation(
                    self.n, 2, row_bits=transpose(self.row_bits, self.n))
            if positions == (0, 1):
                return ColumnarRelation(self.n, 2, row_bits=list(self.row_bits))
        if self.kind == "bitset" and positions == (0,):
            return ColumnarRelation(self.n, 1, bits=self.bits)
        rows = {tuple(row[i] for i in positions) for row in self.to_rows()}
        return ColumnarRelation.from_rows(rows, len(positions), self.n)

    def rename(self, permutation: Sequence[int]) -> "ColumnarRelation":
        """Pure column permutation (arity-2 reversal is a transpose)."""
        permutation = tuple(permutation)
        if sorted(permutation) != list(range(self.arity)):
            raise ValueError(
                f"rename expects a permutation of range({self.arity}), "
                f"got {permutation}")
        return self.project(permutation)

    def select(self, predicate: Callable[[tuple], bool]) -> "ColumnarRelation":
        """The rows satisfying ``predicate`` (generic path; the codegen
        compiles comparison selections to masks instead)."""
        return ColumnarRelation.from_rows(
            {row for row in self.to_rows() if predicate(row)},
            self.arity, self.n)

    def semijoin(self, other: "ColumnarRelation", on: int | None = None
                 ) -> "ColumnarRelation":
        """The rows with a match in ``other`` — bitset masks.

        For two same-arity relations this is intersection.  For an arity-2
        left against an arity-1 right, ``on`` picks the matched column
        (0 = source, 1 = target).
        """
        if self.arity == other.arity:
            return self.intersection(other)
        if self.kind == "csr" and other.kind == "bitset":
            if on == 0:
                return ColumnarRelation(
                    self.n, 2, row_bits=mask_rows_source(self.row_bits, other.bits))
            if on == 1:
                return ColumnarRelation(
                    self.n, 2, row_bits=mask_rows_target(self.row_bits, other.bits))
        raise ValueError("unsupported semijoin shape; use natural_join")

    def antijoin(self, other: "ColumnarRelation", on: int | None = None
                 ) -> "ColumnarRelation":
        """The rows with *no* match in ``other`` — the complement mask."""
        if self.arity == other.arity:
            return self.difference(other)
        if self.kind == "csr" and other.kind == "bitset":
            full = (1 << self.n) - 1
            inverted = ColumnarRelation(self.n, 1, bits=full & ~other.bits)
            return self.semijoin(inverted, on=on)
        raise ValueError("unsupported antijoin shape; use natural_join")

    def compose(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """``{(x, z) | ∃y: self(x, y) ∧ other(y, z)}`` — the natural-join-
        then-project pattern of ``exists``, as bitwise ORs."""
        if self.arity != 2 or other.arity != 2:
            raise TypeError("compose requires two binary relations")
        return ColumnarRelation(
            self.n, 2, row_bits=compose(self.row_bits, other.row_bits))

    def closure(self, deterministic: bool = False,
                governor=None) -> "ColumnarRelation":
        """The reflexive transitive closure (arity 2): CSR frontier BFS
        with a visited bitset per source."""
        if self.arity != 2:
            raise TypeError("closure requires a binary relation")
        return ColumnarRelation(
            self.n, 2,
            row_bits=closure_adjacency(self.row_bits, self.n,
                                       deterministic=deterministic,
                                       governor=governor))
