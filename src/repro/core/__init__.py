"""The set-reduce language (SRL) family — the paper's core contribution.

This subpackage contains everything needed to write, type-check, restrict,
analyse and run programs in the family of finite set languages studied by
Immerman, Patnaik and Stemple:

* :mod:`repro.core.ast`, :mod:`repro.core.parser`, :mod:`repro.core.builders`
  — three ways to construct programs (raw AST, s-expression text, Python DSL);
* :mod:`repro.core.evaluator` — the instrumented operational semantics;
* :mod:`repro.core.ir`, :mod:`repro.core.compiler`, :mod:`repro.core.engine`
  — the compilation pipeline (AST → register IR → Python closures) and the
  :class:`~repro.core.engine.Session` facade with its pluggable backends;
* :mod:`repro.core.typecheck` — type inference / checking;
* :mod:`repro.core.stdlib` — the Fact 2.4 derived operations, written in SRL;
* :mod:`repro.core.restrictions` — SRL, BASRL, SRFO+TC, SRFO+DTC, SRL+new, LRL;
* :mod:`repro.core.analysis` — Section 6 "complexity from syntax";
* :mod:`repro.core.order` — Section 7 order-(in)dependence testing;
* :mod:`repro.core.hom` — the Machiavelli ``hom`` operator.
"""

from .analysis import ProgramAnalysis, analyze, expression_depth, expression_width
from .ast import (
    AtomConst,
    BoolConst,
    Call,
    Choose,
    ConsList,
    EmptyList,
    EmptySet,
    Equal,
    Expr,
    FunctionDef,
    If,
    Insert,
    Lambda,
    LessEq,
    ListReduce,
    NatConst,
    New,
    Program,
    Rest,
    Select,
    SetReduce,
    TupleExpr,
    Var,
    count_nodes,
    free_variables,
    walk,
)
from .environment import Database, Environment
from .errors import (
    DeadlineExceeded,
    EvaluationCancelled,
    FixpointRoundLimitExceeded,
    InvalidDatabaseError,
    MemoLimitExceeded,
    ResourceLimitExceeded,
    RestrictionViolation,
    RowLimitExceeded,
    SRLError,
    SRLNameError,
    SRLRuntimeError,
    SRLSyntaxError,
    SRLTypeError,
)
from .governor import Budget, CancelToken, DegradationEvent, Governor
from .compiler import CompiledProgram, compile_expression, compile_program
from .engine import (
    BACKENDS,
    IndexedRelation,
    Session,
    least_fixpoint,
    run_expression,
    run_program,
    transitive_closure,
)
from .evaluator import (
    EvaluationLimits,
    EvaluationStats,
    Evaluator,
)
from .hom import check_proper, count_hom, hom, hom_expr
from .order import (
    Certificate,
    OrderReport,
    certify_order_independence,
    probe_order_independence,
)
from .parser import parse_expression, parse_program
from .pretty import pretty, pretty_program
from .restrictions import (
    ALL_RESTRICTIONS,
    BASRL,
    LRL,
    SRFO_DTC,
    SRFO_TC,
    SRL,
    SRL_NEW,
    UNRESTRICTED_SRL,
    Restriction,
    strictest_restriction,
)
from .stdlib import (
    forall_expr,
    forsome_expr,
    join_expr,
    product_expr,
    project_expr,
    select_expr,
    singleton_expr,
    standard_library,
    with_standard_library,
)
from .typecheck import TypeChecker, TypeReport, check_program, database_types, type_of_value
from .types import (
    ATOM,
    BOOL,
    NAT,
    AtomType,
    BoolType,
    ListType,
    NatType,
    SetType,
    TupleType,
    Type,
    TypeVar,
    list_of,
    set_height,
    set_of,
    tuple_of,
    tuple_width,
)
from .values import (
    Atom,
    SRLList,
    SRLSet,
    SRLTuple,
    Value,
    make_list,
    make_set,
    make_tuple,
    python_to_value,
    value_size,
    value_to_python,
)

__all__ = [name for name in dir() if not name.startswith("_")]
