"""Compiling the register IR of :mod:`repro.core.ir` into Python closures.

Each :class:`~repro.core.ir.IRFunction` is turned into one Python function
(generated source, ``exec``-ed once per program): registers become local
variables, pre-bound calls become direct closure invocations through the
shared compile namespace, and the reduce loops become plain ``for`` loops.
Nothing in the hot path walks a tree, chains an environment, or dispatches
on node types — that work was all done once, at lowering time.

Instrumentation and limits
--------------------------

The compiled backend threads a tiny :class:`_Runtime` through every call.
It carries the same :class:`~repro.core.evaluator.EvaluationStats` /
:class:`~repro.core.evaluator.EvaluationLimits` the interpreter uses, and
the *semantically determined* counters match the interpreter exactly:
``inserts``, ``set_reduce_iterations``, ``list_reduce_iterations``,
``function_calls``, ``new_values``, ``max_set_size``,
``max_accumulator_size`` and ``max_list_length`` are all maintained at the
same program points.  Only ``steps`` is coarser: the interpreter ticks once
per AST node visited, while compiled code has no per-node events and ticks
once per reduce iteration and per function call (see DESIGN.md, "What
instrumentation each backend guarantees").  ``max_steps`` budgets therefore
bound the same asymptotic quantity, at a different constant factor.

Resource limits (``max_steps``, ``max_inserts``, ``max_set_size``,
``allow_new``, ``allow_lists``) are enforced at the same operations as the
interpreter, raising the same exception types.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .ast import Expr, Program
from .environment import Database
from .errors import (
    ResourceLimitExceeded,
    SRLCompilationError,
    SRLNameError,
    SRLRuntimeError,
)
from .evaluator import EvaluationLimits, EvaluationStats
from .ir import Block, IRFunction, Instr, Op, lower_program
from .values import (
    Atom,
    SRLList,
    SRLSet,
    SRLTuple,
    Value,
    _value_key,
    max_atom_rank,
    value_equal,
    value_size,
)

__all__ = ["CompiledProgram", "compile_program", "compile_expression"]


class _Runtime:
    """Per-run state threaded through compiled closures: stats, limits, the
    scan order, the ``new`` counter and the recursion guard."""

    __slots__ = ("stats", "limits", "atom_order", "new_counter", "active",
                 "allow_lists", "governor")

    def __init__(self, limits: EvaluationLimits, atom_order: tuple[int, ...] | None,
                 stats: EvaluationStats | None = None, governor=None):
        # A caller-supplied stats object stays observable even when the run
        # aborts on a resource limit (Session relies on this).
        self.stats = stats if stats is not None else EvaluationStats()
        self.limits = limits
        self.atom_order = atom_order
        self.new_counter = 0
        self.active: set[str] = set()
        self.allow_lists = limits.allow_lists
        self.governor = governor

    # --------------------------------------------------------------- ticks

    def tick(self) -> None:
        stats = self.stats
        stats.steps += 1
        limit = self.limits.max_steps
        if limit is not None and stats.steps > limit:
            raise ResourceLimitExceeded("steps", limit, stats.steps)
        governor = self.governor
        if governor is not None:
            governor.tick()

    def call_tick(self) -> None:
        self.stats.function_calls += 1
        self.tick()

    def enter(self, name: str) -> None:
        if name in self.active:
            raise SRLRuntimeError(
                f"recursive call of {name}: SRL functions are closed "
                "under composition only, recursion is not part of the language"
            )
        self.active.add(name)

    def exit(self, name: str) -> None:
        self.active.discard(name)

    # ---------------------------------------------------------- operations

    def insert(self, element: Value, target: Value) -> SRLSet:
        if not isinstance(target, SRLSet):
            raise SRLRuntimeError(f"insert into a non-set: {target!r}")
        stats = self.stats
        stats.inserts += 1
        limit = self.limits.max_inserts
        if limit is not None and stats.inserts > limit:
            raise ResourceLimitExceeded("inserts", limit, stats.inserts)
        result = target.insert(element)
        size = len(result)
        if size > stats.max_set_size:
            stats.max_set_size = size
        size_limit = self.limits.max_set_size
        if size_limit is not None and size > size_limit:
            raise ResourceLimitExceeded("set size", size_limit, size)
        return result

    def choose(self, source: Value) -> Value:
        if not isinstance(source, SRLSet):
            raise SRLRuntimeError(f"choose applied to a non-set: {source!r}")
        if self.atom_order is None:
            return source.choose()
        elements = source.ordered_under(self.atom_order)
        if not elements:
            raise SRLRuntimeError("choose applied to the empty set")
        return elements[0]

    def rest(self, source: Value) -> Value:
        if not isinstance(source, SRLSet):
            raise SRLRuntimeError(f"rest applied to a non-set: {source!r}")
        if self.atom_order is None:
            return source.rest()
        elements = source.ordered_under(self.atom_order)
        if not elements:
            raise SRLRuntimeError("rest applied to the empty set")
        return SRLSet(elements[1:])

    def new(self, source: Value) -> Value:
        if not self.limits.allow_new:
            raise SRLRuntimeError(
                "new (invented values) is disabled: the program is being run "
                "under plain-SRL semantics"
            )
        if not isinstance(source, SRLSet):
            raise SRLRuntimeError(f"new applied to a non-set: {source!r}")
        self.stats.new_values += 1
        self.new_counter = max(self.new_counter, max_atom_rank(source) + 1)
        fresh = Atom(self.new_counter)
        self.new_counter += 1
        return fresh

    def cons(self, item: Value, target: Value) -> SRLList:
        if not isinstance(target, SRLList):
            raise SRLRuntimeError(f"cons onto a non-list: {target!r}")
        result = target.cons(item)
        length = len(result)
        if length > self.stats.max_list_length:
            self.stats.max_list_length = length
        return result

    def emptylist(self) -> SRLList:
        if not self.allow_lists:
            raise SRLRuntimeError("list values are disabled by the evaluation limits")
        return SRLList()

    def check_lists(self) -> None:
        if not self.allow_lists:
            raise SRLRuntimeError("list values are disabled by the evaluation limits")

    def check_new(self) -> None:
        if not self.limits.allow_new:
            raise SRLRuntimeError(
                "new (invented values) is disabled: the program is being run "
                "under plain-SRL semantics"
            )

    def ordered(self, source: SRLSet) -> Sequence[Value]:
        if self.atom_order is None:
            return source.elements
        return source.ordered_under(self.atom_order)

    def note_acc(self, value: Value) -> None:
        stats = self.stats
        size = value_size(value)
        if size > stats.max_accumulator_size:
            stats.max_accumulator_size = size
        if isinstance(value, SRLSet):
            set_size = len(value)
            if set_size > stats.max_set_size:
                stats.max_set_size = set_size
            limit = self.limits.max_set_size
            if limit is not None and set_size > limit:
                raise ResourceLimitExceeded("set size", limit, set_size)
        elif isinstance(value, SRLList):
            if len(value) > stats.max_list_length:
                stats.max_list_length = len(value)


# ------------------------------------------------------------ error helpers


def _make_lookup(database: Database):
    """The database accessor threaded through compiled closures.

    Reads the bindings dict directly (one call level less than
    ``Database.lookup``) and raises the *interpreter's* unbound-name error:
    by the time compiled code executes a LOAD_DB, slot resolution has
    already ruled out every parameter scope, which is exactly the state in
    which ``Environment.lookup`` reports "unbound variable".
    """
    bindings = database._bindings

    def lookup(name: str) -> Value:
        try:
            return bindings[name]
        except KeyError:
            raise SRLNameError(f"unbound variable: {name}") from None

    return lookup


def _raise_runtime(message: str):
    raise SRLRuntimeError(message)


def _raise_name(message: str):
    raise SRLNameError(message)


def _bad_condition(value):
    raise SRLRuntimeError(f"if condition evaluated to a non-boolean: {value!r}")


def _bad_source(value, is_set: bool):
    if is_set:
        raise SRLRuntimeError(f"set-reduce over a non-set: {value!r}")
    raise SRLRuntimeError(f"list-reduce over a non-list: {value!r}")


def _select(value, index: int):
    if not isinstance(value, SRLTuple):
        raise SRLRuntimeError(f"sel_{index} applied to a non-tuple: {value!r}")
    if not 1 <= index <= len(value):
        raise SRLRuntimeError(
            f"tuple selector .{index} out of range for width-{len(value)} tuple"
        )
    return value[index - 1]


# ------------------------------------------------------------------- codegen


class _CodeGen:
    """Emits the Python source of one IR function."""

    def __init__(self, fn: IRFunction, fn_globals: dict[str, str],
                 consts: list, emitted_name: str,
                 guarded_names: frozenset[str] = frozenset()):
        self.fn = fn
        self.fn_globals = fn_globals  # callee name -> generated global name
        self.consts = consts
        self.emitted_name = emitted_name
        self.guarded_names = guarded_names
        self.lines: list[str] = []
        self.indent = 1
        self._reduce_id = 0

    def _line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _const_name(self, value) -> str:
        self.consts.append(value)
        return f"_K{len(self.consts) - 1}"

    def generate(self) -> str:
        fn = self.fn
        params = ", ".join(f"r{slot}" for slot in range(len(fn.params)))
        header = f"def {self.emitted_name}(rt, _lookup{', ' + params if params else ''}):"
        self.lines.append(header)
        self._line("_st = rt.stats")
        if fn.guarded:
            # The interpreter checks the call stack *before* counting the
            # call, so a guard-rejected re-entry must not tick — guarded
            # functions therefore self-tick after the guard passes, and
            # their call sites skip the usual call_tick.
            self._line(f"rt.enter({fn.name!r})")
            self._line("try:")
            self.indent += 1
            self._line("rt.call_tick()")
        self._emit_block(fn.block)
        self._line(f"return r{fn.block.result}")
        if fn.guarded:
            self.indent -= 1
            self._line("finally:")
            self._line(f"    rt.exit({fn.name!r})")
        return "\n".join(self.lines)

    def _emit_block(self, block: Block) -> None:
        for instr in block.instrs:
            self._emit_instr(instr)

    def _emit_instr(self, instr: Instr) -> None:
        op, dest, args = instr.op, instr.dest, instr.args
        if op is Op.CONST:
            self._line(f"r{dest} = {self._const_name(args[0])}")
        elif op is Op.LOAD_DB:
            self._line(f"r{dest} = _lookup({args[0]!r})")
        elif op is Op.TUPLE:
            inner = ", ".join(f"r{slot}" for slot in args[0])
            trailing = "," if len(args[0]) == 1 else ""
            self._line(f"r{dest} = _Tuple(({inner}{trailing}))")
        elif op is Op.SELECT:
            self._line(f"r{dest} = _select(r{args[0]}, {args[1]})")
        elif op is Op.EQUAL:
            self._line(f"r{dest} = _veq(r{args[0]}, r{args[1]})")
        elif op is Op.LESSEQ:
            self._line(
                f"r{dest} = _vk(r{args[0]}, rt.atom_order) <= _vk(r{args[1]}, rt.atom_order)"
            )
        elif op is Op.INSERT:
            self._line(f"r{dest} = rt.insert(r{args[0]}, r{args[1]})")
        elif op is Op.CHOOSE:
            self._line(f"r{dest} = rt.choose(r{args[0]})")
        elif op is Op.REST:
            self._line(f"r{dest} = rt.rest(r{args[0]})")
        elif op is Op.NEW:
            self._line(f"r{dest} = rt.new(r{args[0]})")
        elif op is Op.CONS:
            self._line(f"r{dest} = rt.cons(r{args[0]}, r{args[1]})")
        elif op is Op.EMPTY_LIST:
            self._line(f"r{dest} = rt.emptylist()")
        elif op is Op.CHECK_LISTS:
            self._line("rt.check_lists()")
        elif op is Op.CHECK_NEW:
            self._line("rt.check_new()")
        elif op is Op.CHECK_SOURCE:
            src, is_set = args
            expected = "_Set" if is_set else "_List"
            self._line(f"if not isinstance(r{src}, {expected}): _bad_source(r{src}, {is_set})")
        elif op is Op.CALL:
            callee, arg_slots = args
            call_args = "".join(f", r{slot}" for slot in arg_slots)
            if callee not in self.guarded_names:
                self._line("rt.call_tick()")
            self._line(f"r{dest} = {self.fn_globals[callee]}(rt, _lookup{call_args})")
        elif op is Op.RAISE:
            exc_kind, message = args
            helper = "_raise_name" if exc_kind == "name" else "_raise_runtime"
            self._line(f"r{dest} = {helper}({message!r})")
        elif op is Op.IF:
            cond, then_block, else_block = args
            self._line(f"if r{cond} is True:")
            self.indent += 1
            self._emit_block(then_block)
            self._line(f"r{dest} = r{then_block.result}")
            self.indent -= 1
            self._line(f"elif r{cond} is False:")
            self.indent += 1
            self._emit_block(else_block)
            self._line(f"r{dest} = r{else_block.result}")
            self.indent -= 1
            self._line("else:")
            self._line(f"    _bad_condition(r{cond})")
        elif op is Op.REDUCE:
            self._emit_reduce(dest, args)
        else:  # pragma: no cover - exhaustive over Op
            raise SRLRuntimeError(f"cannot compile IR opcode {op!r}")

    def _emit_reduce(self, dest: int, args: tuple) -> None:
        is_set, src, base, extra, app_block, acc_block, app_slots, acc_slots = args
        rid = self._reduce_id
        self._reduce_id += 1
        counter = "set_reduce_iterations" if is_set else "list_reduce_iterations"
        items = f"rt.ordered(r{src})" if is_set else f"r{src}.items"
        self._line(f"_acc{rid} = r{base}")
        self._line(f"_ext{rid} = r{extra}")
        self._line(f"for _e{rid} in {items}:")
        self.indent += 1
        # The counter is bumped at the top of the body (before any work can
        # raise), which is exactly the interpreter's abort semantics: the
        # iteration being processed counts even when a resource limit stops
        # it mid-body.  Incrementing the stats field directly keeps the loop
        # a single static block — CPython caps statically nested blocks at
        # 20, and nested reduces nest these loops.
        self._line(f"_st.{counter} += 1")
        self._line("rt.tick()")
        self._line(f"r{app_slots[0]} = _e{rid}")
        self._line(f"r{app_slots[1]} = _ext{rid}")
        self._emit_block(app_block)
        self._line(f"r{acc_slots[0]} = r{app_block.result}")
        self._line(f"r{acc_slots[1]} = _acc{rid}")
        self._emit_block(acc_block)
        self._line(f"_acc{rid} = r{acc_block.result}")
        self._line(f"rt.note_acc(_acc{rid})")
        self.indent -= 1
        self._line(f"r{dest} = _acc{rid}")


class CompiledProgram:
    """A program lowered to IR and compiled to Python closures.

    Compilation happens once; every :meth:`run` / :meth:`call` then executes
    the closures against a fresh :class:`_Runtime` and returns ``(value,
    stats)``.  Thread a :class:`~repro.core.engine.Session` for the
    high-level API.
    """

    def __init__(self, program: Program, main: Expr | None = None):
        self.program = program
        self.ir = lower_program(program, main=main)
        self._namespace: dict[str, object] = {
            "_Tuple": SRLTuple,
            "_Set": SRLSet,
            "_List": SRLList,
            "_vk": _value_key,
            "_veq": value_equal,
            "_select": _select,
            "_raise_runtime": _raise_runtime,
            "_raise_name": _raise_name,
            "_bad_condition": _bad_condition,
            "_bad_source": _bad_source,
        }
        fn_globals = {name: f"_f{index}"
                      for index, name in enumerate(self.ir.functions)}
        guarded = frozenset(name for name, fn in self.ir.functions.items()
                            if fn.guarded)
        consts: list = []
        sources: list[str] = []
        for name, fn in self.ir.functions.items():
            sources.append(_CodeGen(fn, fn_globals, consts, fn_globals[name],
                                    guarded).generate())
        if self.ir.main is not None:
            sources.append(_CodeGen(self.ir.main, fn_globals, consts, "_main",
                                    guarded).generate())
        for index, value in enumerate(consts):
            self._namespace[f"_K{index}"] = value
        self.source = "\n\n".join(sources)
        try:
            exec(compile(self.source, f"<srl-compiled:{id(program):x}>", "exec"),
                 self._namespace)
        except SyntaxError as error:
            # CPython caps statically nested blocks at 20; ~19+ nested
            # reduces (each one `for` block, plus `if` arms) exceed it.
            # Session falls back to the interpreter on this error.
            raise SRLCompilationError(
                f"program is too deeply nested for the compiled backend: {error}"
            ) from error
        self._functions = {name: self._namespace[fn_globals[name]]
                           for name in self.ir.functions}
        self._main = self._namespace.get("_main")

    # ------------------------------------------------------------------ API

    def run(self, database: Database | Mapping[str, object] | None = None,
            limits: EvaluationLimits | None = None,
            atom_order: Sequence[int] | None = None,
            stats: EvaluationStats | None = None,
            governor=None) -> tuple[Value, EvaluationStats]:
        """Run the compiled main expression; returns ``(value, stats)``.

        A caller-supplied ``stats`` object is filled in place, so its
        counters remain readable when the run aborts on a limit.
        """
        if self._main is None:
            raise SRLRuntimeError("program has no main expression to evaluate")
        if not isinstance(database, Database):
            database = Database(database or {})
        rt = _Runtime(limits if limits is not None else EvaluationLimits(),
                      tuple(atom_order) if atom_order is not None else None,
                      stats, governor)
        value = self._main(rt, _make_lookup(database))
        return value, rt.stats

    def call(self, name: str, *args: Value,
             database: Database | Mapping[str, object] | None = None,
             limits: EvaluationLimits | None = None,
             atom_order: Sequence[int] | None = None,
             stats: EvaluationStats | None = None,
             governor=None) -> tuple[Value, EvaluationStats]:
        """Invoke a named definition with already-evaluated values."""
        definition = self.program.get(name)
        if len(args) != len(definition.params):
            raise SRLRuntimeError(
                f"{definition.name} expects {len(definition.params)} arguments, "
                f"got {len(args)}"
            )
        if not isinstance(database, Database):
            database = Database(database or {})
        rt = _Runtime(limits if limits is not None else EvaluationLimits(),
                      tuple(atom_order) if atom_order is not None else None,
                      stats, governor)
        if not self.ir.functions[name].guarded:
            # Guarded functions self-tick after their re-entry guard passes
            # (interpreter ordering); everything else is counted here.
            rt.call_tick()
        value = self._functions[name](rt, _make_lookup(database), *args)
        return value, rt.stats


def compile_program(program: Program, main: Expr | None = None) -> CompiledProgram:
    """Lower and compile ``program`` (optionally overriding its main)."""
    return CompiledProgram(program, main=main)


def compile_expression(expr: Expr, program: Program | None = None) -> CompiledProgram:
    """Compile a standalone expression (with optional auxiliary definitions)."""
    return CompiledProgram(program if program is not None else Program(), main=expr)
