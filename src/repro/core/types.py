"""The SRL type system.

The paper assumes a small universe of types:

* ``boolean``
* a base *atom* type with a finite, totally ordered domain (the database
  domain ``D = {0, ..., n-1}``),
* the natural numbers (only in the extensions of Section 5),
* fixed-arity tuples (records without attribute names),
* finite sets ``set(T)``,
* finite lists ``list(T)`` (only in LRL, the list-reduce variant).

Types are immutable value objects.  The module also provides the syntactic
measures the paper's results hinge on:

* :func:`set_height` — Definition 2.2,
* :func:`tuple_width` and :func:`tuple_nesting` — Proposition 3.8,

and a small unification engine (:func:`unify`) used by the type checker to
handle the polymorphic ``emptyset`` (rule 7: ``set(alpha)`` where ``alpha``
matches any type).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import SRLTypeError

__all__ = [
    "Type",
    "BoolType",
    "AtomType",
    "NatType",
    "TupleType",
    "SetType",
    "ListType",
    "TypeVar",
    "BOOL",
    "ATOM",
    "NAT",
    "set_of",
    "list_of",
    "tuple_of",
    "set_height",
    "list_height",
    "tuple_width",
    "tuple_nesting",
    "max_tuple_width",
    "is_ground",
    "free_type_vars",
    "Substitution",
    "unify",
    "apply_substitution",
    "fresh_type_var",
]


class Type:
    """Base class for SRL types.  Instances are immutable and hashable."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


@dataclass(frozen=True)
class BoolType(Type):
    """The type of ``true`` and ``false``."""

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class AtomType(Type):
    """The finite, totally ordered base domain (database elements).

    The paper mostly works with a single base type with a finite domain; the
    ordering on atoms is the implementation order used by ``choose``.
    """

    def __str__(self) -> str:
        return "atom"


@dataclass(frozen=True)
class NatType(Type):
    """Natural numbers — only available in the Section 5 extensions
    (SRL + new / unbounded successor)."""

    def __str__(self) -> str:
        return "nat"


@dataclass(frozen=True)
class TupleType(Type):
    """A fixed-arity tuple type ``[T1, ..., Tn]`` (rule 4)."""

    fields: tuple[Type, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.fields)
        return f"[{inner}]"

    @property
    def width(self) -> int:
        return len(self.fields)


@dataclass(frozen=True)
class SetType(Type):
    """``set(T)`` — a finite set whose elements have type ``T`` (rules 7-9)."""

    element: Type

    def __str__(self) -> str:
        return f"set({self.element})"


@dataclass(frozen=True)
class ListType(Type):
    """``list(T)`` — only available in LRL, the list-reduce variant."""

    element: Type

    def __str__(self) -> str:
        return f"list({self.element})"


_COUNTER = {"n": 0}


def fresh_type_var(hint: str = "a") -> "TypeVar":
    """Return a globally fresh type variable (used for ``emptyset``)."""
    _COUNTER["n"] += 1
    return TypeVar(f"{hint}{_COUNTER['n']}")


@dataclass(frozen=True)
class TypeVar(Type):
    """A unification variable standing for an as-yet-unknown type."""

    name: str

    def __str__(self) -> str:
        return f"'{self.name}"


BOOL = BoolType()
ATOM = AtomType()
NAT = NatType()


def set_of(element: Type) -> SetType:
    """Convenience constructor for ``set(element)``."""
    return SetType(element)


def list_of(element: Type) -> ListType:
    """Convenience constructor for ``list(element)``."""
    return ListType(element)


def tuple_of(*fields: Type) -> TupleType:
    """Convenience constructor for ``[f1, ..., fn]``."""
    return TupleType(tuple(fields))


def _walk(t: Type) -> Iterator[Type]:
    """Yield ``t`` and every type nested inside it."""
    yield t
    if isinstance(t, TupleType):
        for f in t.fields:
            yield from _walk(f)
    elif isinstance(t, (SetType, ListType)):
        yield from _walk(t.element)


def set_height(t: Type) -> int:
    """Definition 2.2: ``set-height(base) = 0``,
    ``set-height(set of a) = 1 + set-height(a)``.

    For tuples the height is the maximum over the components, so a set of
    tuples whose components are themselves sets has height 2.
    """
    if isinstance(t, SetType):
        return 1 + set_height(t.element)
    if isinstance(t, ListType):
        return set_height(t.element)
    if isinstance(t, TupleType):
        return max((set_height(f) for f in t.fields), default=0)
    return 0


def list_height(t: Type) -> int:
    """The list analogue of :func:`set_height` (used for LRL)."""
    if isinstance(t, ListType):
        return 1 + list_height(t.element)
    if isinstance(t, SetType):
        return list_height(t.element)
    if isinstance(t, TupleType):
        return max((list_height(f) for f in t.fields), default=0)
    return 0


def tuple_width(t: Type) -> int:
    """The arity of ``t`` when it is a tuple type, otherwise 1.

    Proposition 3.8 bounds the size of any constructible set by ``O(n^w)``
    where ``w`` is the tuple width of the element type.
    """
    if isinstance(t, TupleType):
        return t.width
    return 1


def tuple_nesting(t: Type) -> int:
    """The depth of tuple nesting in ``t`` (Proposition 3.8's ``l``)."""
    if isinstance(t, TupleType):
        return 1 + max((tuple_nesting(f) for f in t.fields), default=0)
    if isinstance(t, (SetType, ListType)):
        return tuple_nesting(t.element)
    return 0


def max_tuple_width(t: Type) -> int:
    """The maximum tuple arity occurring anywhere inside ``t``.

    This is the ``a`` ("width") of Section 6, used in the DTIME(n^{ad})
    bound of Proposition 6.1.
    """
    widths = [sub.width for sub in _walk(t) if isinstance(sub, TupleType)]
    return max(widths, default=1)


def is_ground(t: Type) -> bool:
    """True when ``t`` contains no unification variables."""
    return not any(isinstance(sub, TypeVar) for sub in _walk(t))


def free_type_vars(t: Type) -> set[str]:
    """The names of the unification variables occurring in ``t``."""
    return {sub.name for sub in _walk(t) if isinstance(sub, TypeVar)}


Substitution = dict[str, Type]


def apply_substitution(t: Type, subst: Substitution) -> Type:
    """Apply ``subst`` (a map from type-variable names to types) to ``t``."""
    if isinstance(t, TypeVar):
        replacement = subst.get(t.name)
        if replacement is None:
            return t
        # Chase chains created by union-find style composition.
        return apply_substitution(replacement, subst)
    if isinstance(t, TupleType):
        return TupleType(tuple(apply_substitution(f, subst) for f in t.fields))
    if isinstance(t, SetType):
        return SetType(apply_substitution(t.element, subst))
    if isinstance(t, ListType):
        return ListType(apply_substitution(t.element, subst))
    return t


def _occurs(name: str, t: Type, subst: Substitution) -> bool:
    t = apply_substitution(t, subst)
    if isinstance(t, TypeVar):
        return t.name == name
    if isinstance(t, TupleType):
        return any(_occurs(name, f, subst) for f in t.fields)
    if isinstance(t, (SetType, ListType)):
        return _occurs(name, t.element, subst)
    return False


def unify(t1: Type, t2: Type, subst: Substitution | None = None) -> Substitution:
    """Unify two types, extending and returning the substitution.

    Raises :class:`SRLTypeError` when the types cannot be made equal.  This
    is only needed because ``emptyset`` is polymorphic; everything else in
    the language is monomorphic.
    """
    subst = dict(subst) if subst is not None else {}
    t1 = apply_substitution(t1, subst)
    t2 = apply_substitution(t2, subst)

    if t1 == t2:
        return subst
    if isinstance(t1, TypeVar):
        if _occurs(t1.name, t2, subst):
            raise SRLTypeError(f"occurs check failed: {t1} in {t2}")
        subst[t1.name] = t2
        return subst
    if isinstance(t2, TypeVar):
        return unify(t2, t1, subst)
    if isinstance(t1, SetType) and isinstance(t2, SetType):
        return unify(t1.element, t2.element, subst)
    if isinstance(t1, ListType) and isinstance(t2, ListType):
        return unify(t1.element, t2.element, subst)
    if isinstance(t1, TupleType) and isinstance(t2, TupleType):
        if t1.width != t2.width:
            raise SRLTypeError(
                f"cannot unify tuple types of different widths: {t1} vs {t2}"
            )
        for f1, f2 in zip(t1.fields, t2.fields):
            subst = unify(f1, f2, subst)
        return subst
    raise SRLTypeError(f"cannot unify {t1} with {t2}")
