"""Exception hierarchy for the SRL reproduction.

Every error raised by the library derives from :class:`SRLError`, so callers
can catch a single base class.  The split mirrors the phases of working with
an SRL program: parsing the surface syntax, type checking, checking a
syntactic restriction (SRL / BASRL / SRFO+TC / ...), and finally evaluation.
"""

from __future__ import annotations


class SRLError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SRLSyntaxError(SRLError):
    """Raised by the surface-syntax parser on malformed input.

    Carries the (1-based) line and column of the offending token when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SRLTypeError(SRLError):
    """Raised by the type checker when an expression is ill typed."""


class SRLNameError(SRLError):
    """Raised when an unbound variable or unknown definition is referenced."""


class SRLRuntimeError(SRLError):
    """Raised by the evaluator on a dynamic error (e.g. ``choose`` on the
    empty set, selecting a component that does not exist, applying ``new``
    when invented values are not enabled)."""


class SRLCompilationError(SRLError):
    """Raised when a program cannot be lowered/compiled to Python closures
    (e.g. reduce nesting beyond CPython's static-block limit).  The
    :class:`~repro.core.engine.Session` facade catches this and falls back
    to the interpreter backend, so callers normally never see it."""


class RestrictionViolation(SRLError):
    """Raised (or collected) when a program falls outside a language
    restriction such as SRL's set-height <= 1 or BASRL's flat accumulator.

    ``violations`` is a list of human-readable reasons; a checker may either
    raise this exception or return the list, depending on the API used.
    """

    def __init__(self, restriction: str, violations: list[str]):
        self.restriction = restriction
        self.violations = list(violations)
        summary = "; ".join(self.violations) if self.violations else "unspecified violation"
        super().__init__(f"program is not in {restriction}: {summary}")


class InvalidDatabaseError(SRLRuntimeError):
    """Raised when JSON-shaped input (a database or structure file) is
    malformed: wrong-arity tuples, non-list facts, values that are not an
    SRL value, relations referenced but never defined.  Messages are
    path-qualified (``EDGES[3]: ...``) so the offending fragment can be
    found in the input file; the CLI maps this to exit code 2 (a bad
    input, not an engine failure)."""


class SnapshotError(InvalidDatabaseError):
    """Raised when a binary structure snapshot cannot be read: bad magic,
    unsupported version, a header that is not valid JSON, section offsets
    pointing past the end of the file, or a payload truncated mid-word.
    Subclasses :class:`InvalidDatabaseError` so the CLI maps it to exit
    code 2 (bad input) without new plumbing."""


class ResourceLimitExceeded(SRLRuntimeError):
    """Raised when evaluation exceeds a configured budget — the classic
    step / insert / set-size limits of :class:`EvaluationLimits`, or one
    of the :class:`~repro.core.governor.Budget` resources (wall-clock
    deadline, rows materialized, fixpoint rounds, memo entries,
    cooperative cancellation), each of which raises the matching subclass
    below.  Benchmarks use generous limits; tests use tight ones to assert
    that restricted programs stay cheap.

    ``stats`` optionally carries the partial execution counters at the
    moment the budget blew (a :class:`~repro.logic.plan.PlanStats` or
    :class:`~repro.core.evaluator.EvaluationStats`), so callers can see
    *how far* the aborted evaluation got."""

    def __init__(self, resource: str, limit, used, stats=None):
        super().__init__(f"{resource} limit exceeded: used {used}, limit {limit}")
        self.resource = resource
        self.limit = limit
        self.used = used
        self.stats = stats


class DeadlineExceeded(ResourceLimitExceeded):
    """The wall-clock deadline of a :class:`~repro.core.governor.Budget`
    passed before evaluation finished."""


class EvaluationCancelled(ResourceLimitExceeded):
    """The budget's cooperative :class:`~repro.core.governor.CancelToken`
    was cancelled; the evaluation stopped at the next checkpoint."""

    def __init__(self, stats=None):
        super().__init__("cancellation", 0, 1, stats=stats)


class RowLimitExceeded(ResourceLimitExceeded):
    """Plan execution materialized more rows than the budget's
    ``max_rows_materialized`` allows (checked *before* a domain product is
    enumerated, so an adversarial ``n^k`` complement aborts without first
    allocating it)."""


class FixpointRoundLimitExceeded(ResourceLimitExceeded):
    """A fixed-point or closure iteration exceeded the budget's
    ``max_fixpoint_rounds``."""


class MemoLimitExceeded(ResourceLimitExceeded):
    """Storing one more memoized relation would exceed the budget's
    ``max_memo_entries``."""


class MemoryLimitExceeded(ResourceLimitExceeded):
    """Resident working-set bytes (packed columnar payloads: bitset words,
    CSR offset/target arrays) exceeded the budget's ``max_bytes_resident``.
    The estimate is structural — words held by live kernels, not the
    process RSS — so it is deterministic and testable."""


# --------------------------------------------------------- service taxonomy
#
# The query service (``repro.service``) extends PR 6's single-process
# failure semantics — "correct answer or clean error, never wrong" —
# across process boundaries.  Every way a request can fail *between*
# processes gets its own type, so clients (and the chaos availability
# gate) can tell a dead worker from a full queue from a blown budget.


class ServiceError(SRLError):
    """Base class for failures of the query service layer itself —
    worker supervision, admission control, and the wire protocol — as
    opposed to failures of the query being evaluated."""


class ProtocolError(ServiceError):
    """A length-prefixed JSON frame could not be read or written: the
    stream ended mid-frame, the length prefix is implausible, or the body
    is not valid JSON.  Between server and worker this is treated exactly
    like a worker crash (the connection is no longer trustworthy)."""


class WorkerCrashed(ServiceError):
    """A worker process died (pipe EOF, heartbeat loss, or a hang past
    the deadline grace) while holding this request, and the retry budget
    could not produce an answer from a healthy worker.

    ``attempts`` counts how many workers tried the request; ``stats``
    optionally carries whatever partial counters the supervisor knows
    (e.g. the per-attempt worker pids) — never a partial *answer*: a
    request either completes with the full, correct relation or with a
    typed error."""

    def __init__(self, message: str, attempts: int = 1, stats=None):
        super().__init__(message)
        self.attempts = attempts
        self.stats = stats


class Overloaded(ServiceError):
    """Admission control shed this request: the bounded queue is full (or
    the pool has no healthy worker and the caller's deadline cannot wait
    out the respawn backoff).  ``retry_after`` is the server's suggested
    wait in seconds — the HTTP layer surfaces it as a ``Retry-After``
    header."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after
