"""Exception hierarchy for the SRL reproduction.

Every error raised by the library derives from :class:`SRLError`, so callers
can catch a single base class.  The split mirrors the phases of working with
an SRL program: parsing the surface syntax, type checking, checking a
syntactic restriction (SRL / BASRL / SRFO+TC / ...), and finally evaluation.
"""

from __future__ import annotations


class SRLError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SRLSyntaxError(SRLError):
    """Raised by the surface-syntax parser on malformed input.

    Carries the (1-based) line and column of the offending token when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SRLTypeError(SRLError):
    """Raised by the type checker when an expression is ill typed."""


class SRLNameError(SRLError):
    """Raised when an unbound variable or unknown definition is referenced."""


class SRLRuntimeError(SRLError):
    """Raised by the evaluator on a dynamic error (e.g. ``choose`` on the
    empty set, selecting a component that does not exist, applying ``new``
    when invented values are not enabled)."""


class SRLCompilationError(SRLError):
    """Raised when a program cannot be lowered/compiled to Python closures
    (e.g. reduce nesting beyond CPython's static-block limit).  The
    :class:`~repro.core.engine.Session` facade catches this and falls back
    to the interpreter backend, so callers normally never see it."""


class RestrictionViolation(SRLError):
    """Raised (or collected) when a program falls outside a language
    restriction such as SRL's set-height <= 1 or BASRL's flat accumulator.

    ``violations`` is a list of human-readable reasons; a checker may either
    raise this exception or return the list, depending on the API used.
    """

    def __init__(self, restriction: str, violations: list[str]):
        self.restriction = restriction
        self.violations = list(violations)
        summary = "; ".join(self.violations) if self.violations else "unspecified violation"
        super().__init__(f"program is not in {restriction}: {summary}")


class ResourceLimitExceeded(SRLRuntimeError):
    """Raised when evaluation exceeds a configured step / insert / set-size
    budget.  Benchmarks use generous limits; tests use tight ones to assert
    that restricted programs stay cheap."""

    def __init__(self, resource: str, limit: int, used: int):
        super().__init__(f"{resource} limit exceeded: used {used}, limit {limit}")
        self.resource = resource
        self.limit = limit
        self.used = used
