"""Seed-equivalent reference implementations, kept for differential testing
and for the perf-trajectory benchmarks.

The optimized value layer (cached canonical keys, linear-merge union,
sorted-input detection — see DESIGN.md) must agree *exactly* with the
original uncached algorithms.  This module keeps those originals around in
two forms:

* :func:`value_key_reference` / :func:`value_sort_reference` — the seed's
  recursive key computation, recomputed from scratch on every call, with no
  memoization anywhere.  Property tests compare the cached keys against
  these on randomly generated nested values and random ``atom_order``
  permutations.

* :func:`legacy_mode` — a context manager that flips the whole runtime
  (``SRLSet`` construction, ``insert``, ``union``, membership, hashing,
  ``value_size``, and the evaluator's ``choose``/``rest`` fast paths) back
  to the seed code paths.  ``benchmarks/bench_perf_overhaul.py`` uses it to
  time the identical workload on the seed implementation and on the
  optimized one, which is how the ≥10× speedup figures in
  ``BENCH_perf.json`` are measured.

Nothing in the production code path imports this module.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Sequence

from .errors import SRLRuntimeError
from .values import Atom, SRLList, SRLSet, SRLTuple, _set_caching, caches_enabled

__all__ = [
    "value_key_reference",
    "value_sort_reference",
    "choose_reference",
    "rest_reference",
    "legacy_mode",
]


def value_key_reference(value: "Value", atom_order: Sequence[int] | None = None):
    """The seed's :func:`~repro.core.values.value_key`: a full recursive
    recomputation with no caching.  Used as the differential oracle for the
    cached keys."""
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, int):
        return (1, value)
    if isinstance(value, Atom):
        rank = value.rank if atom_order is None else atom_order[value.rank]
        return (2, rank)
    if isinstance(value, SRLTuple):
        return (3, len(value), tuple(value_key_reference(v, atom_order) for v in value))
    if isinstance(value, SRLSet):
        ordered = (
            value.elements
            if atom_order is None
            else tuple(sorted(value.elements,
                              key=lambda v: value_key_reference(v, atom_order)))
        )
        return (4, len(ordered), tuple(value_key_reference(v, atom_order) for v in ordered))
    if isinstance(value, SRLList):
        return (5, len(value.items),
                tuple(value_key_reference(v, atom_order) for v in value.items))
    raise SRLRuntimeError(f"not an SRL value: {value!r}")


def value_sort_reference(values: Iterable["Value"],
                         atom_order: Sequence[int] | None = None) -> list["Value"]:
    """Sort by the recomputed reference key."""
    return sorted(values, key=lambda v: value_key_reference(v, atom_order))


def choose_reference(value: SRLSet, atom_order: Sequence[int] | None = None) -> "Value":
    """Brute-force ``choose``: scan every element for the key minimum."""
    if value.is_empty():
        raise SRLRuntimeError("choose applied to the empty set")
    return min(value.elements, key=lambda v: value_key_reference(v, atom_order))


def rest_reference(value: SRLSet, atom_order: Sequence[int] | None = None) -> SRLSet:
    """Brute-force ``rest``: rebuild the set without the key minimum."""
    minimum = choose_reference(value, atom_order)
    return SRLSet([v for v in value.elements if v != minimum])


@contextmanager
def legacy_mode():
    """Run the enclosed block on the seed's uncached code paths.

    Only benchmarks and differential tests should use this.  The flag is
    process-global, so the block must not run concurrently with optimized
    evaluation (the test suite and benchmarks are single-threaded).
    """
    previous = caches_enabled()
    _set_caching(False)
    try:
        yield
    finally:
        _set_caching(previous)
