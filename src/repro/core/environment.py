"""Lexical environments and input databases for the SRL evaluator.

A :class:`Database` is the program's input: a mapping from names to SRL
values (typically sets of atoms or sets of tuples).  The paper phrases this
as "the input to any set-reduce expression is a structure or database
specified by the name(s) of set(s) or relation(s)".

An :class:`Environment` is a small chained scope used for lambda parameters
and function-call parameters; lookups fall back to the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .errors import SRLNameError
from .values import Value, is_value, python_to_value

__all__ = ["Database", "Environment"]


class Database:
    """The input structure of an SRL program.

    Values may be given either as SRL values or as plain Python data (which
    is converted via :func:`repro.core.values.python_to_value`).
    """

    def __init__(self, bindings: Mapping[str, object] | None = None):
        self._bindings: dict[str, Value] = {}
        if bindings:
            for name, value in bindings.items():
                self.bind(name, value)

    def bind(self, name: str, value: object) -> "Database":
        """Bind ``name`` to ``value`` (converted to an SRL value if needed)."""
        if not is_value(value):
            value = python_to_value(value)
        self._bindings[name] = value  # type: ignore[assignment]
        return self

    def lookup(self, name: str) -> Value:
        try:
            return self._bindings[name]
        except KeyError:
            raise SRLNameError(f"unbound database name: {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def names(self) -> tuple[str, ...]:
        return tuple(self._bindings)

    def items(self):
        return self._bindings.items()

    def copy(self) -> "Database":
        clone = Database()
        clone._bindings = dict(self._bindings)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(self._bindings)
        return f"Database({names})"


@dataclass
class Environment:
    """A chained lexical scope on top of a :class:`Database`."""

    database: Database
    bindings: dict[str, Value] = field(default_factory=dict)
    parent: "Environment | None" = None

    def child(self, bindings: Mapping[str, Value]) -> "Environment":
        """A new scope whose lookups fall back to this one."""
        return Environment(self.database, dict(bindings), self)

    def lookup(self, name: str) -> Value:
        scope: Environment | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        if name in self.database:
            return self.database.lookup(name)
        raise SRLNameError(f"unbound variable: {name}")

    def __contains__(self, name: str) -> bool:
        scope: Environment | None = self
        while scope is not None:
            if name in scope.bindings:
                return True
            scope = scope.parent
        return name in self.database
