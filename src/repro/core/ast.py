"""The abstract syntax of the set-reduce language family.

The node classes below follow the ten formation rules of Section 2 of the
paper, plus the extensions the paper studies in later sections:

==========================  ==============================================
Paper rule / section         AST node
==========================  ==============================================
rule 1  (true / false)       :class:`BoolConst`
rule 2  (if-then-else)       :class:`If`
rule 3  (constants)          :class:`AtomConst`, :class:`NatConst`
rule 4  (tuple construction) :class:`TupleExpr`
rule 5  (sel_i)              :class:`Select`
rule 6  (equality)           :class:`Equal`
rule 7  (emptyset)           :class:`EmptySet`
rule 8  (insert)             :class:`Insert`
rule 9  (set-reduce)         :class:`SetReduce` with :class:`Lambda` bodies
rule 10 (parentheses)        implicit
inductive language           :class:`Var` (free variables / database names)
composition                  :class:`Call` of a named :class:`FunctionDef`
ambient order (<=)           :class:`LessEq`
Section 5 (invented values)  :class:`New`
Section 5 / LRL (lists)      :class:`EmptyList`, :class:`ConsList`,
                             :class:`ListReduce`
semantics primitives         :class:`Choose`, :class:`Rest` (exposed for
                             the Section 5/6 constructions; SRL programs
                             normally reach them only through set-reduce)
==========================  ==============================================

A whole program is a :class:`Program`: a sequence of named function
definitions (the class of set-reduce functions is "closed under
composition", Definition 2.1) plus a designated main expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .errors import SRLNameError
from .types import Type
from .values import Atom

__all__ = [
    "Expr",
    "BoolConst",
    "AtomConst",
    "NatConst",
    "Var",
    "If",
    "TupleExpr",
    "Select",
    "Equal",
    "LessEq",
    "EmptySet",
    "Insert",
    "SetReduce",
    "Lambda",
    "Call",
    "New",
    "Choose",
    "Rest",
    "EmptyList",
    "ConsList",
    "ListReduce",
    "FunctionDef",
    "Program",
    "children",
    "walk",
    "free_variables",
    "called_functions",
    "count_nodes",
]


class Expr:
    """Base class of all SRL expressions."""

    def __repr__(self) -> str:  # pragma: no cover - delegated to pretty printer
        from .pretty import pretty

        return pretty(self)


@dataclass(frozen=True, repr=False)
class BoolConst(Expr):
    """``true`` or ``false`` (rule 1)."""

    value: bool


@dataclass(frozen=True, repr=False)
class AtomConst(Expr):
    """A constant of the base (atom) type (rule 3)."""

    value: Atom


@dataclass(frozen=True, repr=False)
class NatConst(Expr):
    """A natural-number literal (Section 5 extension)."""

    value: int


@dataclass(frozen=True, repr=False)
class Var(Expr):
    """A variable: either bound by an enclosing :class:`Lambda` or free, in
    which case it names a database relation / set supplied as input."""

    name: str


@dataclass(frozen=True, repr=False)
class If(Expr):
    """``if cond then then_branch else else_branch`` (rule 2)."""

    cond: Expr
    then_branch: Expr
    else_branch: Expr


@dataclass(frozen=True, repr=False)
class TupleExpr(Expr):
    """``[e1, ..., en]`` (rule 4)."""

    items: tuple[Expr, ...]


@dataclass(frozen=True, repr=False)
class Select(Expr):
    """``sel_i(e)`` / the paper's ``e.i`` — 1-based component selection
    (rule 5)."""

    index: int
    target: Expr


@dataclass(frozen=True, repr=False)
class Equal(Expr):
    """``e1 = e2`` (rule 6)."""

    left: Expr
    right: Expr


@dataclass(frozen=True, repr=False)
class LessEq(Expr):
    """``e1 <= e2`` — the ambient implementation order on the base domain.

    The paper notes the ordering relation is "made available to us" because
    any computation must use an ordering; SRFO+TC / SRFO+DTC list ``<=``
    among their primitives explicitly.
    """

    left: Expr
    right: Expr


@dataclass(frozen=True, repr=False)
class EmptySet(Expr):
    """``emptyset`` of type ``set(alpha)`` (rule 7)."""


@dataclass(frozen=True, repr=False)
class Insert(Expr):
    """``insert(element, target)`` (rule 8)."""

    element: Expr
    target: Expr


@dataclass(frozen=True, repr=False)
class Lambda(Expr):
    """``lambda(x, y) body`` — only ``x`` and ``y`` may occur free in
    ``body`` (rule 9); all other context must be threaded through the
    ``extra`` parameter of set-reduce."""

    params: tuple[str, str]
    body: Expr


@dataclass(frozen=True, repr=False)
class SetReduce(Expr):
    """``set-reduce(source, app, acc, base, extra)`` (rule 9).

    Semantics (paper, Section 2)::

        set-reduce(s, app, acc, base, extra) =
            if s = emptyset then base
            else acc(app(choose(s), extra),
                     set-reduce(rest(s), app, acc, base, extra))
    """

    source: Expr
    app: Lambda
    acc: Lambda
    base: Expr
    extra: Expr


@dataclass(frozen=True, repr=False)
class Call(Expr):
    """Invocation of a named :class:`FunctionDef` (closure under
    composition, Definition 2.1)."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True, repr=False)
class New(Expr):
    """``new(S)`` — return an element not in ``S`` (Section 5).

    Equivalent to an unbounded successor; adding it to SRL lifts the
    expressive power from P to the primitive recursive functions
    (Theorem 5.2)."""

    source: Expr


@dataclass(frozen=True, repr=False)
class Choose(Expr):
    """``choose(S)`` — the minimal element of ``S`` in the implementation
    order.  Part of the semantics of set-reduce; exposed as a primitive for
    the Section 5/6 constructions."""

    source: Expr


@dataclass(frozen=True, repr=False)
class Rest(Expr):
    """``rest(S)`` — ``S`` minus its minimal element."""

    source: Expr


@dataclass(frozen=True, repr=False)
class EmptyList(Expr):
    """The empty list (LRL)."""


@dataclass(frozen=True, repr=False)
class ConsList(Expr):
    """``cons(item, target)`` — list prepend (LRL / SRL + cons,
    Corollary 5.5)."""

    item: Expr
    target: Expr


@dataclass(frozen=True, repr=False)
class ListReduce(Expr):
    """``list-reduce(source, app, acc, base, extra)`` — identical to
    set-reduce except that it traverses a list, whose length (unlike a
    set's cardinality) is not bounded by the domain size."""

    source: Expr
    app: Lambda
    acc: Lambda
    base: Expr
    extra: Expr


@dataclass(frozen=True)
class FunctionDef:
    """A named, possibly recursive-free function definition.

    ``param_types`` and ``return_type`` are optional annotations; when
    present the type checker verifies them, when absent it infers them.
    """

    name: str
    params: tuple[str, ...]
    body: Expr
    param_types: tuple[Optional[Type], ...] = ()
    return_type: Optional[Type] = None

    def __post_init__(self) -> None:
        if self.param_types and len(self.param_types) != len(self.params):
            raise SRLNameError(
                f"function {self.name}: {len(self.params)} parameters but "
                f"{len(self.param_types)} parameter types"
            )


@dataclass
class Program:
    """A collection of function definitions plus a main expression.

    The free variables of ``main`` (and of any definition body beyond its
    parameters) name the input database sets/relations.
    """

    definitions: dict[str, FunctionDef] = field(default_factory=dict)
    main: Optional[Expr] = None

    def define(self, definition: FunctionDef) -> "Program":
        """Add (or replace) a definition; returns ``self`` for chaining."""
        self.definitions[definition.name] = definition
        return self

    def get(self, name: str) -> FunctionDef:
        try:
            return self.definitions[name]
        except KeyError:
            raise SRLNameError(f"unknown function: {name}") from None

    def all_expressions(self) -> Iterator[Expr]:
        """Yield the main expression and every definition body."""
        for definition in self.definitions.values():
            yield definition.body
        if self.main is not None:
            yield self.main


def children(expr: Expr) -> tuple[Expr, ...]:
    """The immediate sub-expressions of ``expr``."""
    if isinstance(expr, If):
        return (expr.cond, expr.then_branch, expr.else_branch)
    if isinstance(expr, TupleExpr):
        return expr.items
    if isinstance(expr, Select):
        return (expr.target,)
    if isinstance(expr, (Equal, LessEq)):
        return (expr.left, expr.right)
    if isinstance(expr, Insert):
        return (expr.element, expr.target)
    if isinstance(expr, ConsList):
        return (expr.item, expr.target)
    if isinstance(expr, Lambda):
        return (expr.body,)
    if isinstance(expr, (SetReduce, ListReduce)):
        return (expr.source, expr.app, expr.acc, expr.base, expr.extra)
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, (New, Choose, Rest)):
        return (expr.source,)
    return ()


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def free_variables(expr: Expr, bound: frozenset[str] = frozenset()) -> set[str]:
    """The free variables of ``expr`` (database names, typically)."""
    if isinstance(expr, Var):
        return set() if expr.name in bound else {expr.name}
    if isinstance(expr, Lambda):
        return free_variables(expr.body, bound | set(expr.params))
    result: set[str] = set()
    for child in children(expr):
        result |= free_variables(child, bound)
    return result


def called_functions(expr: Expr) -> set[str]:
    """The names of all functions invoked (directly) inside ``expr``."""
    return {node.name for node in walk(expr) if isinstance(node, Call)}


def count_nodes(expr: Expr) -> int:
    """The number of AST nodes in ``expr`` (a crude program-size measure)."""
    return sum(1 for _ in walk(expr))
