"""Resource governance: budgets, deadlines, and cooperative cancellation.

The source paper gets its mileage from *bounding* the resources of a
logic; the engine mirrors that stance operationally.  A :class:`Budget`
declares what a single evaluation may consume — wall-clock time, rows
materialized by the plan backend, fixed-point rounds, memo entries — plus
a cooperative :class:`CancelToken`.  ``Budget.start()`` mints a
:class:`Governor`, the mutable per-run enforcement object that every
layer checks at its natural choke points:

=====================================  =====================================
choke point                            check
=====================================  =====================================
``Plan.execute`` (every node)          ``tick`` + ``note_rows``
join / semijoin probe loops            chunked ``check_time``
``DomainProduct`` / ``Closure``        ``check_rows_ahead`` (before the
                                       ``n^k`` enumeration, not after)
fixpoint / closure round boundaries    ``note_round``
optimizer pass boundaries              ``check_time``
tree-walking evaluator ``_tick``       ``tick``
compiled runtime ``tick``              ``tick``
memo stores                            ``check_memo``
=====================================  =====================================

All violations raise a subclass of
:class:`~repro.core.errors.ResourceLimitExceeded` carrying the partial
execution stats, so a caller can see how far the aborted query got.

A governor is intentionally *not* thread-safe and *not* reusable across
queries: counters like rows-materialized are per-run, independent of any
cumulative :class:`~repro.logic.plan.PlanStats` a caller accumulates
across queries.  The one cross-thread piece is :class:`CancelToken`,
whose single boolean flip is safe to perform from another thread.
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass

from .errors import (
    DeadlineExceeded,
    EvaluationCancelled,
    FixpointRoundLimitExceeded,
    MemoLimitExceeded,
    MemoryLimitExceeded,
    RowLimitExceeded,
)

__all__ = ["Budget", "CancelToken", "DegradationEvent", "Governor",
           "cancel_on_signals"]


class CancelToken:
    """A cooperative cancellation flag.

    ``cancel()`` may be called from any thread; the evaluation observes it
    at the next governor checkpoint and raises
    :class:`~repro.core.errors.EvaluationCancelled`.  Tokens are one-shot:
    once cancelled, every evaluation sharing the token stops.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancelToken(cancelled={self._cancelled})"


@dataclass(frozen=True)
class Budget:
    """A declarative resource budget for one evaluation.

    ``None`` means unlimited for that resource.  ``check_interval``
    amortizes the wall-clock check: hot loops call ``Governor.tick()``
    per step, and only every ``check_interval``-th tick pays for
    ``time.monotonic()``.
    """

    deadline_seconds: float | None = None
    max_rows_materialized: int | None = None
    max_fixpoint_rounds: int | None = None
    max_memo_entries: int | None = None
    cancel_token: CancelToken | None = None
    check_interval: int = 1024
    max_bytes_resident: int | None = None

    def __post_init__(self) -> None:
        for name in ("deadline_seconds", "max_rows_materialized",
                     "max_fixpoint_rounds", "max_memo_entries",
                     "max_bytes_resident"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"Budget.{name} must be >= 0, got {value!r}")
        if self.check_interval < 1:
            raise ValueError("Budget.check_interval must be >= 1")

    @property
    def unlimited(self) -> bool:
        return (self.deadline_seconds is None
                and self.max_rows_materialized is None
                and self.max_fixpoint_rounds is None
                and self.max_memo_entries is None
                and self.cancel_token is None
                and self.max_bytes_resident is None)

    def start(self, stats=None) -> "Governor":
        """Mint the per-run enforcement object.  ``stats`` (typically a
        :class:`~repro.logic.plan.PlanStats`) is attached to any raised
        :class:`ResourceLimitExceeded` as the partial-progress report."""
        return Governor(self, stats=stats)


@dataclass(frozen=True)
class DegradationEvent:
    """A record of one rung down the degradation ladder.

    ``stage`` names where the failure happened (``"optimize"``,
    ``"plan"``, ``"memo"``); ``fallback`` what the engine did instead
    (``"raw-plan"``, ``"tuple"``, ``"no-memo"``); ``error`` the repr of
    the exception that triggered it.  Sessions collect these instead of
    failing the query.
    """

    stage: str
    fallback: str
    error: str


class Governor:
    """Mutable per-run budget enforcement.  Create via ``Budget.start()``."""

    __slots__ = ("budget", "stats", "_deadline", "_token", "_interval",
                 "_countdown", "_rows", "_rounds", "_bytes")

    def __init__(self, budget: Budget, stats=None) -> None:
        self.budget = budget
        self.stats = stats
        self._deadline = (None if budget.deadline_seconds is None
                          else time.monotonic() + budget.deadline_seconds)
        self._token = budget.cancel_token
        self._interval = budget.check_interval
        self._countdown = self._interval
        self._rows = 0
        self._rounds = 0
        self._bytes = 0

    # ------------------------------------------------------------ wall clock

    def check_time(self) -> None:
        """The unamortized check: cancellation, then the deadline."""
        if self._token is not None and self._token.cancelled:
            raise EvaluationCancelled(stats=self.stats)
        # >= so deadline_seconds=0.0 trips deterministically even when the
        # clock has not advanced between Budget.start() and the first check.
        if self._deadline is not None and time.monotonic() >= self._deadline:
            raise DeadlineExceeded("deadline_seconds",
                                   self.budget.deadline_seconds,
                                   self.budget.deadline_seconds,
                                   stats=self.stats)

    def tick(self, weight: int = 1) -> None:
        """Amortized ``check_time``: pays for the clock read only every
        ``check_interval`` units of work."""
        self._countdown -= weight
        if self._countdown <= 0:
            self._countdown = self._interval
            self.check_time()

    def remaining_seconds(self) -> float | None:
        """Wall-clock budget still available (``None`` = no deadline).
        Never negative; the query service uses this to hand a worker the
        *remaining* deadline, not the original one."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    # ------------------------------------------------------------------ rows

    @property
    def rows_materialized(self) -> int:
        return self._rows

    def note_rows(self, count: int) -> None:
        """Account ``count`` freshly materialized rows."""
        self._rows += count
        limit = self.budget.max_rows_materialized
        if limit is not None and self._rows > limit:
            raise RowLimitExceeded("rows_materialized", limit, self._rows,
                                   stats=self.stats)

    def check_rows_ahead(self, count: int) -> None:
        """Refuse an enumeration of ``count`` rows *before* allocating it
        (the OOM guard for ``universe^k`` products)."""
        limit = self.budget.max_rows_materialized
        if limit is not None and self._rows + count > limit:
            raise RowLimitExceeded("rows_materialized", limit,
                                   self._rows + count, stats=self.stats)

    # ----------------------------------------------------------------- bytes

    @property
    def bytes_resident(self) -> int:
        """Peak structural working-set estimate seen so far (bytes)."""
        return self._bytes

    def note_bytes(self, count: int) -> None:
        """Report that a kernel currently holds ``count`` bytes of packed
        payloads (bitset words, CSR offset/target arrays).  Absolute, not a
        delta: the governor keeps the peak and enforces the budget's
        ``max_bytes_resident`` against it."""
        if count > self._bytes:
            self._bytes = count
        limit = self.budget.max_bytes_resident
        if limit is not None and count > limit:
            raise MemoryLimitExceeded("bytes_resident", limit, count,
                                      stats=self.stats)

    # ---------------------------------------------------------------- rounds

    @property
    def fixpoint_rounds(self) -> int:
        return self._rounds

    def note_round(self) -> None:
        """Account one fixed-point / closure round (and check the clock —
        round boundaries are the coarse-grained checkpoint)."""
        self._rounds += 1
        limit = self.budget.max_fixpoint_rounds
        if limit is not None and self._rounds > limit:
            raise FixpointRoundLimitExceeded("fixpoint_rounds", limit,
                                             self._rounds, stats=self.stats)
        self.check_time()

    # ------------------------------------------------------------------ memo

    def check_memo(self, entries: int) -> None:
        """Check that a memo table may grow to ``entries`` entries."""
        limit = self.budget.max_memo_entries
        if limit is not None and entries > limit:
            raise MemoLimitExceeded("memo_entries", limit, entries,
                                    stats=self.stats)


# ------------------------------------------------------------------ signals


@contextmanager
def cancel_on_signals(token: CancelToken,
                      signals: tuple[int, ...] = (signal.SIGINT,
                                                  signal.SIGTERM)):
    """Map SIGINT/SIGTERM to cooperative cancellation for the duration of
    the block: the first signal cancels ``token`` (the evaluation then
    raises :class:`~repro.core.errors.EvaluationCancelled` at its next
    governor checkpoint — a typed error with partial stats, not a
    ``KeyboardInterrupt`` traceback); a *second* signal falls back to the
    default handler, so a stuck process can still be killed the blunt
    way.  Previous handlers are restored on exit.

    Only the main thread of the main interpreter may install signal
    handlers; elsewhere (a worker thread running a query) this is a
    no-op passthrough — cancellation there is the caller's job.
    """
    import threading

    if threading.current_thread() is not threading.main_thread():
        yield token
        return

    previous: dict[int, object] = {}

    def handler(signum, frame):
        token.cancel()
        # Second signal: restore the default behaviour immediately so the
        # user is never trapped behind a checkpoint that does not come.
        for number, old in previous.items():
            signal.signal(number, old)

    try:
        for number in signals:
            previous[number] = signal.signal(number, handler)
    except (ValueError, OSError):  # pragma: no cover - exotic embeddings
        yield token
        return
    try:
        yield token
    finally:
        for number, old in previous.items():
            try:
                signal.signal(number, old)
            except (ValueError, OSError):  # pragma: no cover
                pass
