"""The Machiavelli ``hom`` operator (Section 7).

Ohori, Buneman and Breazu-Tannen's Machiavelli language contains an operator
``hom`` similar to ``set-reduce``::

    hom(f, op, z, {})              = z
    hom(f, op, z, {x1, ..., xn})   = op(f(x1), ..., op(f(xn), z) ...)

An instance of ``hom`` is *proper* when ``op`` is commutative and
associative, in which case the result cannot depend on the order in which
the set is presented.  The paper uses ``hom`` to discuss order-independent
query languages: proper hom alone only reaches NC-style parallel classes,
proper hom with a separate number domain can count (Proposition 7.6), and
even then it misses some order-independent polynomial-time properties
(Theorem 7.7).

This module provides:

* :func:`hom` — a direct reference implementation over Python callables
  (the "Machiavelli side" used by the Section 7 benchmarks);
* :func:`check_proper` — an empirical commutativity/associativity check of
  a candidate ``op`` over sample values;
* :func:`hom_expr` — the translation of ``hom(f, op, z, S)`` into an SRL
  ``set-reduce`` (showing HL ⊆ SRL when set-height is at most 1);
* :func:`count_hom` — Proposition 7.6's counting example
  ``count(S) = hom(λx.1, +, 0, S)``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from . import builders as b
from .ast import Expr

__all__ = ["hom", "check_proper", "hom_expr", "count_hom", "ProperHomViolation"]

T = TypeVar("T")
R = TypeVar("R")


class ProperHomViolation(ValueError):
    """Raised by :func:`check_proper` (strict mode) when the operator fails
    commutativity or associativity on the supplied samples."""


def hom(f: Callable[[T], R], op: Callable[[R, R], R], z: R,
        values: Iterable[T]) -> R:
    """The Machiavelli ``hom`` operator over Python data.

    The traversal order is the iteration order of ``values``; for a proper
    (commutative, associative) ``op`` the answer does not depend on it.
    """
    items = list(values)
    result = z
    for item in reversed(items):
        result = op(f(item), result)
    return result


def check_proper(op: Callable[[R, R], R], samples: Sequence[R],
                 strict: bool = False) -> bool:
    """Empirically check that ``op`` is commutative and associative on the
    given samples (all ordered pairs / triples are tried).

    This mirrors the paper's definition of a *proper* hom instance.  With
    ``strict=True`` a violation raises :class:`ProperHomViolation` naming
    the witnesses.
    """
    for x in samples:
        for y in samples:
            if op(x, y) != op(y, x):
                if strict:
                    raise ProperHomViolation(f"not commutative on ({x!r}, {y!r})")
                return False
    for x in samples:
        for y in samples:
            for z in samples:
                if op(op(x, y), z) != op(x, op(y, z)):
                    if strict:
                        raise ProperHomViolation(
                            f"not associative on ({x!r}, {y!r}, {z!r})"
                        )
                    return False
    return True


def hom_expr(source: Expr, f_body: Callable[[Expr, Expr], Expr], op_name: str,
             z: Expr, extra: Expr | None = None) -> Expr:
    """Translate ``hom(f, op, z, source)`` into an SRL ``set-reduce``.

    ``f_body(x, extra)`` must return the expression for ``f(x)``; ``op_name``
    names a binary definition in the enclosing program (e.g. the standard
    library's ``union``/``and``/``or``, or a user-supplied operator).  With
    an ordering present and set-height at most one, SRL and the hom-based
    language HL have the same expressive power (Section 7), and this
    translation is the easy half of that equivalence.
    """
    x, e = b.fresh_name("x"), b.fresh_name("e")
    a, r = b.fresh_name("a"), b.fresh_name("r")
    return b.set_reduce(
        source,
        b.lam(x, e, f_body(b.var(x), b.var(e))),
        b.lam(a, r, b.call(op_name, b.var(a), b.var(r))),
        z,
        extra if extra is not None else b.emptyset(),
    )


def count_hom(values: Iterable[T]) -> int:
    """Proposition 7.6: counting via a proper hom —
    ``count(S) = hom(λx. 1, +, 0, S)``.

    The map ``f`` sends every database element to the number 1 in the
    separate number domain, and the proper operator ``+`` adds them up, so
    proper hom over a two-sorted structure can count even though
    (FO(wo<=) + LFP) cannot (Fact 7.5).
    """
    return hom(lambda _value: 1, lambda x, y: x + y, 0, values)
