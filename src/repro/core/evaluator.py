"""The operational semantics of the set-reduce language family.

The evaluator implements the reduction rules of Section 2 of the paper.
The only interesting rule is the one for ``set-reduce``::

    set-reduce(s, app, acc, base, extra) =
        if s = emptyset then base
        else acc(app(choose(s), extra),
                 set-reduce(rest(s), app, acc, base, extra))

Operationally we implement it as an *iterative fold that threads the
accumulator through the elements in ascending implementation order*
(smallest element first): ``result = base; for e in ascending(s): result =
acc(app(e, extra), result)``.  Read literally, the paper's recursive
equation threads the accumulator in the mirrored (descending) direction,
but every example program in the paper — ``increment`` (Prop. 4.5), the
iterated permutation product (Lemma 4.10), the Turing-machine simulation
(Prop. 6.2) — assumes the accumulator reaches the smallest element first,
so we follow the examples; the choice is immaterial to the theorems (an
implementation order is arbitrary anyway) and is recorded in DESIGN.md.
The fold is iterative to avoid Python's recursion limit on large inputs.

The evaluator is instrumented: it counts elementary steps, ``insert``
applications, ``set-reduce`` iterations, invented values, and the peak
sizes of sets and accumulators it builds.  These counters are exactly the
quantities Sections 4 and 6 of the paper reason about (T_ins, the n^{ad}
step bound of Proposition 6.1, the O(log n)-bit accumulators of BASRL),
and they are what the benchmark harness reports.

Resource limits (steps / inserts / set sizes) can be configured through
:class:`EvaluationLimits`; exceeding one raises
:class:`~repro.core.errors.ResourceLimitExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from .ast import (
    AtomConst,
    BoolConst,
    Call,
    Choose,
    ConsList,
    EmptyList,
    EmptySet,
    Equal,
    Expr,
    FunctionDef,
    If,
    Insert,
    Lambda,
    LessEq,
    ListReduce,
    NatConst,
    New,
    Program,
    Rest,
    Select,
    SetReduce,
    TupleExpr,
    Var,
)
from .environment import Database, Environment
from .errors import ResourceLimitExceeded, SRLNameError, SRLRuntimeError
from .values import (
    EMPTY_SET,
    Atom,
    SRLList,
    SRLSet,
    SRLTuple,
    Value,
    caches_enabled,
    max_atom_rank,
    value_equal,
    value_key,
    value_size,
)

__all__ = ["EvaluationLimits", "EvaluationStats", "Evaluator"]


@dataclass
class EvaluationLimits:
    """Budgets for a single evaluation.

    ``None`` means unlimited.  Tests use tight limits to assert that
    restricted programs stay cheap; benchmarks use generous ones.
    """

    max_steps: Optional[int] = 50_000_000
    max_inserts: Optional[int] = None
    max_set_size: Optional[int] = None
    allow_new: bool = True
    allow_lists: bool = True


@dataclass
class EvaluationStats:
    """Counters collected during one evaluation."""

    steps: int = 0
    inserts: int = 0
    set_reduce_iterations: int = 0
    list_reduce_iterations: int = 0
    function_calls: int = 0
    new_values: int = 0
    max_set_size: int = 0
    max_accumulator_size: int = 0
    max_list_length: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "steps": self.steps,
            "inserts": self.inserts,
            "set_reduce_iterations": self.set_reduce_iterations,
            "list_reduce_iterations": self.list_reduce_iterations,
            "function_calls": self.function_calls,
            "new_values": self.new_values,
            "max_set_size": self.max_set_size,
            "max_accumulator_size": self.max_accumulator_size,
            "max_list_length": self.max_list_length,
        }


class Evaluator:
    """Evaluates SRL expressions and programs.

    Parameters
    ----------
    program:
        The program whose definitions ``Call`` nodes refer to.  May be
        ``None`` for standalone expressions.
    limits:
        Resource budgets; defaults to :class:`EvaluationLimits`.
    atom_order:
        An optional permutation of atom ranks.  When given, ``choose``
        scans sets in the permuted order instead of the natural one — this
        is how the Section 7 order-independence tester varies the
        implementation order without touching the program or the data.
        ``atom_order[rank]`` is the position of the atom with that rank.
    """

    def __init__(
        self,
        program: Program | None = None,
        limits: EvaluationLimits | None = None,
        atom_order: Sequence[int] | None = None,
        governor=None,
    ):
        self.program = program if program is not None else Program()
        self.limits = limits if limits is not None else EvaluationLimits()
        self.atom_order = tuple(atom_order) if atom_order is not None else None
        self.governor = governor
        self.stats = EvaluationStats()
        self._call_stack: list[str] = []
        self._new_counter = 0

    # ------------------------------------------------------------------ API

    def run(self, database: Database | Mapping[str, object] | None = None,
            main: Expr | None = None) -> Value:
        """Evaluate ``main`` (or the program's main expression) against the
        database and return the resulting value."""
        if not isinstance(database, Database):
            database = Database(database or {})
        expr = main if main is not None else self.program.main
        if expr is None:
            raise SRLRuntimeError("program has no main expression to evaluate")
        env = Environment(database)
        return self.evaluate(expr, env)

    def call(self, name: str, *args: Value,
             database: Database | Mapping[str, object] | None = None) -> Value:
        """Invoke a named definition directly with already-evaluated values."""
        if not isinstance(database, Database):
            database = Database(database or {})
        definition = self.program.get(name)
        env = Environment(database)
        return self._apply_definition(definition, list(args), env)

    # ------------------------------------------------------------ internals

    def _tick(self) -> None:
        self.stats.steps += 1
        limit = self.limits.max_steps
        if limit is not None and self.stats.steps > limit:
            raise ResourceLimitExceeded("steps", limit, self.stats.steps)
        governor = self.governor
        if governor is not None:
            governor.tick()

    def _note_set(self, value: Value) -> None:
        if isinstance(value, SRLSet):
            size = len(value)
            if size > self.stats.max_set_size:
                self.stats.max_set_size = size
            limit = self.limits.max_set_size
            if limit is not None and size > limit:
                raise ResourceLimitExceeded("set size", limit, size)
        elif isinstance(value, SRLList):
            if len(value) > self.stats.max_list_length:
                self.stats.max_list_length = len(value)

    def _ordered_elements(self, value: SRLSet) -> Sequence[Value]:
        """The elements of ``value`` in the (possibly permuted) scan order."""
        if self.atom_order is None:
            return value.elements
        return value.ordered_under(self.atom_order)

    def evaluate(self, expr: Expr, env: Environment) -> Value:
        """Evaluate ``expr`` in ``env``.

        Dispatch is by a per-node-type table (``type(expr)`` → handler)
        instead of the seed's ~20-branch isinstance chain, so every node
        pays one dict lookup rather than a position-dependent scan.
        """
        self._tick()
        handler = _DISPATCH.get(type(expr))
        if handler is None:
            # Subclasses of AST nodes still dispatch (at a one-off cost);
            # anything else is a genuine error.
            for node_type, node_handler in _DISPATCH.items():
                if isinstance(expr, node_type):
                    handler = node_handler
                    break
            else:
                if isinstance(expr, Lambda):
                    raise SRLRuntimeError(
                        "a lambda can only appear as the app/acc argument of a reduce"
                    )
                raise SRLRuntimeError(
                    f"cannot evaluate expression of type {type(expr).__name__}"
                )
        return handler(self, expr, env)

    # ------------------------------------------------------------- handlers

    def _eval_const(self, expr, env: Environment) -> Value:
        return expr.value

    def _eval_var(self, expr: Var, env: Environment) -> Value:
        return env.lookup(expr.name)

    def _eval_if(self, expr: If, env: Environment) -> Value:
        condition = self.evaluate(expr.cond, env)
        if not isinstance(condition, bool):
            raise SRLRuntimeError(
                f"if condition evaluated to a non-boolean: {condition!r}"
            )
        branch = expr.then_branch if condition else expr.else_branch
        return self.evaluate(branch, env)

    def _eval_tuple(self, expr: TupleExpr, env: Environment) -> Value:
        return SRLTuple(self.evaluate(item, env) for item in expr.items)

    def _eval_select(self, expr: Select, env: Environment) -> Value:
        target = self.evaluate(expr.target, env)
        if not isinstance(target, SRLTuple):
            raise SRLRuntimeError(
                f"sel_{expr.index} applied to a non-tuple: {target!r}"
            )
        return target.select(expr.index)

    def _eval_equal(self, expr: Equal, env: Environment) -> Value:
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        return value_equal(left, right)

    def _eval_lesseq(self, expr: LessEq, env: Environment) -> Value:
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        return value_key(left, self.atom_order) <= value_key(right, self.atom_order)

    def _eval_emptyset(self, expr: EmptySet, env: Environment) -> Value:
        return EMPTY_SET

    def _eval_insert(self, expr: Insert, env: Environment) -> Value:
        element = self.evaluate(expr.element, env)
        target = self.evaluate(expr.target, env)
        if not isinstance(target, SRLSet):
            raise SRLRuntimeError(f"insert into a non-set: {target!r}")
        self.stats.inserts += 1
        limit = self.limits.max_inserts
        if limit is not None and self.stats.inserts > limit:
            raise ResourceLimitExceeded("inserts", limit, self.stats.inserts)
        result = target.insert(element)
        self._note_set(result)
        return result

    def _eval_choose(self, expr: Choose, env: Environment) -> Value:
        source = self.evaluate(expr.source, env)
        if not isinstance(source, SRLSet):
            raise SRLRuntimeError(f"choose applied to a non-set: {source!r}")
        if self.atom_order is None and caches_enabled():
            return source.choose()  # O(1): the canonical minimum is element 0
        elements = self._ordered_elements(source)
        if not elements:
            raise SRLRuntimeError("choose applied to the empty set")
        return elements[0]

    def _eval_rest(self, expr: Rest, env: Environment) -> Value:
        source = self.evaluate(expr.source, env)
        if not isinstance(source, SRLSet):
            raise SRLRuntimeError(f"rest applied to a non-set: {source!r}")
        if self.atom_order is None and caches_enabled():
            return source.rest()  # O(n) slice, no re-sort
        elements = self._ordered_elements(source)
        if not elements:
            raise SRLRuntimeError("rest applied to the empty set")
        return SRLSet(elements[1:])

    def _eval_emptylist(self, expr: EmptyList, env: Environment) -> Value:
        if not self.limits.allow_lists:
            raise SRLRuntimeError("list values are disabled by the evaluation limits")
        return SRLList()

    def _eval_cons(self, expr: ConsList, env: Environment) -> Value:
        if not self.limits.allow_lists:
            raise SRLRuntimeError("list values are disabled by the evaluation limits")
        item = self.evaluate(expr.item, env)
        target = self.evaluate(expr.target, env)
        if not isinstance(target, SRLList):
            raise SRLRuntimeError(f"cons onto a non-list: {target!r}")
        result = target.cons(item)
        self._note_set(result)
        return result

    # ------------------------------------------------------------- reducers

    def _apply_lambda(self, fn: Lambda, first: Value, second: Value,
                      env: Environment) -> Value:
        """Apply a two-parameter lambda.

        Per rule 9, only the lambda's own parameters may occur free in its
        body (everything else must be threaded through ``extra``), but the
        paper's own example programs freely reference the input relations
        (e.g. ``EDGES`` in Lemma 3.6), so database names and function
        definitions remain visible.  Enclosing lambda parameters do *not*.
        """
        scope = Environment(env.database, {fn.params[0]: first, fn.params[1]: second})
        return self.evaluate(fn.body, scope)

    def _reduce_loop(self, expr: SetReduce | ListReduce, items: Sequence[Value],
                     base: Value, extra: Value, env: Environment,
                     is_set_reduce: bool) -> Value:
        """The shared fold of set-reduce and list-reduce.

        The two lambda scopes are allocated once and their parameter slots
        rebound per iteration — per rule 9 a lambda body can only see its
        own two parameters (plus database names and definitions), so no
        evaluation step can observe or retain the recycled Environment.
        """
        app, acc = expr.app, expr.acc
        stats = self.stats
        database = env.database
        app_scope = Environment(database, {})
        acc_scope = Environment(database, {})
        app_bindings, acc_bindings = app_scope.bindings, acc_scope.bindings
        app_first, app_second = app.params
        acc_first, acc_second = acc.params
        accumulator = base
        iterations = 0
        try:
            for item in items:
                iterations += 1
                self._tick()
                app_bindings[app_first] = item
                app_bindings[app_second] = extra
                applied = self.evaluate(app.body, app_scope)
                acc_bindings[acc_first] = applied
                acc_bindings[acc_second] = accumulator
                accumulator = self.evaluate(acc.body, acc_scope)
                acc_size = value_size(accumulator)
                if acc_size > stats.max_accumulator_size:
                    stats.max_accumulator_size = acc_size
                self._note_set(accumulator)
        finally:
            # Flushed here so the counters stay exact even when a resource
            # limit aborts the fold mid-iteration.
            if is_set_reduce:
                stats.set_reduce_iterations += iterations
            else:
                stats.list_reduce_iterations += iterations
        return accumulator

    def _evaluate_set_reduce(self, expr: SetReduce, env: Environment) -> Value:
        source = self.evaluate(expr.source, env)
        if not isinstance(source, SRLSet):
            raise SRLRuntimeError(f"set-reduce over a non-set: {source!r}")
        base = self.evaluate(expr.base, env)
        extra = self.evaluate(expr.extra, env)
        # Thread the accumulator through the elements smallest-first (see the
        # module docstring for why this is the ascending direction).
        return self._reduce_loop(expr, self._ordered_elements(source), base,
                                 extra, env, True)

    def _evaluate_list_reduce(self, expr: ListReduce, env: Environment) -> Value:
        if not self.limits.allow_lists:
            raise SRLRuntimeError("list values are disabled by the evaluation limits")
        source = self.evaluate(expr.source, env)
        if not isinstance(source, SRLList):
            raise SRLRuntimeError(f"list-reduce over a non-list: {source!r}")
        base = self.evaluate(expr.base, env)
        extra = self.evaluate(expr.extra, env)
        # Lists thread head-first, mirroring the set case.
        return self._reduce_loop(expr, source.items, base, extra, env, False)

    # ----------------------------------------------------------- calls, new

    def _apply_definition(self, definition: FunctionDef, args: list[Value],
                          env: Environment) -> Value:
        if len(args) != len(definition.params):
            raise SRLRuntimeError(
                f"{definition.name} expects {len(definition.params)} arguments, "
                f"got {len(args)}"
            )
        if definition.name in self._call_stack:
            raise SRLRuntimeError(
                f"recursive call of {definition.name}: SRL functions are closed "
                "under composition only, recursion is not part of the language"
            )
        self.stats.function_calls += 1
        self._call_stack.append(definition.name)
        try:
            scope = Environment(env.database, dict(zip(definition.params, args)))
            return self.evaluate(definition.body, scope)
        finally:
            self._call_stack.pop()

    def _evaluate_call(self, expr: Call, env: Environment) -> Value:
        definition = self.program.definitions.get(expr.name)
        if definition is None:
            raise SRLNameError(f"call of unknown function: {expr.name}")
        args = [self.evaluate(arg, env) for arg in expr.args]
        return self._apply_definition(definition, args, env)

    def _evaluate_new(self, expr: New, env: Environment) -> Value:
        if not self.limits.allow_new:
            raise SRLRuntimeError(
                "new (invented values) is disabled: the program is being run "
                "under plain-SRL semantics"
            )
        source = self.evaluate(expr.source, env)
        if not isinstance(source, SRLSet):
            raise SRLRuntimeError(f"new applied to a non-set: {source!r}")
        self.stats.new_values += 1
        return self._fresh_atom(source)

    def _fresh_atom(self, source: SRLSet) -> Value:
        """An element guaranteed not to be in ``source``.

        Equivalent to the unbounded successor of Section 5: the fresh atom's
        rank is one more than the largest rank occurring anywhere in the set.
        """
        self._new_counter = max(self._new_counter, max_atom_rank(source) + 1)
        fresh = Atom(self._new_counter)
        self._new_counter += 1
        return fresh


#: The evaluator's per-node-type dispatch table.  Built once at import time;
#: ``evaluate`` resolves ``type(expr)`` through it in a single dict lookup.
_DISPATCH = {
    BoolConst: Evaluator._eval_const,
    AtomConst: Evaluator._eval_const,
    NatConst: Evaluator._eval_const,
    Var: Evaluator._eval_var,
    If: Evaluator._eval_if,
    TupleExpr: Evaluator._eval_tuple,
    Select: Evaluator._eval_select,
    Equal: Evaluator._eval_equal,
    LessEq: Evaluator._eval_lesseq,
    EmptySet: Evaluator._eval_emptyset,
    Insert: Evaluator._eval_insert,
    SetReduce: Evaluator._evaluate_set_reduce,
    Call: Evaluator._evaluate_call,
    New: Evaluator._evaluate_new,
    Choose: Evaluator._eval_choose,
    Rest: Evaluator._eval_rest,
    EmptyList: Evaluator._eval_emptylist,
    ConsList: Evaluator._eval_cons,
    ListReduce: Evaluator._evaluate_list_reduce,
}

# The module-level run_program / run_expression facades live in
# repro.core.engine (with backend selection); repro.core re-exports them.
