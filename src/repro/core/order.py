"""Section 7: the role of ordering.

Every set stored by a computer has its members in *some* order, and
``set-reduce`` scans sets in that order, so SRL programs can compute
order-dependent answers (the paper's example: ``Purple(First(S))``).  The
paper's position is to keep the full (order-capable) language and *prove*
order-independence of particular programs, rather than to impoverish the
language.

The authors used Sheard's extended Boyer-Moore prover for those proofs; that
system is not available, so this module provides the two practical
substitutes documented in DESIGN.md:

* :func:`probe_order_independence` — an **empirical** tester: re-evaluate the
  program under many sampled permutations of the implementation order and
  report the first disagreement (a witness of order dependence).  Agreement
  on all samples is evidence, not proof.

* :func:`certify_order_independence` — a **conservative structural prover**:
  it certifies a program as order-independent when every ``set-reduce`` in
  it is a *proper hom* in the Machiavelli sense (the accumulator is a
  recognised commutative-and-associative combination that ignores the
  traversal position) and the program never touches the order directly
  (no ``choose`` / ``rest`` / ``<=``).  It answers ``certified`` or
  ``unknown`` — never a false positive, exactly like the incomplete prover
  the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Optional

from .ast import (
    Call,
    Choose,
    Expr,
    If,
    Insert,
    Lambda,
    LessEq,
    ListReduce,
    Program,
    Rest,
    SetReduce,
    Var,
    walk,
)
from .engine import Session
from .environment import Database
from .evaluator import EvaluationLimits
from .values import Atom, SRLList, SRLSet, SRLTuple, Value

__all__ = [
    "OrderReport",
    "Certificate",
    "domain_size_of_database",
    "probe_order_independence",
    "certify_order_independence",
    "PROPER_ACCUMULATOR_CALLS",
]


# ------------------------------------------------------------ empirical test


def domain_size_of_database(database: Database | Mapping[str, object]) -> int:
    """The number of atom ranks the database mentions (max rank + 1)."""
    if not isinstance(database, Database):
        database = Database(database)
    max_rank = -1
    stack: list[Value] = [value for _, value in database.items()]
    while stack:
        value = stack.pop()
        if isinstance(value, Atom):
            max_rank = max(max_rank, value.rank)
        elif isinstance(value, SRLTuple):
            stack.extend(value)
        elif isinstance(value, SRLSet):
            stack.extend(value.elements)
        elif isinstance(value, SRLList):
            stack.extend(value.items)
    return max_rank + 1


@dataclass
class OrderReport:
    """The outcome of the empirical order-independence test."""

    independent: bool
    trials: int
    baseline: Value
    witness_permutation: Optional[tuple[int, ...]] = None
    witness_value: Optional[Value] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.independent


def probe_order_independence(program: Program,
                            database: Database | Mapping[str, object],
                            trials: int = 20,
                            seed: int = 0,
                            main: Expr | None = None,
                            limits: EvaluationLimits | None = None) -> OrderReport:
    """Evaluate the program under ``trials`` random permutations of the
    implementation order and compare against the natural order.

    Returns an :class:`OrderReport`; when a disagreement is found the report
    carries the witnessing permutation and the value it produced.
    """
    if not isinstance(database, Database):
        database = Database(database)
    domain_size = max(domain_size_of_database(database), 1)

    # One compiled session serves every trial: the closures are
    # atom_order-independent, so each permutation is just a different
    # runtime scan order on the same compiled code.
    session = Session(program, limits)
    baseline = session.run(database, main=main)
    rng = random.Random(seed)
    for _ in range(trials):
        permutation = list(range(domain_size))
        rng.shuffle(permutation)
        value = session.run(database, main=main, atom_order=permutation)
        if value != baseline:
            return OrderReport(
                independent=False,
                trials=trials,
                baseline=baseline,
                witness_permutation=tuple(permutation),
                witness_value=value,
            )
    return OrderReport(independent=True, trials=trials, baseline=baseline)


# --------------------------------------------------------- structural prover

#: Calls recognised as commutative-and-associative accumulators when used in
#: the shape ``lambda (a, r) (op a r)``.
PROPER_ACCUMULATOR_CALLS = frozenset({"union", "and", "or", "max", "min", "add"})


@dataclass
class Certificate:
    """The outcome of the conservative structural check."""

    status: str  # "certified" or "unknown"
    reasons: list[str] = field(default_factory=list)

    @property
    def certified(self) -> bool:
        return self.status == "certified"


def _is_insert_accumulator(acc: Lambda) -> bool:
    """``lambda (a, r) (insert a r)`` — set union of singletons, proper."""
    body = acc.body
    return (
        isinstance(body, Insert)
        and isinstance(body.element, Var) and body.element.name == acc.params[0]
        and isinstance(body.target, Var) and body.target.name == acc.params[1]
    )


def _is_proper_call_accumulator(acc: Lambda) -> bool:
    """``lambda (a, r) (op a r)`` for a recognised commutative/associative op."""
    body = acc.body
    return (
        isinstance(body, Call)
        and body.name in PROPER_ACCUMULATOR_CALLS
        and len(body.args) == 2
        and isinstance(body.args[0], Var) and body.args[0].name == acc.params[0]
        and isinstance(body.args[1], Var) and body.args[1].name == acc.params[1]
    )


def _is_guarded_insert_accumulator(acc: Lambda) -> bool:
    """``lambda (a, r) (if <test on a only> (insert <part of a> r) r)`` (or
    the branches swapped) — selection-style accumulators: which elements get
    inserted depends only on the element itself, not on the traversal
    position, so the result is order-independent (it is a union of
    per-element contributions)."""
    body = acc.body
    if not isinstance(body, If):
        return False
    accumulated = acc.params[1]
    branches = (body.then_branch, body.else_branch)
    passthrough = [br for br in branches
                   if isinstance(br, Var) and br.name == accumulated]
    inserting = [br for br in branches
                 if isinstance(br, Insert)
                 and isinstance(br.target, Var) and br.target.name == accumulated]
    if len(passthrough) != 1 or len(inserting) != 1:
        return False
    # Neither the condition nor the inserted element may mention the
    # accumulator (that would make the contribution depend on what has been
    # seen so far, i.e. on the order).
    mentions_accumulator = any(
        isinstance(node, Var) and node.name == accumulated
        for part in (body.cond, inserting[0].element)
        for node in walk(part)
    )
    return not mentions_accumulator


def certify_order_independence(program: Program,
                               main: Expr | None = None) -> Certificate:
    """Conservatively certify that the program's answer cannot depend on the
    implementation order.

    The check succeeds when (a) the program never mentions ``choose``,
    ``rest`` or ``<=`` (the only direct handles on the order) and (b) every
    ``set-reduce`` accumulator has one of the recognised proper shapes.
    Anything else yields ``unknown`` — which is the honest answer, since
    order-independence of arbitrary SRL programs is undecidable (Section 8).
    """
    reasons: list[str] = []
    expressions: list[Expr] = []
    expr = main if main is not None else program.main
    if expr is not None:
        expressions.append(expr)
    # Only definitions reachable from the main expression matter; an unused
    # library helper with an order-sensitive body should not block the
    # certificate.
    reachable: set[str] = set()
    frontier: list[Expr] = list(expressions)
    while frontier:
        root = frontier.pop()
        for node in walk(root):
            if isinstance(node, Call) and node.name not in reachable:
                definition = program.definitions.get(node.name)
                if definition is not None:
                    reachable.add(node.name)
                    frontier.append(definition.body)
    if expr is None:
        reachable = set(program.definitions)
    expressions.extend(
        d.body for name, d in program.definitions.items() if name in reachable
    )

    for root in expressions:
        for node in walk(root):
            if isinstance(node, (Choose, Rest)):
                reasons.append(f"{type(node).__name__.lower()} observes the order directly")
            if isinstance(node, LessEq):
                reasons.append("<= compares positions in the implementation order")
            if isinstance(node, ListReduce):
                reasons.append("list-reduce traverses an ordered list")
            if isinstance(node, SetReduce):
                acc = node.acc
                if not (_is_insert_accumulator(acc)
                        or _is_proper_call_accumulator(acc)
                        or _is_guarded_insert_accumulator(acc)):
                    reasons.append(
                        "an accumulator is not a recognised commutative/associative "
                        "(proper hom) shape"
                    )
    if reasons:
        return Certificate(status="unknown", reasons=sorted(set(reasons)))
    return Certificate(status="certified")
