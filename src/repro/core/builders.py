"""A small Python DSL for constructing SRL abstract syntax.

Writing raw AST constructors is verbose; the helpers below keep the example
programs and tests close to the paper's notation.  Boolean connectives are
provided as macros over ``if-then-else`` (the paper: "boolean and, or, and
not can easily be defined with the if-then-else function").

Example
-------
>>> from repro.core import builders as b
>>> member_like = b.set_reduce(
...     b.var("S"),
...     b.lam("e", "x", b.eq(b.var("e"), b.var("x"))),
...     b.lam("a", "r", b.or_(b.var("a"), b.var("r"))),
...     b.false(),
...     b.var("x"),
... )
"""

from __future__ import annotations

from itertools import count as _count
from typing import Iterable, Sequence

from .ast import (
    AtomConst,
    BoolConst,
    Call,
    Choose,
    ConsList,
    EmptyList,
    EmptySet,
    Equal,
    Expr,
    FunctionDef,
    If,
    Insert,
    Lambda,
    LessEq,
    ListReduce,
    NatConst,
    New,
    Program,
    Rest,
    Select,
    SetReduce,
    TupleExpr,
    Var,
)
from .values import Atom

__all__ = [
    "var", "atom", "nat", "true", "false", "if_", "tup", "sel", "eq", "leq",
    "emptyset", "insert", "set_of_exprs", "lam", "set_reduce", "list_reduce",
    "call", "new", "choose", "rest", "emptylist", "cons",
    "and_", "or_", "not_", "neq", "define", "program", "fresh_name",
]

_GENSYM = _count(1)


def fresh_name(hint: str = "v") -> str:
    """A variable name unlikely to collide with user code."""
    return f"_{hint}{next(_GENSYM)}"


def var(name: str) -> Var:
    return Var(name)


def atom(rank: int, name: str = "") -> AtomConst:
    return AtomConst(Atom(rank, name))


def nat(value: int) -> NatConst:
    return NatConst(value)


def true() -> BoolConst:
    return BoolConst(True)


def false() -> BoolConst:
    return BoolConst(False)


def if_(cond: Expr, then_branch: Expr, else_branch: Expr) -> If:
    return If(cond, then_branch, else_branch)


def tup(*items: Expr) -> TupleExpr:
    return TupleExpr(tuple(items))


def sel(index: int, target: Expr) -> Select:
    return Select(index, target)


def eq(left: Expr, right: Expr) -> Equal:
    return Equal(left, right)


def leq(left: Expr, right: Expr) -> LessEq:
    return LessEq(left, right)


def emptyset() -> EmptySet:
    return EmptySet()


def insert(element: Expr, target: Expr) -> Insert:
    return Insert(element, target)


def set_of_exprs(elements: Iterable[Expr]) -> Expr:
    """``{e1, ..., ek}`` as nested inserts into emptyset."""
    result: Expr = EmptySet()
    for element in elements:
        result = Insert(element, result)
    return result


def lam(param1: str, param2: str, body: Expr) -> Lambda:
    return Lambda((param1, param2), body)


def set_reduce(source: Expr, app: Lambda, acc: Lambda, base: Expr,
               extra: Expr | None = None) -> SetReduce:
    return SetReduce(source, app, acc, base, extra if extra is not None else EmptySet())


def list_reduce(source: Expr, app: Lambda, acc: Lambda, base: Expr,
                extra: Expr | None = None) -> ListReduce:
    return ListReduce(source, app, acc, base, extra if extra is not None else EmptyList())


def call(name: str, *args: Expr) -> Call:
    return Call(name, tuple(args))


def new(source: Expr) -> New:
    return New(source)


def choose(source: Expr) -> Choose:
    return Choose(source)


def rest(source: Expr) -> Rest:
    return Rest(source)


def emptylist() -> EmptyList:
    return EmptyList()


def cons(item: Expr, target: Expr) -> ConsList:
    return ConsList(item, target)


# ----------------------------------------------------------- boolean macros


def not_(expr: Expr) -> Expr:
    """``not e`` as ``if e then false else true``."""
    return If(expr, BoolConst(False), BoolConst(True))


def and_(*operands: Expr) -> Expr:
    """``e1 and e2 and ...`` as nested if-then-else (true when empty)."""
    if not operands:
        return BoolConst(True)
    result = operands[-1]
    for operand in reversed(operands[:-1]):
        result = If(operand, result, BoolConst(False))
    return result


def or_(*operands: Expr) -> Expr:
    """``e1 or e2 or ...`` as nested if-then-else (false when empty)."""
    if not operands:
        return BoolConst(False)
    result = operands[-1]
    for operand in reversed(operands[:-1]):
        result = If(operand, BoolConst(True), result)
    return result


def neq(left: Expr, right: Expr) -> Expr:
    """``e1 /= e2``."""
    return not_(Equal(left, right))


# --------------------------------------------------------------- definitions


def define(name: str, params: Sequence[str], body: Expr) -> FunctionDef:
    return FunctionDef(name=name, params=tuple(params), body=body)


def program(*definitions: FunctionDef, main: Expr | None = None) -> Program:
    result = Program()
    for definition in definitions:
        result.define(definition)
    result.main = main
    return result
