"""Semi-naive relational algebra: indexed relations and delta-driven fixed points.

Every fixed-point-shaped computation in the repo — the logic layer's
TC/DTC/LFP model checking, the AGAP baseline, the query-layer closures, the
Figure 1 containment lattice — bottoms out in one of two evaluation
strategies over a growing relation:

*Naive evaluation* re-applies the derivation rules to the **entire**
relation accumulated so far on every iteration, so a fact derived in round
one is re-derived in every later round.  For a closure over ``d`` rounds
this multiplies the total join work by ``d``.  The naive kernels are kept
(``naive_fixpoint`` / ``naive_closure``) because they are the trivially
correct reading of the paper's inflationary operators: the ``reference``
backend runs them as the differential oracle, and the P2 benchmark uses
them as the baseline.

*Semi-naive evaluation* applies the rules only to the **delta** — the facts
derived in the previous round — because any new fact must have at least one
freshly derived premise.  The invariant that makes this sound for an
inflationary rule set is::

    total_{i+1} = total_i ∪ delta_step(delta_i, total_i)
    delta_{i+1} = total_{i+1} \\ total_i

i.e. every derivation with all premises in ``total_{i-1}`` was already
performed in an earlier round, so restricting round ``i`` to derivations
touching ``delta_i`` loses nothing.  Iteration stops when a round derives
no new fact.

:class:`IndexedRelation` supplies the data structure both strategies lean
on: a set of same-arity tuples with lazily built, incrementally maintained
per-column hash indexes (so joins probe a dict instead of scanning the
relation) and a built-in delta set (the frontier accumulated since the last
:meth:`~IndexedRelation.take_delta`).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence, TypeVar

__all__ = [
    "IndexedRelation",
    "naive_fixpoint",
    "seminaive_fixpoint",
    "naive_closure",
    "seminaive_closure",
]

_Node = TypeVar("_Node", bound=Hashable)

#: Shared empty result for index misses (never mutated).
_NO_ROWS: frozenset = frozenset()


class IndexedRelation:
    """A relation — a set of same-arity tuples — with per-column hash
    indexes and a delta (frontier) set for semi-naive iteration.

    * ``rows`` is the total relation.  Membership, length and iteration all
      read it directly.
    * :meth:`index` builds (on first use) and thereafter incrementally
      maintains ``{value -> set of rows with that value in the column}``;
      :meth:`index_on` is the composite-key variant over several columns.
      Both persist on the relation, so a relation reused across joins (or
      across fixed-point rounds) pays for each index once.
    * :meth:`add` reports whether the row was new, and every new row joins
      the delta set until :meth:`take_delta` drains it — the loop shape of
      semi-naive evaluation.
    * :meth:`join` / :meth:`project` / :meth:`union` / :meth:`select` /
      :meth:`semijoin` / :meth:`antijoin` are the bulk operators; ``join``
      probes the right side's column index instead of scanning it.
    """

    __slots__ = ("arity", "_rows", "_delta", "_indexes")

    def __init__(self, rows: Iterable[Sequence] = (), arity: int | None = None):
        self.arity = arity
        self._rows: set[tuple] = set()
        self._delta: set[tuple] = set()
        # Keyed by a column number (single-column index) or a tuple of
        # column numbers (composite-key index); both kinds are maintained
        # incrementally by :meth:`add` once built.
        self._indexes: dict[int | tuple[int, ...], dict[Hashable, set[tuple]]] = {}
        self.update(rows)

    @classmethod
    def adopt(cls, rows: set[tuple], arity: int | None = None
              ) -> "IndexedRelation":
        """Wrap an already-deduplicated ``set`` of same-arity tuples
        *without copying or per-row bookkeeping* — the bulk-kernel fast
        path (set-native joins and differences build a plain set, then
        adopt it).  The relation takes ownership of ``rows``; the delta
        set starts empty, so adopted relations are results, not semi-naive
        frontiers."""
        relation = cls.__new__(cls)
        relation.arity = arity
        relation._rows = rows
        relation._delta = set()
        relation._indexes = {}
        return relation

    # ------------------------------------------------------------- reading

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IndexedRelation):
            return self._rows == other._rows
        if isinstance(other, (set, frozenset)):
            return self._rows == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IndexedRelation(arity={self.arity}, rows={len(self._rows)}, "
                f"delta={len(self._delta)}, indexed={sorted(self._indexes)})")

    @property
    def rows(self) -> set[tuple]:
        """The total relation (treat as read-only; mutate via :meth:`add`)."""
        return self._rows

    # ------------------------------------------------------------- writing

    def add(self, row: Sequence) -> bool:
        """Insert a row; returns True iff it was not already present.  New
        rows enter the delta set and every built column index."""
        row = tuple(row)
        if self.arity is None:
            self.arity = len(row)
        elif len(row) != self.arity:
            raise ValueError(
                f"arity mismatch: relation holds {self.arity}-tuples, got {row!r}"
            )
        if row in self._rows:
            return False
        self._rows.add(row)
        self._delta.add(row)
        for column, index in self._indexes.items():
            if type(column) is tuple:
                key: Hashable = tuple(row[c] for c in column)
            else:
                key = row[column]
            index.setdefault(key, set()).add(row)
        return True

    def update(self, rows: Iterable[Sequence]) -> int:
        """Bulk :meth:`add`; returns how many rows were new."""
        return sum(self.add(row) for row in rows)

    def discard(self, row: Sequence) -> bool:
        """Remove a row; returns True iff it was present.

        The inverse of :meth:`add`, with the same index contract: every
        built column index drops the row, so a relation maintained under
        deletions keeps probing correctly without a rebuild.  A removed
        row also leaves the delta set — the frontier only ever names rows
        *currently* in the relation, which is what the incremental
        maintenance layer's over-delete/re-derive passes rely on.
        """
        row = tuple(row)
        if row not in self._rows:
            return False
        self._rows.discard(row)
        self._delta.discard(row)
        for column, index in self._indexes.items():
            if type(column) is tuple:
                key: Hashable = tuple(row[c] for c in column)
            else:
                key = row[column]
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    def discard_all(self, rows: Iterable[Sequence]) -> int:
        """Bulk :meth:`discard`; returns how many rows were present."""
        return sum(self.discard(row) for row in rows)

    # -------------------------------------------------------------- deltas

    @property
    def has_delta(self) -> bool:
        return bool(self._delta)

    def take_delta(self) -> frozenset[tuple]:
        """The rows added since the last call, clearing the frontier."""
        delta = frozenset(self._delta)
        self._delta.clear()
        return delta

    # ------------------------------------------------------------- indexes

    def index(self, column: int) -> dict[Hashable, set[tuple]]:
        """The hash index on ``column`` (built lazily, maintained by
        :meth:`add` once built)."""
        index = self._indexes.get(column)
        if index is None:
            if self.arity is not None and not 0 <= column < self.arity:
                raise IndexError(
                    f"column {column} out of range for arity {self.arity}"
                )
            index = {}
            for row in self._rows:
                index.setdefault(row[column], set()).add(row)
            self._indexes[column] = index
        return index

    def index_on(self, columns: Sequence[int]) -> dict[Hashable, set[tuple]]:
        """The composite-key hash index on ``columns`` — ``{(row[c0], c1,
        ...) -> set of rows}`` — built lazily and maintained by :meth:`add`
        once built, so a relation joined repeatedly on the same key tuple
        (or reused across fixed-point rounds) indexes itself exactly once."""
        key = tuple(columns)
        index = self._indexes.get(key)
        if index is None:
            if self.arity is not None:
                for column in key:
                    if not 0 <= column < self.arity:
                        raise IndexError(
                            f"column {column} out of range for arity {self.arity}"
                        )
            index = {}
            for row in self._rows:
                index.setdefault(tuple(row[c] for c in key), set()).add(row)
            self._indexes[key] = index
        return index

    def matching(self, column: int, value: Hashable) -> frozenset[tuple]:
        """The rows whose ``column`` holds ``value`` (empty on a miss).

        Always a :class:`frozenset` — hits are snapshotted so a caller can
        never mutate the live index through the return value (misses used
        to share an immutable empty set while hits leaked the internal
        bucket; both are immutable now).
        """
        rows = self.index(column).get(value)
        if rows is None:
            return _NO_ROWS
        return frozenset(rows)

    # ------------------------------------------------------ bulk operators

    def join(self, other: "IndexedRelation", left_column: int, right_column: int,
             combine: Callable[[tuple, tuple], tuple] | None = None,
             ) -> "IndexedRelation":
        """Hash join: pairs of rows with ``left[left_column] ==
        right[right_column]``, combined by ``combine`` (default: left row
        followed by the right row minus its join column)."""
        if combine is None:
            def combine(left: tuple, right: tuple) -> tuple:
                return left + right[:right_column] + right[right_column + 1:]
        result = IndexedRelation()
        right_index = other.index(right_column)
        for left in self._rows:
            for right in right_index.get(left[left_column], _NO_ROWS):
                result.add(combine(left, right))
        return result

    def project(self, columns: Sequence[int]) -> "IndexedRelation":
        """The projection onto the given columns (duplicates collapse)."""
        columns = tuple(columns)
        result = IndexedRelation(arity=len(columns))
        for row in self._rows:
            result.add(tuple(row[c] for c in columns))
        return result

    def union(self, other: Iterable[Sequence]) -> "IndexedRelation":
        """A fresh relation holding both operands' rows.

        This operand's built indexes *transfer*: their buckets are cloned
        into the result and :meth:`add`'s incremental maintenance extends
        them with the right operand's new rows, instead of re-hashing the
        whole left side on the result's first probe.  Like every bulk
        operator, the result's delta is its full row set — it enters a
        semi-naive loop as an untaken frontier.
        """
        result = IndexedRelation.adopt(set(self._rows), arity=self.arity)
        result._delta = set(result._rows)
        result._indexes = {
            column: {key: set(bucket) for key, bucket in index.items()}
            for column, index in self._indexes.items()
        }
        result.update(other)
        return result

    def difference(self, other: "IndexedRelation | Iterable[Sequence]",
                   ) -> "IndexedRelation":
        """The rows of this relation absent from ``other`` (the antijoin on
        all columns / relational set difference).

        This operand's built indexes survive: when few rows are removed
        each index is cloned and the removed rows' entries deleted;
        otherwise it is rebuilt from the (smaller) kept set — either way
        the result starts indexed.  Like every bulk operator, the result
        is a *fresh* relation whose delta is its full row set — it enters
        a semi-naive loop as an untaken frontier.
        """
        if isinstance(other, IndexedRelation):
            excluded = other._rows
        else:
            excluded = {tuple(row) for row in other}
        kept = self._rows - excluded
        result = IndexedRelation.adopt(kept, arity=self.arity)
        result._delta = set(kept)
        if self._indexes:
            removed = self._rows & excluded

            def key_of(row, column):
                if type(column) is tuple:
                    return tuple(row[c] for c in column)
                return row[column]

            for column, index in self._indexes.items():
                if len(removed) <= len(kept):
                    clone = {key: set(bucket) for key, bucket in index.items()}
                    for row in removed:
                        key = key_of(row, column)
                        bucket = clone.get(key)
                        if bucket is not None:
                            bucket.discard(row)
                            if not bucket:
                                del clone[key]
                else:
                    clone = {}
                    for row in kept:
                        clone.setdefault(key_of(row, column), set()).add(row)
                result._indexes[column] = clone
        return result

    def product(self, other: "IndexedRelation") -> "IndexedRelation":
        """The cross product: every row of ``self`` concatenated with every
        row of ``other`` (the active-domain product the logic planner uses
        to widen a relation with unconstrained columns)."""
        arity = (self.arity + other.arity
                 if self.arity is not None and other.arity is not None else None)
        result = IndexedRelation(arity=arity)
        for left in self._rows:
            for right in other._rows:
                result.add(left + right)
        return result

    def semijoin(self, other: "IndexedRelation",
                 key_columns: Sequence[int]) -> "IndexedRelation":
        """The rows of this relation whose ``key_columns`` projection is a
        row of ``other`` (``other`` is probed as a whole-row key set: its
        full column tuple is the join key, so no index build is needed).
        With an empty/identity key covering every column this degenerates
        to set intersection, taken natively."""
        keys = other._rows
        key = tuple(key_columns)
        if self.arity is not None and key == tuple(range(self.arity)):
            return IndexedRelation.adopt(self._rows & keys, arity=self.arity)
        return IndexedRelation.adopt(
            {row for row in self._rows
             if tuple(row[c] for c in key) in keys},
            arity=self.arity)

    def antijoin(self, other: "IndexedRelation",
                 key_columns: Sequence[int]) -> "IndexedRelation":
        """The rows of this relation whose ``key_columns`` projection is
        *not* a row of ``other`` — negation as an antijoin, probing the
        excluded relation instead of materializing its active-domain
        complement."""
        keys = other._rows
        key = tuple(key_columns)
        if self.arity is not None and key == tuple(range(self.arity)):
            return IndexedRelation.adopt(self._rows - keys, arity=self.arity)
        return IndexedRelation.adopt(
            {row for row in self._rows
             if tuple(row[c] for c in key) not in keys},
            arity=self.arity)

    def rename(self, permutation: Sequence[int]) -> "IndexedRelation":
        """The relation with its columns permuted: output column ``i`` reads
        input column ``permutation[i]``.

        Unlike :meth:`project`, the permutation must mention every column
        exactly once, so no rows can collapse — this is the pure
        rename/column-reorder operator of the plan IR.
        """
        permutation = tuple(permutation)
        if self.arity is not None and sorted(permutation) != list(range(self.arity)):
            raise ValueError(
                f"rename expects a permutation of range({self.arity}), "
                f"got {permutation}"
            )
        result = IndexedRelation(arity=len(permutation))
        for row in self._rows:
            result.add(tuple(row[c] for c in permutation))
        return result

    def select(self, predicate: Callable[[tuple], bool]) -> "IndexedRelation":
        """The rows satisfying ``predicate``."""
        result = IndexedRelation(arity=self.arity)
        for row in self._rows:
            if predicate(row):
                result.add(row)
        return result


# -------------------------------------------------------------- fixed points


def naive_fixpoint(step: Callable[[frozenset], frozenset],
                   initial: frozenset = frozenset(),
                   *, governor=None) -> frozenset:
    """Iterate ``step`` from ``initial`` until it stabilizes — the naive
    strategy: each round recomputes the full image of the accumulated
    relation and compares whole sets.

    The operator is assumed inflationary/monotone (as the LFP stage
    operators of the logic layer are), so the iteration terminates on any
    finite domain.  ``governor`` (a :class:`~repro.core.governor.Governor`)
    is checked once per round — the natural checkpoint for deadlines,
    cancellation and the round budget.
    """
    current = frozenset(initial)
    while True:
        if governor is not None:
            governor.note_round()
        nxt = frozenset(step(current))
        if nxt == current:
            return current
        current = nxt


def seminaive_fixpoint(initial: Iterable,
                       delta_step: Callable[[frozenset, set], Iterable],
                       *, governor=None, stats=None) -> frozenset:
    """The least fixed point by delta propagation.

    ``delta_step(delta, total)`` must return every fact derivable with at
    least one premise in ``delta`` (returning already-known facts is
    harmless — they are filtered here).  ``total`` is the live accumulated
    set and must not be mutated by the callback.  The first round passes
    ``delta = initial`` (so an empty ``initial`` still gets one round to
    seed the iteration with premise-free derivations).  ``governor`` is
    checked once per round; ``stats`` (a
    :class:`~repro.logic.plan.PlanStats`) records the peak resident row
    count — total plus frontier — per round.
    """
    total = set(initial)
    delta = frozenset(total)
    while True:
        if governor is not None:
            governor.note_round()
        if stats is not None:
            stats.note_resident(rows=len(total) + len(delta))
        derived = delta_step(delta, total)
        delta = frozenset(row for row in derived if row not in total)
        if not delta:
            return frozenset(total)
        total.update(delta)


# ----------------------------------------------------------------- closures


def _successor_edges(successors: Mapping[_Node, Iterable[_Node]],
                     deterministic: bool) -> dict[_Node, tuple[_Node, ...]]:
    """Materialize a successor mapping (target iterables may be one-shot
    iterators), applying the DTC reading when ``deterministic``: only
    out-degree-one vertices keep their edge."""
    edges = {source: tuple(targets) for source, targets in successors.items()}
    if deterministic:
        edges = {source: (targets if len(targets) == 1 else ())
                 for source, targets in edges.items()}
    return edges


def naive_closure(successors: Mapping[_Node, Iterable[_Node]],
                  deterministic: bool = False,
                  governor=None) -> set[tuple[_Node, _Node]]:
    """The reflexive transitive closure by naive fixed-point evaluation.

    Starts from ``Id ∪ E`` and re-derives the full composition ``T ∘ E``
    over the whole accumulated relation every round — the baseline the
    ``reference`` backend and the P2 benchmark preserve.  Reflexive pairs
    cover the mapping's keys (the closure's domain).
    """
    edges = _successor_edges(successors, deterministic)
    initial = {(source, source) for source in edges}
    initial.update(
        (source, target) for source, targets in edges.items() for target in targets
    )

    def step(current: frozenset) -> frozenset:
        nxt = set(current)
        for source, middle in current:
            for target in edges.get(middle, ()):
                nxt.add((source, target))
        return frozenset(nxt)

    return set(naive_fixpoint(step, frozenset(initial), governor=governor))


def seminaive_closure(successors: Mapping[_Node, Iterable[_Node]],
                      deterministic: bool = False,
                      governor=None) -> set[tuple[_Node, _Node]]:
    """The reflexive transitive closure by semi-naive delta propagation.

    Identical output to :func:`naive_closure`; each round composes only the
    pairs derived in the previous round with the successor index, so every
    closure pair is derived O(out-degree) times total instead of once per
    round.  The frontier is kept in plain native sets (the loop is the
    hottest kernel in the repo; per-pair index bookkeeping would double
    its constant factor).
    """
    edges = _successor_edges(successors, deterministic)
    closure: set[tuple[_Node, _Node]] = set()
    for source, targets in edges.items():
        closure.add((source, source))
        for target in targets:
            closure.add((source, target))
    frontier: list[tuple[_Node, _Node]] = list(closure)
    while frontier:
        if governor is not None:
            governor.note_round()
        derived: list[tuple[_Node, _Node]] = []
        for source, middle in frontier:
            for target in edges.get(middle, ()):
                pair = (source, target)
                if pair not in closure:
                    closure.add(pair)
                    derived.append(pair)
        frontier = derived
    return closure
