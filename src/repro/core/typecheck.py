"""Type checking / inference for SRL expressions and programs.

The language is monomorphic except for ``emptyset`` (whose type is
``set(alpha)``), so a small unification engine (:mod:`repro.core.types`)
suffices.  Named definitions are *not* generalised: each call site re-checks
the definition's body against the argument types, which matches the paper's
view of definitions as abbreviations closed under composition and avoids the
need for let-polymorphism.

The checker records every type it assigns (``observed_types``); the
Section 6 syntactic analysis (:mod:`repro.core.analysis`) and the
restriction checkers (:mod:`repro.core.restrictions`) read those to compute
set-heights and accumulator shapes — the quantities from which the paper
reads a program's complexity "off its face".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .ast import (
    AtomConst,
    BoolConst,
    Call,
    Choose,
    ConsList,
    EmptyList,
    EmptySet,
    Equal,
    Expr,
    If,
    Insert,
    Lambda,
    LessEq,
    ListReduce,
    NatConst,
    New,
    Program,
    Rest,
    Select,
    SetReduce,
    TupleExpr,
    Var,
)
from .environment import Database
from .errors import SRLNameError, SRLTypeError
from .types import (
    ATOM,
    BOOL,
    NAT,
    AtomType,
    ListType,
    NatType,
    SetType,
    Substitution,
    TupleType,
    Type,
    TypeVar,
    apply_substitution,
    fresh_type_var,
    unify,
)
from .values import Atom, SRLList, SRLSet, SRLTuple, Value

__all__ = ["TypeChecker", "TypeReport", "type_of_value", "database_types", "check_program"]


def type_of_value(value: Value) -> Type:
    """The SRL type of a runtime value (fresh variables for empty sets/lists)."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, Atom):
        return ATOM
    if isinstance(value, int):
        return NAT
    if isinstance(value, SRLTuple):
        return TupleType(tuple(type_of_value(v) for v in value))
    if isinstance(value, SRLSet):
        if value.is_empty():
            return SetType(fresh_type_var())
        subst: Substitution = {}
        element_type: Type = type_of_value(value.elements[0])
        for element in value.elements[1:]:
            subst = unify(element_type, type_of_value(element), subst)
        return SetType(apply_substitution(element_type, subst))
    if isinstance(value, SRLList):
        if value.is_empty():
            return ListType(fresh_type_var())
        subst = {}
        element_type = type_of_value(value.items[0])
        for item in value.items[1:]:
            subst = unify(element_type, type_of_value(item), subst)
        return ListType(apply_substitution(element_type, subst))
    raise SRLTypeError(f"not an SRL value: {value!r}")


def database_types(database: Database | Mapping[str, object]) -> dict[str, Type]:
    """Infer the type of every database binding."""
    if isinstance(database, Database):
        items = database.items()
    else:
        items = Database(database).items()
    return {name: type_of_value(value) for name, value in items}


@dataclass
class TypeReport:
    """The result of checking a program or expression."""

    result_type: Type
    observed_types: list[Type] = field(default_factory=list)
    accumulator_types: list[Type] = field(default_factory=list)
    definition_types: dict[str, Type] = field(default_factory=dict)

    def max_set_height(self) -> int:
        from .types import set_height

        return max((set_height(t) for t in self.observed_types), default=0)

    def max_tuple_width(self) -> int:
        from .types import max_tuple_width

        return max((max_tuple_width(t) for t in self.observed_types), default=1)


class TypeChecker:
    """Checks expressions and programs against an input-type environment."""

    def __init__(self, program: Program | None = None):
        self.program = program if program is not None else Program()
        self.observed_types: list[Type] = []
        self.accumulator_types: list[Type] = []
        self.definition_types: dict[str, Type] = {}
        self._call_stack: list[str] = []
        self._subst: Substitution = {}

    # ------------------------------------------------------------------ API

    def check_expression(self, expr: Expr,
                         input_types: Mapping[str, Type] | None = None) -> TypeReport:
        """Infer the type of ``expr``; free variables take their types from
        ``input_types`` (the database schema)."""
        self.observed_types = []
        self.accumulator_types = []
        self._subst = {}
        env = dict(input_types or {})
        result = self._infer(expr, env)
        result = apply_substitution(result, self._subst)
        observed = [apply_substitution(t, self._subst) for t in self.observed_types]
        accumulators = [apply_substitution(t, self._subst) for t in self.accumulator_types]
        return TypeReport(
            result_type=result,
            observed_types=observed,
            accumulator_types=accumulators,
            definition_types=dict(self.definition_types),
        )

    def check_program(self, input_types: Mapping[str, Type] | None = None) -> TypeReport:
        """Check the program's main expression (which must exist)."""
        if self.program.main is None:
            raise SRLTypeError("program has no main expression to check")
        return self.check_expression(self.program.main, input_types)

    # ------------------------------------------------------------ inference

    def _note(self, t: Type) -> Type:
        self.observed_types.append(t)
        return t

    def _infer(self, expr: Expr, env: dict[str, Type]) -> Type:
        if isinstance(expr, BoolConst):
            return self._note(BOOL)
        if isinstance(expr, AtomConst):
            return self._note(ATOM)
        if isinstance(expr, NatConst):
            return self._note(NAT)
        if isinstance(expr, Var):
            if expr.name not in env:
                raise SRLNameError(f"unbound variable in type checking: {expr.name}")
            return self._note(env[expr.name])
        if isinstance(expr, If):
            cond_type = self._infer(expr.cond, env)
            self._subst = unify(cond_type, BOOL, self._subst)
            then_type = self._infer(expr.then_branch, env)
            else_type = self._infer(expr.else_branch, env)
            self._subst = unify(then_type, else_type, self._subst)
            return self._note(apply_substitution(then_type, self._subst))
        if isinstance(expr, TupleExpr):
            return self._note(TupleType(tuple(self._infer(item, env) for item in expr.items)))
        if isinstance(expr, Select):
            target_type = apply_substitution(self._infer(expr.target, env), self._subst)
            if isinstance(target_type, TypeVar):
                raise SRLTypeError(
                    f"cannot determine the tuple type being selected from: {expr!r:.60}"
                )
            if not isinstance(target_type, TupleType):
                raise SRLTypeError(f"sel_{expr.index} applied to non-tuple type {target_type}")
            if not 1 <= expr.index <= target_type.width:
                raise SRLTypeError(
                    f"sel_{expr.index} out of range for width-{target_type.width} tuple"
                )
            return self._note(target_type.fields[expr.index - 1])
        if isinstance(expr, (Equal, LessEq)):
            left = self._infer(expr.left, env)
            right = self._infer(expr.right, env)
            self._subst = unify(left, right, self._subst)
            if isinstance(expr, LessEq):
                resolved = apply_substitution(left, self._subst)
                if isinstance(resolved, TypeVar):
                    self._subst = unify(resolved, ATOM, self._subst)
                elif not isinstance(resolved, (AtomType, NatType)):
                    raise SRLTypeError(f"<= compares atoms or naturals, not {resolved}")
            return self._note(BOOL)
        if isinstance(expr, EmptySet):
            return self._note(SetType(fresh_type_var()))
        if isinstance(expr, Insert):
            element_type = self._infer(expr.element, env)
            target_type = self._infer(expr.target, env)
            self._subst = unify(target_type, SetType(element_type), self._subst)
            return self._note(apply_substitution(target_type, self._subst))
        if isinstance(expr, SetReduce):
            return self._infer_reduce(expr, env, SetType)
        if isinstance(expr, ListReduce):
            return self._infer_reduce(expr, env, ListType)
        if isinstance(expr, Call):
            return self._infer_call(expr, env)
        if isinstance(expr, New):
            source = self._infer(expr.source, env)
            self._subst = unify(source, SetType(ATOM), self._subst)
            return self._note(ATOM)
        if isinstance(expr, Choose):
            element = fresh_type_var()
            source = self._infer(expr.source, env)
            self._subst = unify(source, SetType(element), self._subst)
            return self._note(apply_substitution(element, self._subst))
        if isinstance(expr, Rest):
            element = fresh_type_var()
            source = self._infer(expr.source, env)
            self._subst = unify(source, SetType(element), self._subst)
            return self._note(apply_substitution(source, self._subst))
        if isinstance(expr, EmptyList):
            return self._note(ListType(fresh_type_var()))
        if isinstance(expr, ConsList):
            item_type = self._infer(expr.item, env)
            target_type = self._infer(expr.target, env)
            self._subst = unify(target_type, ListType(item_type), self._subst)
            return self._note(apply_substitution(target_type, self._subst))
        if isinstance(expr, Lambda):
            raise SRLTypeError("a lambda can only appear as the app/acc of a reduce")
        raise SRLTypeError(f"cannot type-check node {type(expr).__name__}")

    def _infer_reduce(self, expr: SetReduce | ListReduce, env: dict[str, Type],
                      container) -> Type:
        element_type = fresh_type_var("elem")
        source_type = self._infer(expr.source, env)
        self._subst = unify(source_type, container(element_type), self._subst)

        base_type = self._infer(expr.base, env)
        extra_type = self._infer(expr.extra, env)

        # app : (element, extra) -> T''
        app_env = dict(env)
        app_env[expr.app.params[0]] = apply_substitution(element_type, self._subst)
        app_env[expr.app.params[1]] = apply_substitution(extra_type, self._subst)
        applied_type = self._infer(expr.app.body, app_env)

        # acc : (T'', T') -> T'
        acc_env = dict(env)
        acc_env[expr.acc.params[0]] = apply_substitution(applied_type, self._subst)
        acc_env[expr.acc.params[1]] = apply_substitution(base_type, self._subst)
        acc_type = self._infer(expr.acc.body, acc_env)
        self._subst = unify(acc_type, base_type, self._subst)

        resolved = apply_substitution(base_type, self._subst)
        self.accumulator_types.append(resolved)
        return self._note(resolved)

    def _infer_call(self, expr: Call, env: dict[str, Type]) -> Type:
        definition = self.program.definitions.get(expr.name)
        if definition is None:
            raise SRLNameError(f"call of unknown function: {expr.name}")
        if expr.name in self._call_stack:
            raise SRLTypeError(
                f"recursive call of {expr.name}: SRL definitions cannot be recursive"
            )
        if len(expr.args) != len(definition.params):
            raise SRLTypeError(
                f"{expr.name} expects {len(definition.params)} arguments, "
                f"got {len(expr.args)}"
            )
        argument_types = [self._infer(arg, env) for arg in expr.args]

        body_env = dict(env)
        for param, param_type, annotation in zip(
            definition.params, argument_types,
            definition.param_types or (None,) * len(definition.params),
        ):
            if annotation is not None:
                self._subst = unify(param_type, annotation, self._subst)
            body_env[param] = apply_substitution(param_type, self._subst)

        self._call_stack.append(expr.name)
        try:
            result = self._infer(definition.body, body_env)
        finally:
            self._call_stack.pop()

        if definition.return_type is not None:
            self._subst = unify(result, definition.return_type, self._subst)
        resolved = apply_substitution(result, self._subst)
        self.definition_types[expr.name] = resolved
        return self._note(resolved)


def check_program(program: Program,
                  input_types: Mapping[str, Type] | None = None,
                  database: Database | Mapping[str, object] | None = None) -> TypeReport:
    """Convenience wrapper: type-check ``program.main``.

    ``input_types`` may be given directly, or derived from a sample
    ``database`` (whichever is handier for the caller).
    """
    if input_types is None and database is not None:
        input_types = database_types(database)
    return TypeChecker(program).check_program(input_types)
