"""The s-expression surface syntax for SRL programs.

Grammar (informal)::

    program    ::= form*
    form       ::= definition | expression
    definition ::= (define (NAME param*) expression)
    expression ::= true | false | emptyset | emptylist | NAME
                 | (atom INT) | (nat INT)
                 | |quoted name|               ; verbatim symbol, \\ escapes
                 | (if expr expr expr)
                 | (tuple expr*)
                 | (sel INT expr)
                 | (= expr expr) | (<= expr expr)
                 | (insert expr expr)
                 | (lambda (NAME NAME) expr)
                 | (set-reduce expr lambda lambda expr expr)
                 | (list-reduce expr lambda lambda expr expr)
                 | (cons expr expr)
                 | (new expr) | (choose expr) | (rest expr)
                 | (NAME expr*)                 ; call of a definition

Comments start with ``;`` and run to the end of the line.  The last
non-definition form of a program becomes its main expression.

Symbols wrapped in ``|...|`` are taken verbatim (with ``\\`` escaping the
next character), so names that would otherwise collide with the grammar —
reserved words, integer-shaped names, names containing delimiters — can
still be parsed; the pretty printer emits this quoting automatically.

The pretty printer (:mod:`repro.core.pretty`) emits exactly this syntax, so
``parse_expression(pretty(e)) == e`` for every expression ``e``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import (
    AtomConst,
    BoolConst,
    Call,
    Choose,
    ConsList,
    EmptyList,
    EmptySet,
    Equal,
    Expr,
    FunctionDef,
    If,
    Insert,
    Lambda,
    LessEq,
    ListReduce,
    NatConst,
    New,
    Program,
    Rest,
    Select,
    SetReduce,
    TupleExpr,
    Var,
)
from .errors import SRLSyntaxError
from .values import Atom

__all__ = ["parse_program", "parse_expression", "tokenize"]


@dataclass(frozen=True)
class _Token:
    text: str
    line: int
    column: int
    #: True for ``|...|``-quoted symbols: their text is taken verbatim and
    #: never interpreted as a keyword, literal or integer.
    quoted: bool = False


_RESERVED = {
    "define", "if", "tuple", "sel", "=", "<=", "insert", "lambda",
    "set-reduce", "list-reduce", "cons", "new", "choose", "rest",
    "atom", "nat", "true", "false", "emptyset", "emptylist",
}


def tokenize(text: str) -> list[_Token]:
    """Split ``text`` into parenthesis and symbol tokens, tracking position."""
    tokens: list[_Token] = []
    line, column = 1, 1
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            column += 1
            i += 1
            continue
        if ch == ";":
            while i < length and text[i] != "\n":
                i += 1
            continue
        if ch in "()":
            tokens.append(_Token(ch, line, column))
            column += 1
            i += 1
            continue
        if ch == "|":
            # |...|-quoted symbol: taken verbatim (never a keyword or
            # integer); backslash escapes the next character.  This is how
            # the pretty printer round-trips names that would otherwise
            # collide with the grammar.
            start_line, start_column = line, column
            i += 1
            column += 1
            parts: list[str] = []
            while i < length and text[i] != "|":
                if text[i] == "\\" and i + 1 < length:
                    i += 1
                    column += 1
                if text[i] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                parts.append(text[i])
                i += 1
            if i >= length:
                raise SRLSyntaxError("unterminated |...| symbol",
                                     start_line, start_column)
            i += 1  # closing '|'
            column += 1
            tokens.append(_Token("".join(parts), start_line, start_column,
                                 quoted=True))
            continue
        start = i
        start_column = column
        while i < length and text[i] not in " \t\r\n();|":
            i += 1
            column += 1
        tokens.append(_Token(text[start:i], line, start_column))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._position = 0

    def at_end(self) -> bool:
        return self._position >= len(self._tokens)

    def peek(self) -> _Token:
        if self.at_end():
            raise SRLSyntaxError("unexpected end of input")
        return self._tokens[self._position]

    def advance(self) -> _Token:
        token = self.peek()
        self._position += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.advance()
        if token.text != text:
            raise SRLSyntaxError(
                f"expected '{text}' but found '{token.text}'", token.line, token.column
            )
        return token

    # ---------------------------------------------------------------- sexpr

    def parse_sexpr(self):
        """Parse one s-expression into nested Python lists of tokens.

        Only *unquoted* parentheses are structural: a ``|...|``-quoted
        symbol whose text happens to be ``(`` or ``)`` is an ordinary
        symbol token.
        """
        token = self.advance()
        if token.quoted:
            return token
        if token.text == "(":
            items = []
            while True:
                nxt = self.peek()
                if not nxt.quoted and nxt.text == ")":
                    break
                items.append(self.parse_sexpr())
            self.expect(")")
            return items
        if token.text == ")":
            raise SRLSyntaxError("unexpected ')'", token.line, token.column)
        return token


def _as_int(token: _Token, context: str) -> int:
    if token.quoted:
        # Quoted symbols are never literals, even when digit-shaped.
        raise SRLSyntaxError(
            f"expected an integer in {context}, found the quoted symbol "
            f"'|{token.text}|'",
            token.line, token.column,
        )
    try:
        return int(token.text)
    except ValueError:
        raise SRLSyntaxError(
            f"expected an integer in {context}, found '{token.text}'",
            token.line, token.column,
        ) from None


def _symbol(sexpr, context: str) -> _Token:
    if isinstance(sexpr, _Token):
        return sexpr
    raise SRLSyntaxError(f"expected a symbol in {context}, found a list")


def _build_lambda(sexpr) -> Lambda:
    expr = _build_expression(sexpr)
    if not isinstance(expr, Lambda):
        raise SRLSyntaxError("expected a (lambda (x y) ...) form")
    return expr


def _build_expression(sexpr) -> Expr:
    if isinstance(sexpr, _Token):
        text = sexpr.text
        if sexpr.quoted:
            return Var(text)
        if text == "true":
            return BoolConst(True)
        if text == "false":
            return BoolConst(False)
        if text == "emptyset":
            return EmptySet()
        if text == "emptylist":
            return EmptyList()
        if text.lstrip("-").isdigit():
            raise SRLSyntaxError(
                f"bare integer '{text}': write (atom {text}) or (nat {text})",
                sexpr.line, sexpr.column,
            )
        return Var(text)

    if not sexpr:
        raise SRLSyntaxError("empty form '()'")

    head = sexpr[0]
    if isinstance(head, _Token):
        keyword = head.text
        rest = sexpr[1:]
        if head.quoted:
            # A quoted head is always a call, even of a reserved-looking name.
            return Call(keyword, tuple(_build_expression(arg) for arg in rest))
        if keyword == "atom":
            _require_arity(rest, 1, keyword, head)
            return AtomConst(Atom(_as_int(_symbol(rest[0], "atom"), "atom")))
        if keyword == "nat":
            _require_arity(rest, 1, keyword, head)
            return NatConst(_as_int(_symbol(rest[0], "nat"), "nat"))
        if keyword == "if":
            _require_arity(rest, 3, keyword, head)
            return If(*(_build_expression(arg) for arg in rest))
        if keyword == "tuple":
            return TupleExpr(tuple(_build_expression(arg) for arg in rest))
        if keyword == "sel":
            _require_arity(rest, 2, keyword, head)
            index = _as_int(_symbol(rest[0], "sel"), "sel")
            return Select(index, _build_expression(rest[1]))
        if keyword == "=":
            _require_arity(rest, 2, keyword, head)
            return Equal(_build_expression(rest[0]), _build_expression(rest[1]))
        if keyword == "<=":
            _require_arity(rest, 2, keyword, head)
            return LessEq(_build_expression(rest[0]), _build_expression(rest[1]))
        if keyword == "insert":
            _require_arity(rest, 2, keyword, head)
            return Insert(_build_expression(rest[0]), _build_expression(rest[1]))
        if keyword == "cons":
            _require_arity(rest, 2, keyword, head)
            return ConsList(_build_expression(rest[0]), _build_expression(rest[1]))
        if keyword == "lambda":
            _require_arity(rest, 2, keyword, head)
            params_sexpr = rest[0]
            if not isinstance(params_sexpr, list) or len(params_sexpr) != 2:
                raise SRLSyntaxError(
                    "lambda takes exactly two parameters: (lambda (x y) body)",
                    head.line, head.column,
                )
            params = tuple(_symbol(p, "lambda parameters").text for p in params_sexpr)
            return Lambda(params, _build_expression(rest[1]))  # type: ignore[arg-type]
        if keyword in ("set-reduce", "list-reduce"):
            _require_arity(rest, 5, keyword, head)
            source = _build_expression(rest[0])
            app = _build_lambda(rest[1])
            acc = _build_lambda(rest[2])
            base = _build_expression(rest[3])
            extra = _build_expression(rest[4])
            node = SetReduce if keyword == "set-reduce" else ListReduce
            return node(source, app, acc, base, extra)
        if keyword == "new":
            _require_arity(rest, 1, keyword, head)
            return New(_build_expression(rest[0]))
        if keyword == "choose":
            _require_arity(rest, 1, keyword, head)
            return Choose(_build_expression(rest[0]))
        if keyword == "rest":
            _require_arity(rest, 1, keyword, head)
            return Rest(_build_expression(rest[0]))
        if keyword == "define":
            raise SRLSyntaxError(
                "define is only allowed at the top level of a program",
                head.line, head.column,
            )
        # Anything else is a call of a named definition.
        return Call(keyword, tuple(_build_expression(arg) for arg in rest))

    raise SRLSyntaxError("a form must start with a symbol")


def _require_arity(args, arity: int, keyword: str, head: _Token) -> None:
    if len(args) != arity:
        raise SRLSyntaxError(
            f"{keyword} takes {arity} argument(s), got {len(args)}",
            head.line, head.column,
        )


def _build_definition(sexpr) -> FunctionDef:
    head = sexpr[0]
    rest = sexpr[1:]
    if len(rest) != 2:
        raise SRLSyntaxError("define takes a signature and a body", head.line, head.column)
    signature = rest[0]
    if not isinstance(signature, list) or not signature:
        raise SRLSyntaxError(
            "define signature must be (name param*)", head.line, head.column
        )
    name = _symbol(signature[0], "define").text
    params = tuple(_symbol(p, "define parameters").text for p in signature[1:])
    body = _build_expression(rest[1])
    return FunctionDef(name=name, params=params, body=body)


def parse_expression(text: str) -> Expr:
    """Parse a single expression."""
    parser = _Parser(tokenize(text))
    sexpr = parser.parse_sexpr()
    if not parser.at_end():
        extra = parser.peek()
        raise SRLSyntaxError("trailing input after expression", extra.line, extra.column)
    return _build_expression(sexpr)


def parse_program(text: str) -> Program:
    """Parse a whole program: a sequence of ``define`` forms and
    expressions.  The last non-definition form becomes the main
    expression."""
    parser = _Parser(tokenize(text))
    program = Program()
    while not parser.at_end():
        sexpr = parser.parse_sexpr()
        is_definition = (
            isinstance(sexpr, list)
            and sexpr
            and isinstance(sexpr[0], _Token)
            and sexpr[0].text == "define"
            and not sexpr[0].quoted
        )
        if is_definition:
            program.define(_build_definition(sexpr))
        else:
            program.main = _build_expression(sexpr)
    return program
