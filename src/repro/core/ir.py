"""Lowering SRL abstract syntax into a flat, register-style IR.

The tree-walking :class:`~repro.core.evaluator.Evaluator` re-discovers the
same facts on every visit: which scope a variable lives in, which definition
a ``Call`` names, whether a sub-expression is a constant.  Lowering resolves
all of that once:

* **Pre-resolved variable slots.**  Every function body gets one flat frame
  of numbered registers.  Function parameters and lambda parameters are
  assigned slots at lowering time, so a ``Var`` is either a register read or
  a database lookup — never a chained scope walk.  (Per rule 9 a lambda body
  sees only its own two parameters plus the database, which is exactly what
  the slot-resolution scopes reproduce.)

* **Pre-bound calls.**  A ``Call`` is resolved against the program's
  definition table at lowering time.  Well-formed calls carry the callee's
  name for the compiler to bind directly to the callee's compiled closure;
  calls that the interpreter would reject at runtime (unknown name, arity
  mismatch) lower to a :data:`Op.RAISE` that reproduces the interpreter's
  error *when executed*, so dead branches stay dead.  Statically recursive
  definitions compile with a re-entry guard (the language is closed under
  composition only).

* **Constant folding.**  Pure scalar/tuple operations over compile-time
  constants (``tuple``, ``sel``, ``=``, ``if`` with a constant condition,
  and the literals) are evaluated during lowering.  Operations that the
  evaluator *instruments* (``insert``, reduces, calls, ``new``) are never
  folded, so the compiled backend preserves the interpreter's ``inserts`` /
  iteration / call / ``new`` counters exactly.  ``<=`` is not folded either:
  its value can depend on the session's ``atom_order``.

The IR is "flat with structured control": each block is a linear instruction
list, and the only nesting is the two-armed :data:`Op.IF` and the loop
bodies of :data:`Op.REDUCE` — the same shape WebAssembly uses, and the shape
:mod:`repro.core.compiler` needs to emit straight-line Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional

from .ast import (
    AtomConst,
    BoolConst,
    Call,
    Choose,
    ConsList,
    EmptyList,
    EmptySet,
    Equal,
    Expr,
    If,
    Insert,
    Lambda,
    LessEq,
    ListReduce,
    NatConst,
    New,
    Program,
    Rest,
    Select,
    SetReduce,
    TupleExpr,
    Var,
    called_functions,
)
from .values import EMPTY_SET, SRLTuple, value_equal

__all__ = [
    "Op",
    "Instr",
    "Block",
    "IRFunction",
    "IRProgram",
    "lower_program",
    "lower_expression",
]


class Op(IntEnum):
    """IR opcodes.  Operands are register numbers unless noted."""

    CONST = 0        # args: (value,)                   dest = literal value
    LOAD_DB = 1      # args: (name,)                    dest = database lookup
    TUPLE = 3        # args: (src_slots,)
    SELECT = 4       # args: (src, index)
    EQUAL = 5        # args: (left, right)
    LESSEQ = 6       # args: (left, right)              atom_order sensitive
    INSERT = 7       # args: (element, target)          instrumented
    CHOOSE = 8       # args: (src,)
    REST = 9         # args: (src,)
    NEW = 10         # args: (src,)                     instrumented
    CONS = 11        # args: (item, target)
    EMPTY_LIST = 12  # args: ()                         allow_lists-gated
    CALL = 13        # args: (callee_name, arg_slots)   pre-bound by compiler
    REDUCE = 14      # args: (is_set, src, base, extra, app_block, acc_block,
                     #        app_slots, acc_slots)
    IF = 15          # args: (cond, then_block, else_block)
    RAISE = 16       # args: (exc_kind, message)        exc_kind: "runtime"|"name"
    CHECK_SOURCE = 17  # args: (src, is_set)            reduce source type check
    CHECK_LISTS = 18   # args: ()                       allow_lists gate
    CHECK_NEW = 19     # args: ()                       allow_new gate


@dataclass(frozen=True)
class Instr:
    op: Op
    dest: int
    args: tuple = ()


@dataclass(frozen=True)
class Block:
    """A linear run of instructions leaving its value in register ``result``."""

    instrs: tuple[Instr, ...]
    result: int


@dataclass(frozen=True)
class IRFunction:
    """One lowered function body (or the program's main expression)."""

    name: str
    params: tuple[str, ...]
    n_slots: int
    block: Block
    #: True when the definition sits on a static call-graph cycle; the
    #: compiler then emits the interpreter's recursion guard at entry.
    guarded: bool = False


@dataclass
class IRProgram:
    """A whole lowered program: one IR function per definition plus main."""

    functions: dict[str, IRFunction] = field(default_factory=dict)
    main: Optional[IRFunction] = None


# ------------------------------------------------------------------ operands
#
# During lowering an expression evaluates to either a compile-time constant
# (folded) or a register.  Constants are materialized into registers only at
# the point an instruction actually consumes one.

_CONST = "const"
_SLOT = "slot"


def _is_const(operand) -> bool:
    return operand[0] is _CONST


def _cycle_members(program: Program) -> frozenset[str]:
    """Definition names that sit on a cycle of the static call graph
    (including self-loops).  Only these need a runtime re-entry guard."""
    graph = {
        name: sorted(called_functions(definition.body) & program.definitions.keys())
        for name, definition in program.definitions.items()
    }
    members: set[str] = set()
    # One DFS per root: the root is a cycle member iff it is reachable from
    # itself.  Quadratic in the worst case, but definition tables are tiny
    # and this runs once per compilation.
    for root in graph:
        stack = [(root, iter(graph[root]))]
        visited = {root}
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                if successor == root:
                    members.add(root)
                    continue
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(graph[successor])))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
    return frozenset(members)


class _Lowerer:
    """Lowers one function body into a frame of registers."""

    def __init__(self, program: Program, name: str, params: tuple[str, ...]):
        self.program = program
        self.name = name
        self.params = params
        self.n_slots = len(params)
        self._instrs_stack: list[list[Instr]] = [[]]

    # ------------------------------------------------------------- plumbing

    def _new_slot(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    def _emit(self, op: Op, dest: int, args: tuple = ()) -> int:
        self._instrs_stack[-1].append(Instr(op, dest, args))
        return dest

    def _slot_of(self, operand) -> int:
        """Materialize a constant operand into a register if necessary."""
        if operand[0] is _SLOT:
            return operand[1]
        return self._emit(Op.CONST, self._new_slot(), (operand[1],))

    def _lower_block(self, expr: Expr, scope: dict[str, int]) -> Block:
        self._instrs_stack.append([])
        result = self._slot_of(self._lower(expr, scope))
        return Block(tuple(self._instrs_stack.pop()), result)

    def lower(self, body: Expr) -> IRFunction:
        scope = {name: slot for slot, name in enumerate(self.params)}
        block = self._lower_block(body, scope)
        return IRFunction(self.name, self.params, self.n_slots, block)

    # ------------------------------------------------------------- lowering

    def _lower(self, expr: Expr, scope: dict[str, int]):
        kind = type(expr)
        if kind is BoolConst or kind is NatConst:
            return (_CONST, expr.value)
        if kind is AtomConst:
            return (_CONST, expr.value)
        if kind is EmptySet:
            return (_CONST, EMPTY_SET)
        if kind is Var:
            slot = scope.get(expr.name)
            if slot is not None:
                return (_SLOT, slot)
            return (_SLOT, self._emit(Op.LOAD_DB, self._new_slot(), (expr.name,)))
        if kind is If:
            return self._lower_if(expr, scope)
        if kind is TupleExpr:
            items = [self._lower(item, scope) for item in expr.items]
            if all(_is_const(item) for item in items):
                return (_CONST, SRLTuple(item[1] for item in items))
            slots = tuple(self._slot_of(item) for item in items)
            return (_SLOT, self._emit(Op.TUPLE, self._new_slot(), (slots,)))
        if kind is Select:
            target = self._lower(expr.target, scope)
            if _is_const(target):
                value = target[1]
                if isinstance(value, SRLTuple) and 1 <= expr.index <= len(value):
                    return (_CONST, value.select(expr.index))
            return (_SLOT, self._emit(Op.SELECT, self._new_slot(),
                                      (self._slot_of(target), expr.index)))
        if kind is Equal:
            left = self._lower(expr.left, scope)
            right = self._lower(expr.right, scope)
            if _is_const(left) and _is_const(right):
                return (_CONST, value_equal(left[1], right[1]))
            return (_SLOT, self._emit(Op.EQUAL, self._new_slot(),
                                      (self._slot_of(left), self._slot_of(right))))
        if kind is LessEq:
            # Never folded: the answer can depend on the session atom_order.
            left = self._slot_of(self._lower(expr.left, scope))
            right = self._slot_of(self._lower(expr.right, scope))
            return (_SLOT, self._emit(Op.LESSEQ, self._new_slot(), (left, right)))
        if kind is Insert:
            element = self._slot_of(self._lower(expr.element, scope))
            target = self._slot_of(self._lower(expr.target, scope))
            return (_SLOT, self._emit(Op.INSERT, self._new_slot(), (element, target)))
        if kind is Choose:
            source = self._slot_of(self._lower(expr.source, scope))
            return (_SLOT, self._emit(Op.CHOOSE, self._new_slot(), (source,)))
        if kind is Rest:
            source = self._slot_of(self._lower(expr.source, scope))
            return (_SLOT, self._emit(Op.REST, self._new_slot(), (source,)))
        if kind is New:
            self._emit(Op.CHECK_NEW, -1)
            source = self._slot_of(self._lower(expr.source, scope))
            return (_SLOT, self._emit(Op.NEW, self._new_slot(), (source,)))
        if kind is EmptyList:
            return (_SLOT, self._emit(Op.EMPTY_LIST, self._new_slot()))
        if kind is ConsList:
            self._emit(Op.CHECK_LISTS, -1)
            item = self._slot_of(self._lower(expr.item, scope))
            target = self._slot_of(self._lower(expr.target, scope))
            return (_SLOT, self._emit(Op.CONS, self._new_slot(), (item, target)))
        if kind is SetReduce:
            return self._lower_reduce(expr, scope, is_set=True)
        if kind is ListReduce:
            self._emit(Op.CHECK_LISTS, -1)
            return self._lower_reduce(expr, scope, is_set=False)
        if kind is Call:
            return self._lower_call(expr, scope)
        if kind is Lambda:
            return (_SLOT, self._emit(
                Op.RAISE, self._new_slot(),
                ("runtime", "a lambda can only appear as the app/acc argument of a reduce"),
            ))
        return (_SLOT, self._emit(
            Op.RAISE, self._new_slot(),
            ("runtime", f"cannot evaluate expression of type {type(expr).__name__}"),
        ))

    def _lower_if(self, expr: If, scope: dict[str, int]):
        cond = self._lower(expr.cond, scope)
        if _is_const(cond) and isinstance(cond[1], bool):
            # The untaken branch is the same branch the interpreter would
            # skip, so dropping it changes neither values nor the
            # instrumented counters.
            return self._lower(expr.then_branch if cond[1] else expr.else_branch, scope)
        dest = self._new_slot()
        then_block = self._lower_block(expr.then_branch, scope)
        else_block = self._lower_block(expr.else_branch, scope)
        return (_SLOT, self._emit(Op.IF, dest,
                                  (self._slot_of(cond), then_block, else_block)))

    def _lower_reduce(self, expr: SetReduce | ListReduce, scope: dict[str, int],
                      is_set: bool):
        source = self._slot_of(self._lower(expr.source, scope))
        # The interpreter type-checks the source before touching base/extra;
        # an explicit check keeps that error order.
        self._emit(Op.CHECK_SOURCE, -1, (source, is_set))
        base = self._slot_of(self._lower(expr.base, scope))
        extra = self._slot_of(self._lower(expr.extra, scope))
        app_slots = (self._new_slot(), self._new_slot())
        acc_slots = (self._new_slot(), self._new_slot())
        # Rule 9: a lambda body sees only its own parameters (plus the
        # database); a duplicated name resolves to the second slot, exactly
        # as the interpreter's dict construction does.
        app_scope = dict(zip(expr.app.params, app_slots))
        acc_scope = dict(zip(expr.acc.params, acc_slots))
        app_block = self._lower_block(expr.app.body, app_scope)
        acc_block = self._lower_block(expr.acc.body, acc_scope)
        return (_SLOT, self._emit(
            Op.REDUCE, self._new_slot(),
            (is_set, source, base, extra, app_block, acc_block, app_slots, acc_slots),
        ))

    def _lower_call(self, expr: Call, scope: dict[str, int]):
        definition = self.program.definitions.get(expr.name)
        if definition is None:
            # The interpreter rejects unknown callees before evaluating the
            # arguments; reproduce the error (and its timing) lazily.
            return (_SLOT, self._emit(
                Op.RAISE, self._new_slot(),
                ("name", f"call of unknown function: {expr.name}"),
            ))
        arg_slots = tuple(self._slot_of(self._lower(arg, scope)) for arg in expr.args)
        if len(arg_slots) != len(definition.params):
            # Arity is checked after argument evaluation, matching the
            # interpreter's _apply_definition.
            return (_SLOT, self._emit(
                Op.RAISE, self._new_slot(),
                ("runtime",
                 f"{definition.name} expects {len(definition.params)} arguments, "
                 f"got {len(arg_slots)}"),
            ))
        return (_SLOT, self._emit(Op.CALL, self._new_slot(), (expr.name, arg_slots)))


def lower_program(program: Program, main: Expr | None = None) -> IRProgram:
    """Lower every definition of ``program`` (and ``main``, defaulting to the
    program's own main expression) into an :class:`IRProgram`."""
    guarded = _cycle_members(program)
    result = IRProgram()
    for name, definition in program.definitions.items():
        lowered = _Lowerer(program, name, tuple(definition.params)).lower(definition.body)
        if name in guarded:
            lowered = IRFunction(lowered.name, lowered.params, lowered.n_slots,
                                 lowered.block, guarded=True)
        result.functions[name] = lowered
    main_expr = main if main is not None else program.main
    if main_expr is not None:
        result.main = _Lowerer(program, "__main__", ()).lower(main_expr)
    return result


def lower_expression(expr: Expr, program: Program | None = None) -> IRProgram:
    """Lower a standalone expression (with optional auxiliary definitions)."""
    return lower_program(program if program is not None else Program(), main=expr)


def count_instructions(block: Block) -> int:
    """Total instruction count of a block, nested control included (a crude
    compiled-size measure, used by tests and the analysis tooling)."""
    total = 0
    for instr in block.instrs:
        total += 1
        if instr.op is Op.IF:
            total += count_instructions(instr.args[1]) + count_instructions(instr.args[2])
        elif instr.op is Op.REDUCE:
            total += count_instructions(instr.args[4]) + count_instructions(instr.args[5])
    return total
