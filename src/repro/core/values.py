"""Runtime values for the SRL interpreter.

The paper's semantics rely on every type carrying a total order: ``choose``
returns the *minimal* element of a non-empty set and ``rest`` removes it,
so a set-reduce traversal always scans a set in ascending order of that
implementation order.  We therefore give every value a canonical *sort key*
(:func:`value_key`) and keep sets in a canonical sorted, duplicate-free
representation (:class:`SRLSet`).

Value kinds
-----------

================  =========================================================
Python value       SRL value
================  =========================================================
``bool``           boolean
:class:`Atom`      base-domain element (ordered by rank, then by name)
``int``            natural number (Section 5 extensions)
:class:`SRLTuple`  fixed-arity tuple
:class:`SRLSet`    finite set (canonically ordered, immutable)
:class:`SRLList`   finite list (LRL only; order is significant)
================  =========================================================

All values are immutable and hashable, so sets of sets, sets of tuples of
sets, and so on, work uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Iterator, Sequence, Union

from .errors import SRLRuntimeError

__all__ = [
    "Value",
    "Atom",
    "SRLTuple",
    "SRLSet",
    "SRLList",
    "value_key",
    "value_sort",
    "make_set",
    "make_tuple",
    "make_list",
    "EMPTY_SET",
    "is_value",
    "value_size",
    "value_to_python",
    "python_to_value",
]


@total_ordering
@dataclass(frozen=True)
class Atom:
    """An element of the finite base domain.

    ``rank`` is the element's position in the implementation order (the
    order ``choose`` scans); ``name`` is an optional human-readable label.
    Two atoms are equal iff their ranks are equal.
    """

    rank: int
    name: str = ""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and self.rank == other.rank

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self.rank < other.rank

    def __hash__(self) -> int:
        return hash(("atom", self.rank))

    def __str__(self) -> str:
        return self.name if self.name else f"d{self.rank}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        suffix = f", {self.name!r}" if self.name else ""
        return f"Atom({self.rank}{suffix})"


class SRLTuple(tuple):
    """A fixed-arity SRL tuple.  Components are accessed 1-based via
    :meth:`select`, matching the paper's ``sel_i`` / ``.i`` notation."""

    def select(self, index: int) -> "Value":
        """Return component ``index`` (1-based), as in the paper's ``t.i``."""
        if not 1 <= index <= len(self):
            raise SRLRuntimeError(
                f"tuple selector .{index} out of range for width-{len(self)} tuple"
            )
        return self[index - 1]

    def __str__(self) -> str:
        return "[" + ", ".join(format_value(v) for v in self) + "]"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SRLTuple({tuple(self)!r})"


class SRLSet:
    """A finite set in canonical order.

    The elements are stored as a sorted, duplicate-free tuple according to
    :func:`value_key`.  ``choose`` returns the first element and ``rest``
    the set of the remaining ones — the operational semantics of
    ``set-reduce`` in the paper.
    """

    __slots__ = ("_elements",)

    def __init__(self, elements: Iterable["Value"] = ()):
        canonical: list[Value] = []
        seen: set[Value] = set()
        for element in elements:
            if element not in seen:
                seen.add(element)
                canonical.append(element)
        canonical.sort(key=value_key)
        self._elements = tuple(canonical)

    @property
    def elements(self) -> tuple["Value", ...]:
        """The elements in ascending implementation order."""
        return self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator["Value"]:
        return iter(self._elements)

    def __contains__(self, item: object) -> bool:
        return item in self._elements

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SRLSet) and self._elements == other._elements

    def __hash__(self) -> int:
        return hash(("set", self._elements))

    def __str__(self) -> str:
        return "{" + ", ".join(format_value(v) for v in self._elements) + "}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SRLSet({list(self._elements)!r})"

    def is_empty(self) -> bool:
        return not self._elements

    def choose(self) -> "Value":
        """The minimal element in the implementation order."""
        if not self._elements:
            raise SRLRuntimeError("choose applied to the empty set")
        return self._elements[0]

    def rest(self) -> "SRLSet":
        """The set without its minimal element."""
        if not self._elements:
            raise SRLRuntimeError("rest applied to the empty set")
        result = SRLSet.__new__(SRLSet)
        result._elements = self._elements[1:]
        return result

    def insert(self, element: "Value") -> "SRLSet":
        """Return ``self`` with ``element`` added (no-op if already present)."""
        if element in self._elements:
            return self
        result = SRLSet.__new__(SRLSet)
        key = value_key(element)
        elements = self._elements
        lo, hi = 0, len(elements)
        while lo < hi:
            mid = (lo + hi) // 2
            if value_key(elements[mid]) < key:
                lo = mid + 1
            else:
                hi = mid
        result._elements = elements[:lo] + (element,) + elements[lo:]
        return result

    def union(self, other: "SRLSet") -> "SRLSet":
        return SRLSet(self._elements + other._elements)

    def ordered_under(self, permutation: Sequence[int]) -> list["Value"]:
        """The elements sorted under an alternative implementation order.

        ``permutation[rank]`` gives the new rank of the atom with that base
        rank; used by the order-independence tester (Section 7).
        """
        return sorted(self._elements, key=lambda v: value_key(v, tuple(permutation)))


class SRLList:
    """A finite list (LRL).  Unlike :class:`SRLSet`, order and multiplicity
    are significant, which is exactly why LRL escapes polynomial time."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable["Value"] = ()):
        self._items = tuple(items)

    @property
    def items(self) -> tuple["Value", ...]:
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator["Value"]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SRLList) and self._items == other._items

    def __hash__(self) -> int:
        return hash(("list", self._items))

    def __str__(self) -> str:
        return "<" + ", ".join(format_value(v) for v in self._items) + ">"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SRLList({list(self._items)!r})"

    def is_empty(self) -> bool:
        return not self._items

    def head(self) -> "Value":
        if not self._items:
            raise SRLRuntimeError("head applied to the empty list")
        return self._items[0]

    def tail(self) -> "SRLList":
        if not self._items:
            raise SRLRuntimeError("tail applied to the empty list")
        return SRLList(self._items[1:])

    def cons(self, item: "Value") -> "SRLList":
        return SRLList((item,) + self._items)


Value = Union[bool, int, Atom, SRLTuple, SRLSet, SRLList]

# Tags give a total order *across* kinds so heterogeneous comparisons are
# stable (bool < nat < atom < tuple < set < list).
_KIND_TAGS = {
    bool: 0,
    int: 1,
    Atom: 2,
    SRLTuple: 3,
    SRLSet: 4,
    SRLList: 5,
}


def value_key(value: "Value", atom_order: tuple[int, ...] | None = None):
    """A sort key implementing the global implementation order on values.

    ``atom_order`` optionally remaps atom ranks (``atom_order[rank]`` is the
    atom's position in the alternative order); this is how the Section 7
    order-independence tester varies the order ``choose`` uses without
    changing the values themselves.
    """
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, int):
        return (1, value)
    if isinstance(value, Atom):
        rank = value.rank if atom_order is None else atom_order[value.rank]
        return (2, rank)
    if isinstance(value, SRLTuple):
        return (3, len(value), tuple(value_key(v, atom_order) for v in value))
    if isinstance(value, SRLSet):
        ordered = (
            value.elements
            if atom_order is None
            else tuple(sorted(value.elements, key=lambda v: value_key(v, atom_order)))
        )
        return (4, len(ordered), tuple(value_key(v, atom_order) for v in ordered))
    if isinstance(value, SRLList):
        return (5, len(value.items), tuple(value_key(v, atom_order) for v in value.items))
    raise SRLRuntimeError(f"not an SRL value: {value!r}")


def value_sort(values: Iterable["Value"]) -> list["Value"]:
    """Sort values by the global implementation order."""
    return sorted(values, key=value_key)


#: The canonical empty set (rule 7's ``emptyset``).
EMPTY_SET = SRLSet()


def is_value(obj: object) -> bool:
    """True when ``obj`` is a well-formed SRL runtime value."""
    if isinstance(obj, (bool, int, Atom)):
        return True
    if isinstance(obj, SRLTuple):
        return all(is_value(v) for v in obj)
    if isinstance(obj, SRLSet):
        return all(is_value(v) for v in obj.elements)
    if isinstance(obj, SRLList):
        return all(is_value(v) for v in obj.items)
    return False


def value_size(value: "Value") -> int:
    """The number of atomic constituents of a value.

    This is the measure the Section 4 / Section 6 benchmarks use for "how
    big did the accumulator get": a bounded-width tuple of atoms has O(1)
    size whereas a set of k-tuples over an n-element domain can reach n^k.
    """
    if isinstance(value, (bool, Atom)):
        return 1
    if isinstance(value, int):
        return max(1, value.bit_length())
    if isinstance(value, SRLTuple):
        return sum(value_size(v) for v in value)
    if isinstance(value, SRLSet):
        return 1 + sum(value_size(v) for v in value.elements)
    if isinstance(value, SRLList):
        return 1 + sum(value_size(v) for v in value.items)
    raise SRLRuntimeError(f"not an SRL value: {value!r}")


def make_set(*elements: "Value") -> SRLSet:
    """Build an :class:`SRLSet` from the given elements."""
    return SRLSet(elements)


def make_tuple(*components: "Value") -> SRLTuple:
    """Build an :class:`SRLTuple` from the given components."""
    return SRLTuple(components)


def make_list(*items: "Value") -> SRLList:
    """Build an :class:`SRLList` from the given items."""
    return SRLList(items)


def format_value(value: "Value") -> str:
    """Human-readable rendering of a value (used by ``__str__`` methods)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    return str(value)


def value_to_python(value: "Value"):
    """Convert an SRL value into plain Python data (frozensets, tuples, ...).

    Useful for asserting against baseline algorithms in tests and benches.
    """
    if isinstance(value, (bool, int)):
        return value
    if isinstance(value, Atom):
        return value.rank
    if isinstance(value, SRLTuple):
        return tuple(value_to_python(v) for v in value)
    if isinstance(value, SRLSet):
        return frozenset(value_to_python(v) for v in value.elements)
    if isinstance(value, SRLList):
        return [value_to_python(v) for v in value.items]
    raise SRLRuntimeError(f"not an SRL value: {value!r}")


def python_to_value(obj) -> "Value":
    """Convert plain Python data into an SRL value.

    Integers become atoms (ranks) — *not* naturals — because inputs in the
    paper are database elements; use Python ``bool`` for booleans, tuples
    for SRL tuples, and (frozen)sets / lists for SRL sets / lists.
    """
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, int):
        return Atom(obj)
    if isinstance(obj, Atom):
        return obj
    if isinstance(obj, (SRLTuple, SRLSet, SRLList)):
        return obj
    if isinstance(obj, tuple):
        return SRLTuple(python_to_value(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return SRLSet(python_to_value(v) for v in obj)
    if isinstance(obj, list):
        return SRLList(python_to_value(v) for v in obj)
    raise SRLRuntimeError(f"cannot convert {obj!r} to an SRL value")
