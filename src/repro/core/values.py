"""Runtime values for the SRL interpreter.

The paper's semantics rely on every type carrying a total order: ``choose``
returns the *minimal* element of a non-empty set and ``rest`` removes it,
so a set-reduce traversal always scans a set in ascending order of that
implementation order.  We therefore give every value a canonical *sort key*
(:func:`value_key`) and keep sets in a canonical sorted, duplicate-free
representation (:class:`SRLSet`).

Value kinds
-----------

================  =========================================================
Python value       SRL value
================  =========================================================
``bool``           boolean
:class:`Atom`      base-domain element (ordered by rank, then by name)
``int``            natural number (Section 5 extensions)
:class:`SRLTuple`  fixed-arity tuple
:class:`SRLSet`    finite set (canonically ordered, immutable)
:class:`SRLList`   finite list (LRL only; order is significant)
================  =========================================================

All values are immutable and hashable, so sets of sets, sets of tuples of
sets, and so on, work uniformly.

Canonical-key caching
---------------------

Because values are immutable, every container (:class:`SRLTuple`,
:class:`SRLSet`, :class:`SRLList`) memoizes its canonical key per
``atom_order`` the first time it is computed, its structural hash, and its
:func:`value_size`.  :class:`SRLSet` additionally keeps the keys of its
elements aligned with the element tuple, so ``insert`` binary-searches over
cached keys, ``union`` is a linear merge of two sorted runs, and
construction detects already-sorted input without re-sorting.  The cached
key of a nested value is therefore computed once per ``atom_order`` over
the whole lifetime of the value instead of once per comparison — this is
what keeps set-of-sets workloads (powerset, TM simulation) from going
super-quadratic.  See DESIGN.md ("Caching architecture").

The module-level switch :func:`caches_enabled` (toggled through
:func:`repro.core.reference.legacy_mode`) re-enables the seed's uncached
code paths; it exists purely so benchmarks and differential tests can
measure the optimized paths against the original ones.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Iterator, Sequence, Union

from .errors import SRLRuntimeError

__all__ = [
    "Value",
    "Atom",
    "SRLTuple",
    "SRLSet",
    "SRLList",
    "value_key",
    "value_equal",
    "value_sort",
    "max_atom_rank",
    "make_set",
    "make_tuple",
    "make_list",
    "EMPTY_SET",
    "is_value",
    "value_size",
    "value_to_python",
    "python_to_value",
    "caches_enabled",
]


# When False, every operation falls back to the seed's uncached algorithms
# (recursive key recomputation, sort-on-construct, linear membership scans).
# Toggled only by repro.core.reference.legacy_mode for benchmarking and
# differential testing; never flip it directly.
_CACHES_ENABLED = True


def caches_enabled() -> bool:
    """Whether the canonical-key / hash / size caches are in use."""
    return _CACHES_ENABLED


def _set_caching(enabled: bool) -> None:
    global _CACHES_ENABLED
    _CACHES_ENABLED = enabled


#: How many *permuted* (non-natural) atom orders a value keeps keys for.
#: The natural-order key is kept forever; permuted keys mostly serve one
#: order-independence trial each (random permutations essentially never
#: repeat across trials), so the cache is bounded to stop long probing
#: sessions from accumulating one dead key tuple per trial per value.
_MAX_PERMUTED_KEYS = 4


def _store_key(cache: dict, atom_order, key):
    """Insert a computed key, evicting stale permuted entries if full."""
    if atom_order is not None and sum(1 for k in cache if k is not None) >= _MAX_PERMUTED_KEYS:
        for stale in [k for k in cache if k is not None]:
            del cache[stale]
    cache[atom_order] = key
    return key


@total_ordering
@dataclass(frozen=True)
class Atom:
    """An element of the finite base domain.

    ``rank`` is the element's position in the implementation order (the
    order ``choose`` scans); ``name`` is an optional human-readable label.
    Two atoms are equal iff their ranks are equal.
    """

    rank: int
    name: str = ""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and self.rank == other.rank

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self.rank < other.rank

    def __hash__(self) -> int:
        return hash(("atom", self.rank))

    def __str__(self) -> str:
        return self.name if self.name else f"d{self.rank}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        suffix = f", {self.name!r}" if self.name else ""
        return f"Atom({self.rank}{suffix})"


class SRLTuple(tuple):
    """A fixed-arity SRL tuple.  Components are accessed 1-based via
    :meth:`select`, matching the paper's ``sel_i`` / ``.i`` notation."""

    # tuple subclasses cannot carry non-empty __slots__, so the memoized
    # key/hash/size live in the instance __dict__, created lazily.

    def select(self, index: int) -> "Value":
        """Return component ``index`` (1-based), as in the paper's ``t.i``."""
        if not 1 <= index <= len(self):
            raise SRLRuntimeError(
                f"tuple selector .{index} out of range for width-{len(self)} tuple"
            )
        return self[index - 1]

    def _key(self, atom_order: tuple[int, ...] | None):
        cache = self.__dict__.get("_key_cache")
        if cache is None:
            cache = {}
            self.__dict__["_key_cache"] = cache
        key = cache.get(atom_order)
        if key is None:
            key = _store_key(
                cache, atom_order,
                (3, len(self), tuple(_value_key(v, atom_order) for v in self)),
            )
        return key

    def _size(self) -> int:
        size = self.__dict__.get("_size_cache")
        if size is None:
            size = sum(value_size(v) for v in self)
            self.__dict__["_size_cache"] = size
        return size

    def __str__(self) -> str:
        return "[" + ", ".join(format_value(v) for v in self) + "]"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SRLTuple({tuple(self)!r})"


class SRLSet:
    """A finite set in canonical order.

    The elements are stored as a sorted, duplicate-free tuple according to
    :func:`value_key`, alongside the tuple of their cached keys.  ``choose``
    returns the first element and ``rest`` the set of the remaining ones —
    the operational semantics of ``set-reduce`` in the paper.
    """

    __slots__ = ("_elements", "_keys", "_key_cache", "_hash", "_size_cache")

    def __init__(self, elements: Iterable["Value"] = ()):
        self._key_cache = None
        self._hash = None
        self._size_cache = None
        if not _CACHES_ENABLED:
            canonical: list[Value] = []
            seen: set[Value] = set()
            for element in elements:
                if element not in seen:
                    seen.add(element)
                    canonical.append(element)
            canonical.sort(key=value_key)
            self._elements = tuple(canonical)
            self._keys = None
            return
        elems = list(elements)
        keys = [_value_key(e, None) for e in elems]
        ascending = True
        for i in range(len(keys) - 1):
            if not keys[i] < keys[i + 1]:
                ascending = False
                break
        if ascending:
            self._elements = tuple(elems)
            self._keys = tuple(keys)
            return
        order = sorted(range(len(keys)), key=keys.__getitem__)
        dedup_elems: list[Value] = []
        dedup_keys: list = []
        for i in order:
            key = keys[i]
            if dedup_keys and dedup_keys[-1] == key:
                continue
            dedup_keys.append(key)
            dedup_elems.append(elems[i])
        self._elements = tuple(dedup_elems)
        self._keys = tuple(dedup_keys)

    @classmethod
    def _from_sorted(cls, elements: tuple["Value", ...],
                     keys: tuple | None = None) -> "SRLSet":
        """Internal: wrap an already-canonical element tuple (with its
        aligned key tuple, when known) without re-sorting."""
        result = cls.__new__(cls)
        result._elements = elements
        result._keys = keys
        result._key_cache = None
        result._hash = None
        result._size_cache = None
        return result

    @property
    def elements(self) -> tuple["Value", ...]:
        """The elements in ascending implementation order."""
        return self._elements

    def _element_keys(self) -> tuple:
        """The cached natural-order keys, aligned with :attr:`elements`."""
        keys = self._keys
        if keys is None:
            keys = self._keys = tuple(_value_key(v, None) for v in self._elements)
        return keys

    def _key(self, atom_order: tuple[int, ...] | None):
        cache = self._key_cache
        if cache is None:
            cache = self._key_cache = {}
        key = cache.get(atom_order)
        if key is None:
            if atom_order is None:
                element_keys = self._element_keys()
            else:
                element_keys = tuple(
                    sorted(_value_key(v, atom_order) for v in self._elements)
                )
            key = _store_key(cache, atom_order,
                             (4, len(self._elements), tuple(element_keys)))
        return key

    def _size(self) -> int:
        size = self._size_cache
        if size is None:
            size = self._size_cache = 1 + sum(value_size(v) for v in self._elements)
        return size

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator["Value"]:
        return iter(self._elements)

    def __contains__(self, item: object) -> bool:
        if not _CACHES_ENABLED:
            return item in self._elements
        try:
            key = _value_key(item, None)
        except SRLRuntimeError:
            # Not an SRL value (e.g. a plain Python tuple probing for an
            # SRLTuple element): keep the seed's equality scan rather than
            # silently answering False.
            return item in self._elements
        keys = self._element_keys()
        index = bisect_left(keys, key)
        return index < len(keys) and keys[index] == key

    def __eq__(self, other: object) -> bool:
        # Equality follows the canonical key, not Python's ``==`` on the
        # element tuples: Python conflates bool with int (True == 1), which
        # would let a "canonical, duplicate-free" set hold two ==-equal
        # elements.  Keys are injective on values, so key equality is
        # structural equality with the kind tags respected.  Legacy mode
        # keeps the seed's tuple comparison.
        if self is other:
            return True
        if not isinstance(other, SRLSet):
            return False
        if not _CACHES_ENABLED:
            return self._elements == other._elements
        return self._key(None) == other._key(None)

    def __hash__(self) -> int:
        if not _CACHES_ENABLED:
            return hash(("set", self._elements))
        result = self._hash
        if result is None:
            # Hash the canonical key so eq-equal implies hash-equal under
            # the key-based equality above.
            result = self._hash = hash(("set", self._key(None)))
        return result

    def __str__(self) -> str:
        return "{" + ", ".join(format_value(v) for v in self._elements) + "}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SRLSet({list(self._elements)!r})"

    def is_empty(self) -> bool:
        return not self._elements

    def choose(self) -> "Value":
        """The minimal element in the implementation order."""
        if not self._elements:
            raise SRLRuntimeError("choose applied to the empty set")
        return self._elements[0]

    def rest(self) -> "SRLSet":
        """The set without its minimal element."""
        if not self._elements:
            raise SRLRuntimeError("rest applied to the empty set")
        keys = self._keys
        result = SRLSet._from_sorted(
            self._elements[1:], None if keys is None else keys[1:]
        )
        if _CACHES_ENABLED and self._size_cache is not None:
            result._size_cache = self._size_cache - value_size(self._elements[0])
        return result

    def insert(self, element: "Value") -> "SRLSet":
        """Return ``self`` with ``element`` added (no-op if already present)."""
        if not _CACHES_ENABLED:
            if element in self._elements:
                return self
            key = value_key(element)
            elements = self._elements
            lo, hi = 0, len(elements)
            while lo < hi:
                mid = (lo + hi) // 2
                if value_key(elements[mid]) < key:
                    lo = mid + 1
                else:
                    hi = mid
            return SRLSet._from_sorted(elements[:lo] + (element,) + elements[lo:])
        key = _value_key(element, None)
        keys = self._element_keys()
        index = bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return self
        result = SRLSet._from_sorted(
            self._elements[:index] + (element,) + self._elements[index:],
            keys[:index] + (key,) + keys[index:],
        )
        # Propagate the size cache incrementally: the evaluator asks for
        # value_size(accumulator) once per reduce iteration, and accumulators
        # grow one insert at a time — re-summing would be O(n) per iteration.
        if self._size_cache is not None:
            result._size_cache = self._size_cache + value_size(element)
        return result

    def union(self, other: "SRLSet") -> "SRLSet":
        if not _CACHES_ENABLED:
            return SRLSet(self._elements + other._elements)
        if not self._elements:
            return other
        if not other._elements:
            return self
        left, left_keys = self._elements, self._element_keys()
        right, right_keys = other._elements, other._element_keys()
        merged_elems: list[Value] = []
        merged_keys: list = []
        i = j = 0
        len_left, len_right = len(left), len(right)
        while i < len_left and j < len_right:
            lk, rk = left_keys[i], right_keys[j]
            if lk < rk:
                merged_elems.append(left[i])
                merged_keys.append(lk)
                i += 1
            elif rk < lk:
                merged_elems.append(right[j])
                merged_keys.append(rk)
                j += 1
            else:
                merged_elems.append(left[i])
                merged_keys.append(lk)
                i += 1
                j += 1
        if i < len_left:
            merged_elems.extend(left[i:])
            merged_keys.extend(left_keys[i:])
        elif j < len_right:
            merged_elems.extend(right[j:])
            merged_keys.extend(right_keys[j:])
        return SRLSet._from_sorted(tuple(merged_elems), tuple(merged_keys))

    def ordered_under(self, permutation: Sequence[int]) -> list["Value"]:
        """The elements sorted under an alternative implementation order.

        ``permutation[rank]`` gives the new rank of the atom with that base
        rank; used by the order-independence tester (Section 7).
        """
        atom_order = tuple(permutation)
        return sorted(self._elements, key=lambda v: _value_key(v, atom_order))


class SRLList:
    """A finite list (LRL).  Unlike :class:`SRLSet`, order and multiplicity
    are significant, which is exactly why LRL escapes polynomial time."""

    __slots__ = ("_items", "_key_cache", "_hash", "_size_cache")

    def __init__(self, items: Iterable["Value"] = ()):
        self._items = tuple(items)
        self._key_cache = None
        self._hash = None
        self._size_cache = None

    @property
    def items(self) -> tuple["Value", ...]:
        return self._items

    def _key(self, atom_order: tuple[int, ...] | None):
        cache = self._key_cache
        if cache is None:
            cache = self._key_cache = {}
        key = cache.get(atom_order)
        if key is None:
            key = _store_key(
                cache, atom_order,
                (5, len(self._items),
                 tuple(_value_key(v, atom_order) for v in self._items)),
            )
        return key

    def _size(self) -> int:
        size = self._size_cache
        if size is None:
            size = self._size_cache = 1 + sum(value_size(v) for v in self._items)
        return size

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator["Value"]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        # Key-based for the same reason as SRLSet.__eq__: Python's ``==``
        # conflates bool with int inside the item tuples.
        if self is other:
            return True
        if not isinstance(other, SRLList):
            return False
        if not _CACHES_ENABLED:
            return self._items == other._items
        return self._key(None) == other._key(None)

    def __hash__(self) -> int:
        if not _CACHES_ENABLED:
            return hash(("list", self._items))
        result = self._hash
        if result is None:
            result = self._hash = hash(("list", self._key(None)))
        return result

    def __str__(self) -> str:
        return "<" + ", ".join(format_value(v) for v in self._items) + ">"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SRLList({list(self._items)!r})"

    def is_empty(self) -> bool:
        return not self._items

    def head(self) -> "Value":
        if not self._items:
            raise SRLRuntimeError("head applied to the empty list")
        return self._items[0]

    def tail(self) -> "SRLList":
        if not self._items:
            raise SRLRuntimeError("tail applied to the empty list")
        return SRLList(self._items[1:])

    def cons(self, item: "Value") -> "SRLList":
        result = SRLList((item,) + self._items)
        if _CACHES_ENABLED and self._size_cache is not None:
            result._size_cache = self._size_cache + value_size(item)
        return result


Value = Union[bool, int, Atom, SRLTuple, SRLSet, SRLList]

# Tags give a total order *across* kinds so heterogeneous comparisons are
# stable (bool < nat < atom < tuple < set < list).
_KIND_TAGS = {
    bool: 0,
    int: 1,
    Atom: 2,
    SRLTuple: 3,
    SRLSet: 4,
    SRLList: 5,
}


def value_key(value: "Value", atom_order: tuple[int, ...] | None = None):
    """A sort key implementing the global implementation order on values.

    ``atom_order`` optionally remaps atom ranks (``atom_order[rank]`` is the
    atom's position in the alternative order); this is how the Section 7
    order-independence tester varies the order ``choose`` uses without
    changing the values themselves.

    Container keys are memoized on the value per ``atom_order``; the
    uncached recursion is preserved as
    :func:`repro.core.reference.value_key_reference`.
    """
    if atom_order is not None and not isinstance(atom_order, tuple):
        atom_order = tuple(atom_order)
    return _value_key(value, atom_order)


def _value_key(value: "Value", atom_order: tuple[int, ...] | None):
    """Internal worker: ``atom_order`` is already ``None`` or a tuple."""
    if _CACHES_ENABLED:
        kind = type(value)
        if kind is SRLTuple or kind is SRLSet or kind is SRLList:
            return value._key(atom_order)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, int):
        return (1, value)
    if isinstance(value, Atom):
        rank = value.rank if atom_order is None else atom_order[value.rank]
        return (2, rank)
    if isinstance(value, SRLTuple):
        return (3, len(value), tuple(_value_key(v, atom_order) for v in value))
    if isinstance(value, SRLSet):
        ordered = (
            value.elements
            if atom_order is None
            else tuple(sorted(value.elements, key=lambda v: _value_key(v, atom_order)))
        )
        return (4, len(ordered), tuple(_value_key(v, atom_order) for v in ordered))
    if isinstance(value, SRLList):
        return (5, len(value.items), tuple(_value_key(v, atom_order) for v in value.items))
    raise SRLRuntimeError(f"not an SRL value: {value!r}")


def max_atom_rank(value: "Value") -> int:
    """The largest atom rank (or natural) occurring anywhere in ``value``,
    ``-1`` when none occurs.

    This is the semantics of ``new``'s freshness scan (Section 5's
    unbounded successor): the fresh atom's rank is one more than this.
    Shared by the tree-walking evaluator and the compiled backend so the
    two can never drift.
    """
    max_rank = -1
    stack: list[Value] = [value]
    while stack:
        item = stack.pop()
        if isinstance(item, Atom):
            if item.rank > max_rank:
                max_rank = item.rank
        elif isinstance(item, SRLTuple):
            stack.extend(item)
        elif isinstance(item, SRLSet):
            stack.extend(item.elements)
        elif isinstance(item, SRLList):
            stack.extend(item.items)
        elif isinstance(item, bool):
            continue
        elif isinstance(item, int):
            if item > max_rank:
                max_rank = item
    return max_rank


def value_equal(left: "Value", right: "Value") -> bool:
    """SRL ``=``: kind-aware structural equality.

    Follows the canonical key, exactly like ``<=`` and SRLSet's dedup: the
    kinds are distinct, so ``true = 1`` is false (Python's ``==`` conflates
    bool with int).  Same-type scalars and sets short-circuit through their
    key-consistent native equality; tuples/lists go through the cached keys
    so nested values compare kind-aware too.  Shared by the tree-walking
    evaluator, the IR constant folder, and the compiled backend.
    """
    left_type, right_type = type(left), type(right)
    if left_type is right_type and left_type not in (SRLTuple, SRLList):
        return left == right
    return value_key(left) == value_key(right)


def value_sort(values: Iterable["Value"]) -> list["Value"]:
    """Sort values by the global implementation order."""
    return sorted(values, key=value_key)


#: The canonical empty set (rule 7's ``emptyset``).
EMPTY_SET = SRLSet()


def is_value(obj: object) -> bool:
    """True when ``obj`` is a well-formed SRL runtime value."""
    if isinstance(obj, (bool, int, Atom)):
        return True
    if isinstance(obj, SRLTuple):
        return all(is_value(v) for v in obj)
    if isinstance(obj, SRLSet):
        return all(is_value(v) for v in obj.elements)
    if isinstance(obj, SRLList):
        return all(is_value(v) for v in obj.items)
    return False


def value_size(value: "Value") -> int:
    """The number of atomic constituents of a value.

    This is the measure the Section 4 / Section 6 benchmarks use for "how
    big did the accumulator get": a bounded-width tuple of atoms has O(1)
    size whereas a set of k-tuples over an n-element domain can reach n^k.
    The result is memoized on container values (the evaluator calls this
    once per reduce iteration on the whole accumulator).
    """
    if isinstance(value, (bool, Atom)):
        return 1
    if isinstance(value, int):
        return max(1, value.bit_length())
    if _CACHES_ENABLED and type(value) in (SRLTuple, SRLSet, SRLList):
        return value._size()
    if isinstance(value, SRLTuple):
        return sum(value_size(v) for v in value)
    if isinstance(value, SRLSet):
        return 1 + sum(value_size(v) for v in value.elements)
    if isinstance(value, SRLList):
        return 1 + sum(value_size(v) for v in value.items)
    raise SRLRuntimeError(f"not an SRL value: {value!r}")


def make_set(*elements: "Value") -> SRLSet:
    """Build an :class:`SRLSet` from the given elements."""
    return SRLSet(elements)


def make_tuple(*components: "Value") -> SRLTuple:
    """Build an :class:`SRLTuple` from the given components."""
    return SRLTuple(components)


def make_list(*items: "Value") -> SRLList:
    """Build an :class:`SRLList` from the given items."""
    return SRLList(items)


def format_value(value: "Value") -> str:
    """Human-readable rendering of a value (used by ``__str__`` methods)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    return str(value)


def value_to_python(value: "Value"):
    """Convert an SRL value into plain Python data (frozensets, tuples, ...).

    Useful for asserting against baseline algorithms in tests and benches.
    """
    if isinstance(value, (bool, int)):
        return value
    if isinstance(value, Atom):
        return value.rank
    if isinstance(value, SRLTuple):
        return tuple(value_to_python(v) for v in value)
    if isinstance(value, SRLSet):
        return frozenset(value_to_python(v) for v in value.elements)
    if isinstance(value, SRLList):
        return [value_to_python(v) for v in value.items]
    raise SRLRuntimeError(f"not an SRL value: {value!r}")


def python_to_value(obj) -> "Value":
    """Convert plain Python data into an SRL value.

    Integers become atoms (ranks) — *not* naturals — because inputs in the
    paper are database elements; use Python ``bool`` for booleans, tuples
    for SRL tuples, and (frozen)sets / lists for SRL sets / lists.
    """
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, int):
        return Atom(obj)
    if isinstance(obj, Atom):
        return obj
    if isinstance(obj, (SRLTuple, SRLSet, SRLList)):
        return obj
    if isinstance(obj, tuple):
        return SRLTuple(python_to_value(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return SRLSet(python_to_value(v) for v in obj)
    if isinstance(obj, list):
        return SRLList(python_to_value(v) for v in obj)
    raise SRLRuntimeError(f"cannot convert {obj!r} to an SRL value")
