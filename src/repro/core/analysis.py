"""Section 6: reading a program's complexity off its syntax.

The paper shows that a scan of an SRL program's syntax bounds its
complexity:

* **depth** ``d`` (Lemma 3.9): base functions have depth 0; a set-reduce has
  depth ``1 + max(depth of source, app, acc, base, extra)``;
* **width** ``a``: the maximum arity of tuples used in a non-input set;
* Proposition 6.1: an SRL expression of width ``a`` and depth ``d`` runs in
  ``DTIME(n^{ad} * T_ins)``;
* set-height > 1 (or lists, or invented values) escapes P entirely —
  set-height ``h`` corresponds to ``DTIME(2_h # n)`` (Corollary 6.4) and
  ``new`` / lists give all of PrimRec (Theorem 5.2);
* if every accumulator returns a flat bounded-width tuple the program is in
  **L** (Theorem 4.13, BASRL).

:func:`analyze` packages all of that into a :class:`ProgramAnalysis` report,
which is what the Section 6 benchmark prints and what the examples use to
audit query complexity before running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .ast import (
    Call,
    ConsList,
    EmptyList,
    Expr,
    ListReduce,
    NatConst,
    New,
    Program,
    SetReduce,
    TupleExpr,
    walk,
)
from .errors import SRLError
from .typecheck import TypeChecker, TypeReport
from .types import NatType, SetType, Type, set_height

__all__ = ["ProgramAnalysis", "expression_depth", "expression_width", "analyze"]


def expression_depth(expr: Expr, program: Program | None = None,
                     _stack: frozenset[str] = frozenset()) -> int:
    """The Lemma 3.9 depth of ``expr``.

    Calls of named definitions contribute the depth of the definition body
    (definitions are abbreviations, so inlining them is the faithful
    reading).
    """
    if isinstance(expr, (SetReduce, ListReduce)):
        parts = (expr.source, expr.app.body, expr.acc.body, expr.base, expr.extra)
        return 1 + max(expression_depth(part, program, _stack) for part in parts)
    if isinstance(expr, Call) and program is not None and expr.name in program.definitions:
        if expr.name in _stack:
            return 0
        body_depth = expression_depth(
            program.definitions[expr.name].body, program, _stack | {expr.name}
        )
        args_depth = max(
            (expression_depth(arg, program, _stack) for arg in expr.args), default=0
        )
        return max(body_depth, args_depth)
    from .ast import children

    return max((expression_depth(child, program, _stack) for child in children(expr)),
               default=0)


def expression_width(expr: Expr, program: Program | None = None) -> int:
    """The syntactic width ``a``: the maximum arity of any tuple constructed
    by the expression (or by a definition it calls).  Defaults to 1 when the
    program builds no tuples."""
    widths = [1]
    seen: set[str] = set()

    def visit(e: Expr) -> None:
        for node in walk(e):
            if isinstance(node, TupleExpr):
                widths.append(len(node.items))
            if isinstance(node, Call) and program is not None:
                definition = program.definitions.get(node.name)
                if definition is not None and node.name not in seen:
                    seen.add(node.name)
                    visit(definition.body)

    visit(expr)
    return max(widths)


@dataclass
class ProgramAnalysis:
    """Everything Section 6 lets us read off a program's face."""

    depth: int
    width: int
    set_height: int
    uses_new: bool
    uses_lists: bool
    uses_naturals: bool
    has_set_of_naturals: bool
    accumulators_flat: bool
    time_exponent: int
    classification: str
    type_report: Optional[TypeReport] = None
    notes: list[str] = field(default_factory=list)

    @property
    def time_bound(self) -> str:
        """The Proposition 6.1 bound as a human-readable string."""
        return f"DTIME(n^{self.time_exponent} * T_ins)"

    def summary(self) -> str:
        lines = [
            f"depth d            = {self.depth}",
            f"width a            = {self.width}",
            f"set-height         = {self.set_height}",
            f"accumulators flat  = {self.accumulators_flat}",
            f"uses new / lists   = {self.uses_new} / {self.uses_lists}",
            f"Prop 6.1 bound     = {self.time_bound}",
            f"classification     = {self.classification}",
        ]
        if self.notes:
            lines.append("notes: " + "; ".join(self.notes))
        return "\n".join(lines)


def _classify(set_height_value: int, uses_new: bool, uses_lists: bool,
              has_set_of_naturals: bool, accumulators_flat: bool,
              uses_set_reduce: bool) -> tuple[str, list[str]]:
    notes: list[str] = []
    if uses_new or uses_lists or has_set_of_naturals:
        reasons = []
        if uses_new:
            reasons.append("invented values (new)")
        if uses_lists:
            reasons.append("lists (list-reduce / cons)")
        if has_set_of_naturals:
            reasons.append("sets of naturals")
        notes.append("escapes P because of: " + ", ".join(reasons))
        return "PrimRec (Theorem 5.2)", notes
    if set_height_value >= 2:
        notes.append(
            f"set-height {set_height_value} admits {set_height_value - 1}-fold "
            "exponential blow-up (Example 3.12 / Corollary 6.4)"
        )
        return f"DTIME(2_{set_height_value}#n) (Corollary 6.4)", notes
    if not uses_set_reduce:
        notes.append("no set-reduce: a quantifier-free / first-order combination")
        return "FO (no iteration)", notes
    if accumulators_flat:
        notes.append("every accumulator returns a flat bounded-width tuple")
        return "L = BASRL (Theorem 4.13)", notes
    return "P = SRL (Theorem 3.10)", notes


def analyze(program: Program,
            input_types: Mapping[str, Type] | None = None,
            main: Expr | None = None) -> ProgramAnalysis:
    """Analyse a program's syntax (and, when input types are available, its
    inferred types) and classify its complexity.

    ``input_types`` maps database names to their SRL types; without it the
    analysis is purely syntactic (type-derived measures fall back to
    syntactic estimates).
    """
    expr = main if main is not None else program.main
    if expr is None:
        raise SRLError("analyze: program has no main expression")

    depth = expression_depth(expr, program)
    width = expression_width(expr, program)

    nodes = list(walk(expr))
    for definition in program.definitions.values():
        nodes.extend(walk(definition.body))

    uses_new = any(isinstance(node, New) for node in nodes)
    uses_lists = any(isinstance(node, (ListReduce, ConsList, EmptyList)) for node in nodes)
    uses_naturals = any(isinstance(node, NatConst) for node in nodes)
    uses_set_reduce = any(isinstance(node, (SetReduce, ListReduce)) for node in nodes)

    type_report: Optional[TypeReport] = None
    set_height_value = 1 if uses_set_reduce else 0
    has_set_of_naturals = False
    accumulators_flat = uses_set_reduce
    if input_types is not None:
        try:
            type_report = TypeChecker(program).check_expression(expr, input_types)
        except SRLError:
            type_report = None
        if type_report is not None:
            set_height_value = max(
                type_report.max_set_height(),
                max((set_height(t) for t in input_types.values()), default=0),
            )
            # The paper's width counts tuples in *non-input* sets, so the
            # syntactic width (tuples the program constructs) is the right
            # measure; input relation arities do not enter the bound.
            has_set_of_naturals = any(
                isinstance(t, SetType) and isinstance(t.element, NatType)
                for t in type_report.observed_types
            )
            accumulators_flat = all(
                set_height(t) == 0 for t in type_report.accumulator_types
            ) and bool(type_report.accumulator_types)

    classification, notes = _classify(
        set_height_value, uses_new, uses_lists, has_set_of_naturals,
        accumulators_flat, uses_set_reduce,
    )

    return ProgramAnalysis(
        depth=depth,
        width=width,
        set_height=set_height_value,
        uses_new=uses_new,
        uses_lists=uses_lists,
        uses_naturals=uses_naturals,
        has_set_of_naturals=has_set_of_naturals,
        accumulators_flat=accumulators_flat and uses_set_reduce,
        time_exponent=width * depth,
        classification=classification,
        type_report=type_report,
        notes=notes,
    )
