"""The unified execution engine: one front door for running SRL programs.

Every consumer of the runtime — the logic model checker, the paper's query
programs, the Turing-machine compiler, the benchmarks and the examples —
executes through this module instead of wiring up evaluators by hand.  A
:class:`Session` owns a program, resource limits and an implementation
order, and runs it on one of three interchangeable backends:

``compiled``
    The default.  The program is lowered once to the register IR
    (:mod:`repro.core.ir`) and compiled to Python closures
    (:mod:`repro.core.compiler`).  Fastest; ``steps`` counts reduce
    iterations and calls rather than AST node visits.

``interp``
    The instrumented tree-walking :class:`~repro.core.evaluator.Evaluator`
    — the reference operational semantics, with per-node step counting.

``reference``
    The interpreter running on the seed's uncached value algorithms
    (:func:`repro.core.reference.legacy_mode`).  Exists purely as a
    differential/benchmark baseline.

All three agree on values and on the semantically determined counters
(``inserts``, reduce iterations, ``function_calls``, ``new_values``, peak
sizes); the differential suite in ``tests/integration`` pins this down.

The module also hosts the *relational kernels* (least fixed points,
transitive closures, quantifier loops) that the logic layer's brute-force
model checking shares with future batched/sharded execution paths — they
live here so every fixed-point-shaped computation in the repo flows through
one engine.  The fixed-point kernels come in two strategies (see
:mod:`repro.core.relalg` and DESIGN.md, "Semi-naive evaluation"):
*semi-naive* delta propagation, the production path, and *naive* full
re-derivation, kept as the differential oracle.  :meth:`Session.least_fixpoint`
and :meth:`Session.transitive_closure` pick the strategy from the session's
backend — ``compiled`` and ``interp`` run semi-naive, ``reference`` runs
naive — so consumers that hold a session inherit the right kernel for
differential work automatically.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence, TypeVar

from .ast import Expr, Program
from .compiler import CompiledProgram
from .environment import Database
from .errors import InvalidDatabaseError, SRLCompilationError
from .evaluator import EvaluationLimits, EvaluationStats, Evaluator
from .governor import Budget
from .relalg import (
    IndexedRelation,
    naive_closure,
    naive_fixpoint,
    seminaive_closure,
    seminaive_fixpoint,
)
from .values import (
    Atom,
    SRLList,
    SRLSet,
    SRLTuple,
    Value,
)

__all__ = [
    "BACKENDS",
    "Session",
    "run_program",
    "run_expression",
    "IndexedRelation",
    "least_fixpoint",
    "transitive_closure",
    "exists_binding",
    "forall_binding",
    "count_bindings",
    "database_from_json",
]

#: The engine's interchangeable execution backends.
BACKENDS = ("compiled", "interp", "reference")


class Session:
    """A configured execution context for one program.

    Parameters
    ----------
    program:
        The program to execute (``None`` for standalone expressions passed
        to :meth:`run` via ``main=``).
    limits:
        Resource budgets shared by every run of the session.
    atom_order:
        Optional permutation of atom ranks (the Section 7 implementation
        order); can also be overridden per run.
    backend:
        One of :data:`BACKENDS`; defaults to ``"compiled"``.
    logic_backend:
        Optional explicit logic-layer strategy (one of
        :data:`repro.logic.eval.LOGIC_BACKENDS`); by default it is derived
        from ``backend`` (see :attr:`logic_backend`).
    budget:
        Optional :class:`~repro.core.governor.Budget` (deadline, row /
        round / memo caps, cancel token).  Each run and each logic-layer
        call starts a fresh governor from it, so the caps are per-query,
        not cumulative across the session.

    The session compiles lazily on first use and re-compiles automatically
    if the program's definitions are changed between runs.  ``stats`` always
    reflects the most recent execution, including one aborted by a resource
    limit (the counters then show how far it got).
    """

    def __init__(
        self,
        program: Program | None = None,
        limits: EvaluationLimits | None = None,
        atom_order: Sequence[int] | None = None,
        backend: str = "compiled",
        budget: Budget | None = None,
        logic_backend: str | None = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}: expected one of {BACKENDS}"
            )
        if logic_backend is not None:
            from repro.logic.eval import LOGIC_BACKENDS
            if logic_backend not in LOGIC_BACKENDS:
                raise ValueError(
                    f"unknown logic backend {logic_backend!r}: expected one "
                    f"of {LOGIC_BACKENDS}"
                )
        self.program = program if program is not None else Program()
        self.limits = limits if limits is not None else EvaluationLimits()
        self.atom_order = tuple(atom_order) if atom_order is not None else None
        self.backend = backend
        self.budget = budget
        # Explicit logic-layer strategy; ``None`` derives it from the
        # engine backend (see :attr:`logic_backend`).
        self._logic_backend_override = logic_backend
        #: The session's degradation audit log: every time the logic layer
        #: dropped a rung (optimized plan -> raw plan -> tuple oracle, or
        #: skipped a memo store), a
        #: :class:`~repro.core.governor.DegradationEvent` lands here.
        self.degradations: list = []
        self.stats = EvaluationStats()
        self._compiled: CompiledProgram | None = None
        self._compiled_key: tuple | None = None
        # One-slot cache for evaluate_formula: (structure, checker).  Reusing
        # the checker keeps its per-(formula, auxiliary) relation memo warm
        # across calls, so querying many assignments against one structure
        # executes each compiled plan once, not once per call.
        self._logic_checker: tuple | None = None

    # ------------------------------------------------------------------ API

    def run(self, database: Database | Mapping[str, object] | None = None,
            main: Expr | None = None,
            atom_order: Sequence[int] | None = None) -> Value:
        """Run ``main`` (or the program's main expression) against the
        database; returns the value and records stats on the session."""
        value, self.stats = self._execute("run", database, main, atom_order)
        return value

    def call(self, name: str, *args: Value,
             database: Database | Mapping[str, object] | None = None,
             atom_order: Sequence[int] | None = None) -> Value:
        """Invoke a named definition with already-evaluated values."""
        value, self.stats = self._execute("call", database, None, atom_order,
                                          name=name, args=args)
        return value

    def run_with_stats(
        self, database: Database | Mapping[str, object] | None = None,
        main: Expr | None = None,
        atom_order: Sequence[int] | None = None,
    ) -> tuple[Value, EvaluationStats]:
        """Like :meth:`run`, returning ``(value, stats)``."""
        value = self.run(database, main=main, atom_order=atom_order)
        return value, self.stats

    # ------------------------------------------------- relational kernels

    @property
    def seminaive(self) -> bool:
        """Whether this session's fixed-point kernels propagate deltas.

        ``compiled`` and ``interp`` run the semi-naive kernels; the
        ``reference`` backend keeps the naive full-re-derivation strategy
        as the differential oracle (DESIGN.md, "Semi-naive evaluation").
        """
        return self.backend != "reference"

    def _governor(self, stats=None):
        """A fresh per-run governor from the session budget (or ``None``)."""
        if self.budget is None:
            return None
        return self.budget.start(stats)

    def least_fixpoint(self, step=None, initial: frozenset = frozenset(), *,
                       delta_step=None) -> frozenset:
        """:func:`least_fixpoint` with the strategy picked by the backend."""
        return least_fixpoint(step, initial, delta_step=delta_step,
                              seminaive=self.seminaive,
                              governor=self._governor())

    def transitive_closure(self, successors: Mapping, deterministic: bool = False
                           ) -> set[tuple]:
        """:func:`transitive_closure` with the strategy picked by the backend."""
        return transitive_closure(successors, deterministic=deterministic,
                                  seminaive=self.seminaive,
                                  governor=self._governor())

    # --------------------------------------------------------- logic facade

    @property
    def logic_backend(self) -> str:
        """The logic layer's evaluation strategy for this session.

        The production backends (``compiled``, ``interp``) evaluate
        formulas set-at-a-time through the relational-plan pipeline
        (:mod:`repro.logic.plan`); the ``reference`` backend keeps the
        tuple-at-a-time enumeration as the differential oracle — the same
        production/oracle split as :attr:`seminaive`.  The constructor's
        ``logic_backend`` argument overrides the derivation (e.g.
        ``"columnar"`` for the bitset/CSR codegen backend of
        :mod:`repro.logic.codegen`).
        """
        if self._logic_backend_override is not None:
            return self._logic_backend_override
        return "tuple" if self.backend == "reference" else "plan"

    @property
    def logic_optimize(self) -> bool:
        """Whether this session's plan-backend formulas run through the
        plan optimizer (:mod:`repro.logic.optimize`).  The production
        backends optimize; ``reference`` evaluates tuple-at-a-time anyway,
        and stays the differential oracle."""
        return self.backend != "reference"

    def define_relation(self, formula, structure, variables,
                        memoize: bool = True) -> frozenset:
        """:func:`repro.logic.eval.define_relation` with the logic backend
        and fixed-point strategy picked by this session's backend."""
        from repro.logic.eval import define_relation
        return define_relation(formula, structure, tuple(variables),
                               memoize=memoize, seminaive=self.seminaive,
                               backend=self.logic_backend,
                               optimize=self.logic_optimize,
                               budget=self.budget,
                               degradations=self.degradations)

    def evaluate_formula(self, formula, structure, assignment=None) -> bool:
        """:func:`repro.logic.eval.evaluate` with the logic backend and
        fixed-point strategy picked by this session's backend.

        The checker (and therefore its memoized defined relations / fixed
        points) is reused across calls against the same structure, so a
        loop over assignments pays for each formula's plan execution or
        closure once.  Mutate the structure through :meth:`update` (never
        by hand) and the memo is maintained incrementally instead of going
        stale."""
        checker = self._checker_for(structure)
        mark = len(checker.degradations)
        try:
            return checker.evaluate(formula, assignment)
        finally:
            self.degradations.extend(checker.degradations[mark:])

    def update(self, structure, changeset) -> "Changeset":
        """Apply ``changeset`` to ``structure`` and incrementally maintain
        whatever this session has memoized against it (Dyn-FO; see
        :meth:`repro.logic.eval.ModelChecker.apply_update`).  Returns the
        net changeset.  When the session holds no checker for this
        structure the facts are simply applied — there is nothing to
        maintain yet."""
        cached = self._logic_checker
        if cached is not None and cached[0] is structure \
                and cached[1] == (self.logic_backend, self.budget):
            checker = cached[2]
            mark = len(checker.degradations)
            try:
                return checker.apply_update(changeset)
            finally:
                self.degradations.extend(checker.degradations[mark:])
        return structure.apply(changeset)

    def _checker_for(self, structure) -> "ModelChecker":
        """The session's per-structure checker, created on first use and
        reused while the structure identity and backend settings hold.

        Thread note: the slot is a single tuple read/written atomically
        (CPython attribute assignment), and the checker itself serializes
        its public entry points, so concurrent sessions threads are safe;
        a lost race here merely builds a redundant checker."""
        from repro.logic.eval import ModelChecker
        cached = self._logic_checker
        if cached is not None and cached[0] is structure \
                and cached[1] == (self.logic_backend, self.budget):
            return cached[2]
        checker = ModelChecker(structure, seminaive=self.seminaive,
                               backend=self.logic_backend,
                               optimize=self.logic_optimize,
                               budget=self.budget)
        self._logic_checker = (structure,
                               (self.logic_backend, self.budget), checker)
        return checker

    # ------------------------------------------------------------ internals

    def _order(self, atom_order: Sequence[int] | None) -> tuple[int, ...] | None:
        if atom_order is not None:
            return tuple(atom_order)
        return self.atom_order

    def _compiled_for(self, main: Expr | None) -> CompiledProgram | None:
        # The key holds the actual expression/definition objects (keeping
        # them alive) and compares by identity, so a freed-and-reallocated
        # expression can never collide with a stale cache entry.  ``None``
        # is cached for programs the compiler rejects (reduce nesting
        # beyond CPython's static-block limit): the caller falls back to
        # the interpreter without retrying the compile every run.
        definitions = self.program.definitions
        key = (
            main if main is not None else self.program.main,
            tuple(definitions),
            tuple(definitions.values()),
        )
        cached = self._compiled_key
        fresh = (
            cached is None
            or key[0] is not cached[0]
            or key[1] != cached[1]
            or len(key[2]) != len(cached[2])
            or any(new is not old for new, old in zip(key[2], cached[2]))
        )
        if fresh:
            try:
                self._compiled = CompiledProgram(self.program, main=main)
            except SRLCompilationError:
                self._compiled = None
            self._compiled_key = key
        return self._compiled

    def _execute(self, mode, database, main, atom_order, name=None, args=()):
        order = self._order(atom_order)
        if self.backend == "compiled":
            compiled = self._compiled_for(main)
            if compiled is None:
                # Uncompilable (too deeply nested): the interpreter is a
                # strict superset semantically, so run there instead.
                return self._run_interp(mode, database, main, order, name, args)
            # Install the stats object up front so an aborted run still
            # leaves its partial counters readable on the session.
            self.stats = stats = EvaluationStats()
            governor = self._governor(stats)
            if governor is not None:
                # One unamortized check up front: an already-expired
                # deadline or pre-cancelled token stops the run before any
                # work, however short the program.
                governor.check_time()
            if mode == "run":
                return compiled.run(database, limits=self.limits,
                                    atom_order=order, stats=stats,
                                    governor=governor)
            return compiled.call(name, *args, database=database,
                                 limits=self.limits, atom_order=order,
                                 stats=stats, governor=governor)
        if self.backend == "reference":
            from .reference import legacy_mode
            with legacy_mode():
                return self._run_interp(mode, database, main, order, name, args)
        return self._run_interp(mode, database, main, order, name, args)

    def _run_interp(self, mode, database, main, order, name, args):
        evaluator = Evaluator(self.program, self.limits, atom_order=order)
        evaluator.governor = governor = self._governor(evaluator.stats)
        if governor is not None:
            governor.check_time()
        self.stats = evaluator.stats  # observable even if the run aborts
        if mode == "run":
            value = evaluator.run(database, main=main)
        else:
            value = evaluator.call(name, *args, database=database)
        return value, evaluator.stats


def run_program(program: Program,
                database: Database | Mapping[str, object] | None = None,
                limits: EvaluationLimits | None = None,
                atom_order: Sequence[int] | None = None,
                backend: str = "interp") -> Value:
    """Evaluate a program's main expression through the engine facade.

    ``backend`` defaults to the interpreter for drop-in compatibility with
    the historical :func:`repro.core.evaluator.run_program`; pass
    ``backend="compiled"`` (or use a :class:`Session`) for the compiled
    engine.
    """
    return Session(program, limits, atom_order, backend=backend).run(database)


def run_expression(expr: Expr,
                   database: Database | Mapping[str, object] | None = None,
                   program: Program | None = None,
                   limits: EvaluationLimits | None = None,
                   atom_order: Sequence[int] | None = None,
                   backend: str = "interp") -> Value:
    """Evaluate a standalone expression (optionally with auxiliary
    definitions available through ``program``) through the engine facade."""
    return Session(program, limits, atom_order, backend=backend).run(
        database, main=expr
    )


# ------------------------------------------------------------------ kernels
#
# Relational primitives shared by the logic layer's model checking.  They
# are deliberately tiny and allocation-light: the model checker calls
# exists/forall once per quantifier node per assignment.

_T = TypeVar("_T")
_Node = TypeVar("_Node")

#: Sentinel distinguishing "variable was unbound" from "bound to 0".
_UNBOUND = object()


def least_fixpoint(step: Callable[[frozenset], frozenset] | None = None,
                   initial: frozenset = frozenset(), *,
                   delta_step: Callable[[frozenset, set], Iterable] | None = None,
                   seminaive: bool = True, governor=None) -> frozenset:
    """The least fixed point of an inflationary operator.

    Two calling conventions, matching the two evaluation strategies of
    :mod:`repro.core.relalg`:

    * ``least_fixpoint(step, initial)`` — a black-box full-relation
      operator, iterated naively until it stabilizes (the only option when
      the caller cannot say which derivations touch new facts).
    * ``least_fixpoint(initial=..., delta_step=...)`` — semi-naive:
      ``delta_step(delta, total)`` returns the facts derivable with at
      least one premise in ``delta``, and only deltas are propagated.
      Pass ``seminaive=False`` to run the same ``delta_step`` naively
      (every round re-derives from the entire relation) — the differential
      oracle the ``reference`` backend uses.

    The operator is assumed inflationary/monotone (as the LFP stage
    operators of the logic layer are), so the iteration terminates on any
    finite domain.
    """
    if delta_step is not None:
        if step is not None:
            raise TypeError("pass either step or delta_step, not both")
        if seminaive:
            return seminaive_fixpoint(initial, delta_step, governor=governor)
        # Naive evaluation of a delta-phrased operator: every round hands
        # the *whole* accumulated relation back as the "delta".
        return naive_fixpoint(
            lambda current: current | frozenset(delta_step(current, set(current))),
            frozenset(initial),
            governor=governor,
        )
    if step is None:
        raise TypeError("least_fixpoint needs a step or a delta_step")
    return naive_fixpoint(step, initial, governor=governor)


def transitive_closure(successors: Mapping[_Node, Iterable[_Node]],
                       deterministic: bool = False, *,
                       seminaive: bool = True,
                       governor=None) -> set[tuple[_Node, _Node]]:
    """The reflexive transitive closure of a successor relation.

    ``deterministic`` keeps only out-degree-1 edges first (the DTC reading:
    ``phi_d(x, x') = phi(x, x')`` and ``x'`` is the unique successor of
    ``x``).  The closure is computed by semi-naive delta propagation over
    the successor index; ``seminaive=False`` selects the naive
    re-derive-everything iteration (the ``reference`` oracle and the P2
    benchmark baseline).
    """
    if seminaive:
        return seminaive_closure(successors, deterministic=deterministic,
                                 governor=governor)
    return naive_closure(successors, deterministic=deterministic,
                         governor=governor)


def _restore(assignment: dict, variable, saved) -> None:
    if saved is _UNBOUND:
        assignment.pop(variable, None)
    else:
        assignment[variable] = saved


def exists_binding(universe: Iterable[_T], assignment: dict, variable,
                   evaluate: Callable[[object, dict], bool], body) -> bool:
    """``∃ variable ∈ universe``: rebind in place, test, restore.

    ``evaluate(body, assignment)`` decides each binding; passing the
    evaluator and formula separately (rather than a thunk) keeps the hot
    quantifier loop free of per-visit closure allocation, and the
    mutate-and-restore protocol avoids copying the assignment per binding.
    """
    saved = assignment.get(variable, _UNBOUND)
    try:
        for value in universe:
            assignment[variable] = value
            if evaluate(body, assignment):
                return True
        return False
    finally:
        _restore(assignment, variable, saved)


def forall_binding(universe: Iterable[_T], assignment: dict, variable,
                   evaluate: Callable[[object, dict], bool], body) -> bool:
    """``∀ variable ∈ universe`` under the mutate-and-restore protocol."""
    saved = assignment.get(variable, _UNBOUND)
    try:
        for value in universe:
            assignment[variable] = value
            if not evaluate(body, assignment):
                return False
        return True
    finally:
        _restore(assignment, variable, saved)


def count_bindings(universe: Iterable[_T], assignment: dict, variable,
                   evaluate: Callable[[object, dict], bool], body) -> int:
    """The number of bindings of ``variable`` satisfying the body."""
    saved = assignment.get(variable, _UNBOUND)
    witnesses = 0
    try:
        for value in universe:
            assignment[variable] = value
            if evaluate(body, assignment):
                witnesses += 1
    finally:
        _restore(assignment, variable, saved)
    return witnesses


# ---------------------------------------------------------------- databases


def database_from_json(data: Mapping[str, object]) -> Database:
    """Build a :class:`Database` from JSON-shaped data (the CLI input
    format).

    Per value: ``true``/``false`` are booleans; a bare integer is an atom
    rank; an *untagged* array is a **set** whose untagged array elements are
    **tuples** (the common shape of relations: ``"EDGES": [[0, 1], [1, 2]]``).
    Deeper or ambiguous nesting uses tagged objects::

        {"atom": 3}  {"nat": 7}  {"set": [...]}  {"tuple": [...]}  {"list": [...]}
    """
    if not isinstance(data, Mapping):
        raise InvalidDatabaseError(
            "database JSON must be an object of name -> value, got "
            f"{type(data).__name__}"
        )
    database = Database()
    for name, value in data.items():
        path = str(name)
        try:
            database.bind(name, _json_value(value, depth=0, path=path))
        except InvalidDatabaseError:
            raise
        except (TypeError, ValueError) as error:
            # Malformed tagged values (e.g. {"atom": "three"}, {"set": 5})
            # surface as the library's own error so the CLI reports them
            # cleanly instead of crashing with a raw traceback.
            raise InvalidDatabaseError(
                f"{path!r}: cannot read an SRL value: {error}"
            ) from error
    return database


def _json_value(obj, depth: int, path: str = "") -> Value:
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, int):
        return Atom(obj)
    if isinstance(obj, list):
        items = (_json_value(item, depth + 1, f"{path}[{index}]")
                 for index, item in enumerate(obj))
        if depth == 0:
            return SRLSet(items)
        return SRLTuple(items)
    if isinstance(obj, Mapping):
        if len(obj) == 1 or (len(obj) == 2 and "atom" in obj and "name" in obj):
            if "atom" in obj:
                return Atom(int(obj["atom"]), str(obj.get("name", "")))
            if "nat" in obj:
                return int(obj["nat"])
            if "set" in obj:
                return SRLSet(_json_value(item, 1, f"{path}.set[{index}]")
                              for index, item in enumerate(obj["set"]))
            if "tuple" in obj:
                return SRLTuple(_json_value(item, 1, f"{path}.tuple[{index}]")
                                for index, item in enumerate(obj["tuple"]))
            if "list" in obj:
                return SRLList(_json_value(item, 1, f"{path}.list[{index}]")
                               for index, item in enumerate(obj["list"]))
    raise InvalidDatabaseError(
        f"{path!r}: cannot read an SRL value from JSON fragment {obj!r}"
    )
