"""The family of syntactic restrictions studied by the paper.

Each restriction is a static checker over the (typed) AST:

========================  ====================================================
Restriction                Paper characterisation
========================  ====================================================
``UNRESTRICTED_SRL``       SRL + new / unbounded sets — PrimRec (Theorem 5.2)
``SRL``                    set-height <= 1, fixed tuple width — **P**
                           (Theorem 3.10)
``BASRL``                  SRL where every set-reduce accumulator returns a
                           flat bounded-width tuple — **L** (Theorem 4.13)
``SRFO_TC``                forsome, forall, not, or, and, <=, TC — **NL**
                           (Corollary 4.2)
``SRFO_DTC``               forsome, forall, not, or, and, <=, DTC — **L**
                           (Corollary 4.4)
``SRL_NEW``                SRL plus the ``new`` operator — PrimRec
``LRL``                    list-reduce instead of set-reduce, list-height <= 1
                           — PrimRec (Corollary 5.5)
========================  ====================================================

A checker reports a list of human-readable violations (empty = the program
is in the restriction); ``assert_member`` raises
:class:`~repro.core.errors.RestrictionViolation` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from .ast import (
    Call,
    ConsList,
    EmptyList,
    Expr,
    Insert,
    ListReduce,
    New,
    Program,
    SetReduce,
    walk,
)
from .errors import RestrictionViolation, SRLError
from .typecheck import TypeChecker
from .types import NatType, SetType, Type, list_height, set_height

__all__ = [
    "Restriction",
    "UNRESTRICTED_SRL",
    "SRL",
    "BASRL",
    "SRFO_TC",
    "SRFO_DTC",
    "SRL_NEW",
    "LRL",
    "ALL_RESTRICTIONS",
    "check",
    "assert_member",
    "strictest_restriction",
]


@dataclass(frozen=True)
class Restriction:
    """A named syntactic restriction with its complexity characterisation."""

    name: str
    complexity_class: str
    paper_reference: str
    checker: Callable[[Program, Optional[Mapping[str, Type]], Optional[Expr]], list[str]]

    def check(self, program: Program,
              input_types: Mapping[str, Type] | None = None,
              main: Expr | None = None) -> list[str]:
        """Return the list of violations (empty when the program belongs)."""
        return self.checker(program, input_types, main)

    def is_member(self, program: Program,
                  input_types: Mapping[str, Type] | None = None,
                  main: Expr | None = None) -> bool:
        return not self.check(program, input_types, main)

    def assert_member(self, program: Program,
                      input_types: Mapping[str, Type] | None = None,
                      main: Expr | None = None) -> None:
        violations = self.check(program, input_types, main)
        if violations:
            raise RestrictionViolation(self.name, violations)


def _all_nodes(program: Program, main: Expr | None):
    expr = main if main is not None else program.main
    if expr is not None:
        yield from walk(expr)
    for definition in program.definitions.values():
        yield from walk(definition.body)


def _observed_types(program: Program, input_types: Mapping[str, Type] | None,
                    main: Expr | None):
    """Type-check and return (observed types, accumulator types), or
    (None, None) when no input types were supplied or checking failed."""
    expr = main if main is not None else program.main
    if input_types is None or expr is None:
        return None, None
    checker = TypeChecker(program)
    try:
        report = checker.check_expression(expr, input_types)
    except SRLError:
        return None, None
    return report.observed_types, report.accumulator_types


# --------------------------------------------------------------- checkers


def _check_unrestricted(program: Program, input_types, main) -> list[str]:
    return []


def _check_srl(program: Program, input_types, main) -> list[str]:
    violations: list[str] = []
    for node in _all_nodes(program, main):
        if isinstance(node, New):
            violations.append("uses new (invented values), which is outside SRL")
        if isinstance(node, (ListReduce, ConsList, EmptyList)):
            violations.append("uses lists, which are outside SRL (that is LRL)")

    observed, _ = _observed_types(program, input_types, main)
    if observed is not None:
        for t in observed:
            if set_height(t) > 1:
                violations.append(
                    f"type {t} has set-height {set_height(t)} > 1 (Definition 2.2)"
                )
            if isinstance(t, SetType) and isinstance(t.element, NatType):
                violations.append(
                    f"type {t} is a set of naturals, which lets SRL escape P (Section 5)"
                )
    if input_types is not None:
        for name, t in input_types.items():
            if set_height(t) > 1:
                violations.append(
                    f"input {name} has type {t} of set-height {set_height(t)} > 1"
                )
    return sorted(set(violations))


def _check_basrl(program: Program, input_types, main) -> list[str]:
    violations = _check_srl(program, input_types, main)
    _, accumulators = _observed_types(program, input_types, main)
    if accumulators is None:
        if input_types is not None:
            violations.append("could not type-check the program to inspect accumulators")
        else:
            # Purely syntactic fallback: any insert inside an acc lambda means
            # the accumulator builds a set.
            for node in _all_nodes(program, main):
                if isinstance(node, SetReduce):
                    if any(isinstance(sub, Insert) for sub in walk(node.acc.body)):
                        violations.append(
                            "an accumulator function inserts into a set; BASRL "
                            "accumulators must return flat bounded-width tuples"
                        )
    else:
        for t in accumulators:
            if set_height(t) != 0:
                violations.append(
                    f"an accumulator returns {t} (set-height {set_height(t)}); "
                    "BASRL accumulators must return flat bounded-width tuples"
                )
    return sorted(set(violations))


_SRFO_ALLOWED_CALLS_TC = {"forall", "forsome", "not", "and", "or", "tc", "member",
                          "union", "is-empty", "singleton"}
_SRFO_ALLOWED_CALLS_DTC = {"forall", "forsome", "not", "and", "or", "dtc", "member",
                           "union", "is-empty", "singleton"}


def _check_srfo(allowed_calls: set[str], operator_name: str):
    def checker(program: Program, input_types, main) -> list[str]:
        violations = _check_srl(program, input_types, main)
        expr = main if main is not None else program.main
        if expr is None:
            return violations
        for node in walk(expr):
            if isinstance(node, Call) and node.name not in allowed_calls:
                if node.name in program.definitions:
                    continue  # user-defined abbreviations are inlined conceptually
                violations.append(
                    f"call of '{node.name}' is outside the SRFO+{operator_name} fragment"
                )
            if isinstance(node, (New, ListReduce, ConsList, EmptyList)):
                violations.append(
                    f"node {type(node).__name__} is outside the SRFO+{operator_name} fragment"
                )
        return sorted(set(violations))

    return checker


def _check_srl_new(program: Program, input_types, main) -> list[str]:
    violations: list[str] = []
    for node in _all_nodes(program, main):
        if isinstance(node, (ListReduce, ConsList, EmptyList)):
            violations.append("uses lists; SRL+new is the set-based extension (use LRL)")
    return sorted(set(violations))


def _check_lrl(program: Program, input_types, main) -> list[str]:
    violations: list[str] = []
    for node in _all_nodes(program, main):
        if isinstance(node, New):
            violations.append("uses new; LRL is the list-based extension without invention")
    observed, _ = _observed_types(program, input_types, main)
    if observed is not None:
        for t in observed:
            if list_height(t) > 1:
                violations.append(f"type {t} has list-height {list_height(t)} > 1")
    return sorted(set(violations))


UNRESTRICTED_SRL = Restriction(
    name="unrestricted SRL",
    complexity_class="PrimRec",
    paper_reference="Theorem 5.2",
    checker=_check_unrestricted,
)

SRL = Restriction(
    name="SRL",
    complexity_class="P",
    paper_reference="Theorem 3.10",
    checker=_check_srl,
)

BASRL = Restriction(
    name="BASRL",
    complexity_class="L",
    paper_reference="Theorem 4.13",
    checker=_check_basrl,
)

SRFO_TC = Restriction(
    name="SRFO+TC",
    complexity_class="NL",
    paper_reference="Corollary 4.2",
    checker=_check_srfo(_SRFO_ALLOWED_CALLS_TC, "TC"),
)

SRFO_DTC = Restriction(
    name="SRFO+DTC",
    complexity_class="L",
    paper_reference="Corollary 4.4",
    checker=_check_srfo(_SRFO_ALLOWED_CALLS_DTC, "DTC"),
)

SRL_NEW = Restriction(
    name="SRL+new",
    complexity_class="PrimRec",
    paper_reference="Theorem 5.2",
    checker=_check_srl_new,
)

LRL = Restriction(
    name="LRL",
    complexity_class="PrimRec",
    paper_reference="Corollary 5.5",
    checker=_check_lrl,
)

ALL_RESTRICTIONS = (SRFO_DTC, SRFO_TC, BASRL, SRL, SRL_NEW, LRL, UNRESTRICTED_SRL)


def check(restriction: Restriction, program: Program,
          input_types: Mapping[str, Type] | None = None,
          main: Expr | None = None) -> list[str]:
    """Functional form of :meth:`Restriction.check`."""
    return restriction.check(program, input_types, main)


def assert_member(restriction: Restriction, program: Program,
                  input_types: Mapping[str, Type] | None = None,
                  main: Expr | None = None) -> None:
    """Functional form of :meth:`Restriction.assert_member`."""
    restriction.assert_member(program, input_types, main)


def strictest_restriction(program: Program,
                          input_types: Mapping[str, Type] | None = None,
                          main: Expr | None = None) -> Restriction:
    """The lowest-complexity restriction the program satisfies.

    Checked from the most restrictive class upwards: BASRL (L), SRL (P),
    SRL+new / LRL (PrimRec), unrestricted.  The SRFO fragments are skipped
    here because membership depends on which abbreviations the caller deems
    primitive; check them explicitly when needed.
    """
    for restriction in (BASRL, SRL, SRL_NEW, LRL, UNRESTRICTED_SRL):
        if restriction.is_member(program, input_types, main):
            return restriction
    return UNRESTRICTED_SRL
