"""The derived finite-set operations of Fact 2.4, expressed in SRL itself.

The paper (citing Sheard and Stemple) notes that "finite set functions such
as union, intersection, difference, membership; predicates for universal and
existential quantification such as forall, forsome; and relational operators
such as join, project and select can be expressed in SRL".  This module
constructs exactly those operations:

* the *first-order* ones (``union``, ``intersection``, ``difference``,
  ``member``, ``subset``, ``not``, ``and``, ``or``) become named
  :class:`~repro.core.ast.FunctionDef` entries of
  :func:`standard_library`, so programs can simply ``(union S T)``;

* the *higher-order* ones (``forall``, ``forsome``, ``select``, ``project``,
  ``join``, ``product``) are macro constructors that splice a caller-supplied
  predicate / output expression into a ``set-reduce`` template, because SRL
  functions are first order — a lambda can only appear inside a reduce.

Every definition here is a genuine SRL program (no Python-level cheating),
so they also serve as a conformance suite for the evaluator.
"""

from __future__ import annotations

from typing import Callable, Sequence

from . import builders as b
from .ast import Expr, FunctionDef, Program

__all__ = [
    "standard_library",
    "with_standard_library",
    "forall_expr",
    "forsome_expr",
    "select_expr",
    "project_expr",
    "product_expr",
    "join_expr",
    "singleton_expr",
]


def _def_not() -> FunctionDef:
    return b.define("not", ["a"], b.if_(b.var("a"), b.false(), b.true()))


def _def_and() -> FunctionDef:
    return b.define("and", ["a", "b"], b.if_(b.var("a"), b.var("b"), b.false()))


def _def_or() -> FunctionDef:
    return b.define("or", ["a", "b"], b.if_(b.var("a"), b.true(), b.var("b")))


def _def_member() -> FunctionDef:
    # member(x, S) = exists e in S with e = x
    body = b.set_reduce(
        b.var("S"),
        b.lam("e", "x", b.eq(b.var("e"), b.var("x"))),
        b.lam("a", "r", b.call("or", b.var("a"), b.var("r"))),
        b.false(),
        b.var("x"),
    )
    return b.define("member", ["x", "S"], body)


def _def_union() -> FunctionDef:
    # union(S, T): fold insert over S starting from T.
    body = b.set_reduce(
        b.var("S"),
        b.lam("x", "e", b.var("x")),
        b.lam("a", "r", b.insert(b.var("a"), b.var("r"))),
        b.var("T"),
        b.emptyset(),
    )
    return b.define("union", ["S", "T"], body)


def _def_intersection() -> FunctionDef:
    # intersection(S, T): keep the x in S that are members of T.
    body = b.set_reduce(
        b.var("S"),
        b.lam("x", "t", b.tup(b.var("x"), b.call("member", b.var("x"), b.var("t")))),
        b.lam(
            "a", "r",
            b.if_(b.sel(2, b.var("a")), b.insert(b.sel(1, b.var("a")), b.var("r")), b.var("r")),
        ),
        b.emptyset(),
        b.var("T"),
    )
    return b.define("intersection", ["S", "T"], body)


def _def_difference() -> FunctionDef:
    # difference(S, T): keep the x in S that are NOT members of T.
    body = b.set_reduce(
        b.var("S"),
        b.lam("x", "t", b.tup(b.var("x"), b.call("member", b.var("x"), b.var("t")))),
        b.lam(
            "a", "r",
            b.if_(b.sel(2, b.var("a")), b.var("r"), b.insert(b.sel(1, b.var("a")), b.var("r"))),
        ),
        b.emptyset(),
        b.var("T"),
    )
    return b.define("difference", ["S", "T"], body)


def _def_subset() -> FunctionDef:
    # subset(S, T): every x in S is a member of T.
    body = b.set_reduce(
        b.var("S"),
        b.lam("x", "t", b.call("member", b.var("x"), b.var("t"))),
        b.lam("a", "r", b.call("and", b.var("a"), b.var("r"))),
        b.true(),
        b.var("T"),
    )
    return b.define("subset", ["S", "T"], body)


def _def_is_empty() -> FunctionDef:
    return b.define("is-empty", ["S"], b.eq(b.var("S"), b.emptyset()))


def _def_singleton() -> FunctionDef:
    return b.define("singleton", ["x"], b.insert(b.var("x"), b.emptyset()))


def standard_library() -> Program:
    """A fresh :class:`Program` containing the Fact 2.4 first-order
    definitions (``not``, ``and``, ``or``, ``member``, ``union``,
    ``intersection``, ``difference``, ``subset``, ``is-empty``,
    ``singleton``)."""
    program = Program()
    for definition in (
        _def_not(), _def_and(), _def_or(), _def_member(), _def_union(),
        _def_intersection(), _def_difference(), _def_subset(),
        _def_is_empty(), _def_singleton(),
    ):
        program.define(definition)
    return program


def with_standard_library(program: Program) -> Program:
    """Add the standard library definitions to ``program`` (without
    overwriting same-named definitions already present) and return it."""
    for name, definition in standard_library().definitions.items():
        if name not in program.definitions:
            program.define(definition)
    return program


# ------------------------------------------------------------------- macros
#
# The higher-order operators take a Python callable that, given expression(s)
# naming the bound element(s), returns the predicate / output expression to
# splice into the set-reduce template.  Fresh parameter names are used so the
# generated code never captures the caller's variables.


Predicate1 = Callable[[Expr, Expr], Expr]
Predicate2 = Callable[[Expr, Expr], Expr]


def forall_expr(source: Expr, predicate: Predicate1, extra: Expr | None = None) -> Expr:
    """``forall(source, lambda(x, extra) predicate)`` — true when the
    predicate holds of every element (vacuously true for the empty set)."""
    x, e = b.fresh_name("x"), b.fresh_name("e")
    a, r = b.fresh_name("a"), b.fresh_name("r")
    return b.set_reduce(
        source,
        b.lam(x, e, predicate(b.var(x), b.var(e))),
        b.lam(a, r, b.call("and", b.var(a), b.var(r))),
        b.true(),
        extra if extra is not None else b.emptyset(),
    )


def forsome_expr(source: Expr, predicate: Predicate1, extra: Expr | None = None) -> Expr:
    """``forsome(source, lambda(x, extra) predicate)`` — true when the
    predicate holds of at least one element."""
    x, e = b.fresh_name("x"), b.fresh_name("e")
    a, r = b.fresh_name("a"), b.fresh_name("r")
    return b.set_reduce(
        source,
        b.lam(x, e, predicate(b.var(x), b.var(e))),
        b.lam(a, r, b.call("or", b.var(a), b.var(r))),
        b.false(),
        extra if extra is not None else b.emptyset(),
    )


def select_expr(source: Expr, predicate: Predicate1, extra: Expr | None = None) -> Expr:
    """Relational selection: the subset of ``source`` whose elements satisfy
    the predicate."""
    x, e = b.fresh_name("x"), b.fresh_name("e")
    a, r = b.fresh_name("a"), b.fresh_name("r")
    return b.set_reduce(
        source,
        b.lam(x, e, b.tup(b.var(x), predicate(b.var(x), b.var(e)))),
        b.lam(
            a, r,
            b.if_(b.sel(2, b.var(a)), b.insert(b.sel(1, b.var(a)), b.var(r)), b.var(r)),
        ),
        b.emptyset(),
        extra if extra is not None else b.emptyset(),
    )


def project_expr(source: Expr, indices: Sequence[int]) -> Expr:
    """Relational projection onto the given (1-based) component indices.

    A single index projects to the bare component (a set of atoms), matching
    the paper's ``project(select(EDGES, ...), from)``; several indices
    project to tuples of that width.
    """
    if not indices:
        raise ValueError("project_expr needs at least one index")
    x, e = b.fresh_name("x"), b.fresh_name("e")
    a, r = b.fresh_name("a"), b.fresh_name("r")
    if len(indices) == 1:
        output: Expr = b.sel(indices[0], b.var(x))
    else:
        output = b.tup(*(b.sel(i, b.var(x)) for i in indices))
    return b.set_reduce(
        source,
        b.lam(x, e, output),
        b.lam(a, r, b.insert(b.var(a), b.var(r))),
        b.emptyset(),
        b.emptyset(),
    )


def product_expr(left: Expr, right: Expr) -> Expr:
    """The cartesian product ``{[x, y] | x in left, y in right}``."""
    return join_expr(left, right,
                     condition=lambda t1, t2: b.true(),
                     output=lambda t1, t2: b.tup(t1, t2))


def join_expr(left: Expr, right: Expr,
              condition: Callable[[Expr, Expr], Expr],
              output: Callable[[Expr, Expr], Expr]) -> Expr:
    """The paper's ``join(S, T, lambda(t1,t2) cond, lambda(t1,t2) out)``.

    Expansion: an outer set-reduce over ``left`` whose *app* computes, via an
    inner set-reduce over ``right`` (passed through ``extra``), the set of
    outputs for that element; the *acc* unions the per-element answer sets.
    This is the standard way to thread context through ``extra`` so that all
    variable reference stays local to a single lambda.
    """
    x, t = b.fresh_name("x"), b.fresh_name("t")
    y, x2 = b.fresh_name("y"), b.fresh_name("x")
    a, r = b.fresh_name("a"), b.fresh_name("r")
    a2, r2 = b.fresh_name("a"), b.fresh_name("r")

    inner = b.set_reduce(
        b.var(t),
        b.lam(y, x2, b.tup(b.var(x2), b.var(y))),
        b.lam(
            a2, r2,
            b.if_(
                condition(b.sel(1, b.var(a2)), b.sel(2, b.var(a2))),
                b.insert(output(b.sel(1, b.var(a2)), b.sel(2, b.var(a2))), b.var(r2)),
                b.var(r2),
            ),
        ),
        b.emptyset(),
        b.var(x),
    )
    return b.set_reduce(
        left,
        b.lam(x, t, inner),
        b.lam(a, r, b.call("union", b.var(a), b.var(r))),
        b.emptyset(),
        right,
    )


def singleton_expr(element: Expr) -> Expr:
    """``{element}``."""
    return b.insert(element, b.emptyset())
