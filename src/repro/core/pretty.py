"""Pretty-printer for SRL expressions and programs.

The output is the same s-expression surface syntax the parser accepts, so
``parse_expression(pretty(e))`` round-trips (tested property-based in
``tests/core/test_parser.py``).
"""

from __future__ import annotations

from .ast import (
    AtomConst,
    BoolConst,
    Call,
    Choose,
    ConsList,
    EmptyList,
    EmptySet,
    Equal,
    Expr,
    FunctionDef,
    If,
    Insert,
    Lambda,
    LessEq,
    ListReduce,
    NatConst,
    New,
    Program,
    Rest,
    Select,
    SetReduce,
    TupleExpr,
    Var,
)

__all__ = ["pretty", "pretty_program"]


def pretty(expr: Expr) -> str:
    """Render ``expr`` in the surface syntax."""
    if isinstance(expr, BoolConst):
        return "true" if expr.value else "false"
    if isinstance(expr, AtomConst):
        return f"(atom {expr.value.rank})"
    if isinstance(expr, NatConst):
        return f"(nat {expr.value})"
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, If):
        return (
            f"(if {pretty(expr.cond)} {pretty(expr.then_branch)} "
            f"{pretty(expr.else_branch)})"
        )
    if isinstance(expr, TupleExpr):
        inner = " ".join(pretty(item) for item in expr.items)
        return f"(tuple {inner})" if inner else "(tuple)"
    if isinstance(expr, Select):
        return f"(sel {expr.index} {pretty(expr.target)})"
    if isinstance(expr, Equal):
        return f"(= {pretty(expr.left)} {pretty(expr.right)})"
    if isinstance(expr, LessEq):
        return f"(<= {pretty(expr.left)} {pretty(expr.right)})"
    if isinstance(expr, EmptySet):
        return "emptyset"
    if isinstance(expr, Insert):
        return f"(insert {pretty(expr.element)} {pretty(expr.target)})"
    if isinstance(expr, Lambda):
        return f"(lambda ({expr.params[0]} {expr.params[1]}) {pretty(expr.body)})"
    if isinstance(expr, SetReduce):
        return (
            f"(set-reduce {pretty(expr.source)} {pretty(expr.app)} "
            f"{pretty(expr.acc)} {pretty(expr.base)} {pretty(expr.extra)})"
        )
    if isinstance(expr, ListReduce):
        return (
            f"(list-reduce {pretty(expr.source)} {pretty(expr.app)} "
            f"{pretty(expr.acc)} {pretty(expr.base)} {pretty(expr.extra)})"
        )
    if isinstance(expr, Call):
        inner = " ".join(pretty(arg) for arg in expr.args)
        return f"({expr.name} {inner})" if inner else f"({expr.name})"
    if isinstance(expr, New):
        return f"(new {pretty(expr.source)})"
    if isinstance(expr, Choose):
        return f"(choose {pretty(expr.source)})"
    if isinstance(expr, Rest):
        return f"(rest {pretty(expr.source)})"
    if isinstance(expr, EmptyList):
        return "emptylist"
    if isinstance(expr, ConsList):
        return f"(cons {pretty(expr.item)} {pretty(expr.target)})"
    raise TypeError(f"cannot pretty-print {expr!r:.40}")


def _pretty_definition(definition: FunctionDef) -> str:
    params = " ".join(definition.params)
    return f"(define ({definition.name} {params})\n  {pretty(definition.body)})"


def pretty_program(program: Program) -> str:
    """Render a whole program: its definitions followed by the main
    expression (if any)."""
    parts = [_pretty_definition(d) for d in program.definitions.values()]
    if program.main is not None:
        parts.append(pretty(program.main))
    return "\n\n".join(parts) + ("\n" if parts else "")
