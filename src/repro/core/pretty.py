"""Pretty-printer for SRL expressions and programs.

The output is the same s-expression surface syntax the parser accepts, so
``parse_expression(pretty(e))`` round-trips for *every* expression — names
that would collide with the grammar (reserved words, integer-shaped names,
names containing whitespace/delimiters, the empty name) are emitted in the
parser's ``|...|`` verbatim-symbol quoting.  The round trip is pinned
property-based in ``tests/core/test_roundtrip.py`` over the standard
library, every ``queries/*`` program and adversarial generated names.
"""

from __future__ import annotations

from .ast import (
    AtomConst,
    BoolConst,
    Call,
    Choose,
    ConsList,
    EmptyList,
    EmptySet,
    Equal,
    Expr,
    FunctionDef,
    If,
    Insert,
    Lambda,
    LessEq,
    ListReduce,
    NatConst,
    New,
    Program,
    Rest,
    Select,
    SetReduce,
    TupleExpr,
    Var,
)

__all__ = ["pretty", "pretty_program"]


def _needs_quoting(name: str) -> bool:
    from .parser import _RESERVED

    if not name:
        return True
    if name in _RESERVED:
        return True
    if name.lstrip("-").isdigit():
        return True
    return any(ch in " \t\r\n();|\\" for ch in name)


def _sym(name: str) -> str:
    """Render a variable / function / parameter name, quoting it with the
    parser's ``|...|`` verbatim syntax when it would not survive re-parsing
    as a bare symbol."""
    if not _needs_quoting(name):
        return name
    escaped = name.replace("\\", "\\\\").replace("|", "\\|")
    return f"|{escaped}|"


def pretty(expr: Expr) -> str:
    """Render ``expr`` in the surface syntax."""
    if isinstance(expr, BoolConst):
        return "true" if expr.value else "false"
    if isinstance(expr, AtomConst):
        return f"(atom {expr.value.rank})"
    if isinstance(expr, NatConst):
        return f"(nat {expr.value})"
    if isinstance(expr, Var):
        return _sym(expr.name)
    if isinstance(expr, If):
        return (
            f"(if {pretty(expr.cond)} {pretty(expr.then_branch)} "
            f"{pretty(expr.else_branch)})"
        )
    if isinstance(expr, TupleExpr):
        inner = " ".join(pretty(item) for item in expr.items)
        return f"(tuple {inner})" if inner else "(tuple)"
    if isinstance(expr, Select):
        return f"(sel {expr.index} {pretty(expr.target)})"
    if isinstance(expr, Equal):
        return f"(= {pretty(expr.left)} {pretty(expr.right)})"
    if isinstance(expr, LessEq):
        return f"(<= {pretty(expr.left)} {pretty(expr.right)})"
    if isinstance(expr, EmptySet):
        return "emptyset"
    if isinstance(expr, Insert):
        return f"(insert {pretty(expr.element)} {pretty(expr.target)})"
    if isinstance(expr, Lambda):
        return (f"(lambda ({_sym(expr.params[0])} {_sym(expr.params[1])}) "
                f"{pretty(expr.body)})")
    if isinstance(expr, SetReduce):
        return (
            f"(set-reduce {pretty(expr.source)} {pretty(expr.app)} "
            f"{pretty(expr.acc)} {pretty(expr.base)} {pretty(expr.extra)})"
        )
    if isinstance(expr, ListReduce):
        return (
            f"(list-reduce {pretty(expr.source)} {pretty(expr.app)} "
            f"{pretty(expr.acc)} {pretty(expr.base)} {pretty(expr.extra)})"
        )
    if isinstance(expr, Call):
        inner = " ".join(pretty(arg) for arg in expr.args)
        name = _sym(expr.name)
        return f"({name} {inner})" if inner else f"({name})"
    if isinstance(expr, New):
        return f"(new {pretty(expr.source)})"
    if isinstance(expr, Choose):
        return f"(choose {pretty(expr.source)})"
    if isinstance(expr, Rest):
        return f"(rest {pretty(expr.source)})"
    if isinstance(expr, EmptyList):
        return "emptylist"
    if isinstance(expr, ConsList):
        return f"(cons {pretty(expr.item)} {pretty(expr.target)})"
    raise TypeError(f"cannot pretty-print {expr!r:.40}")


def _pretty_definition(definition: FunctionDef) -> str:
    params = " ".join(_sym(p) for p in definition.params)
    name = _sym(definition.name)
    signature = f"{name} {params}" if params else name
    return f"(define ({signature})\n  {pretty(definition.body)})"


def pretty_program(program: Program) -> str:
    """Render a whole program: its definitions followed by the main
    expression (if any)."""
    parts = [_pretty_definition(d) for d in program.definitions.values()]
    if program.main is not None:
        parts.append(pretty(program.main))
    return "\n\n".join(parts) + ("\n" if parts else "")
