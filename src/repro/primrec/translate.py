"""Theorem 5.2: translating primitive recursion into SRL + new.

Numbers are represented by finite sets: ``0`` is the empty set and ``n + 1``
is ``n ∪ {new(n)}``, so the value of a set is simply its cardinality.  Under
that representation:

* ``succ(S) = insert(new(S), S)`` — the only use of ``new``;
* the constant zero function returns ``emptyset``;
* projections return the corresponding argument;
* composition becomes composition of named definitions;
* primitive recursion becomes a single ``set-reduce`` over the recursion
  argument (Proposition 5.3): the accumulator carries the pair
  ``[current value, elements seen so far]`` — the seen-set plays the role of
  the stage number ``s`` in ``h(s, t, f(s, t))`` — and the parameters are
  threaded through ``extra``.

:func:`primrec_to_srl` performs this translation for any
:class:`~repro.primrec.functions.PRFunction` term; :func:`run_translated`
evaluates the generated program on natural-number arguments and decodes the
answer, so tests can confirm ``f(x̄) == |translated(x̄)|`` for every term in
the arithmetic toolkit.

The converse direction of Theorem 5.2 (SRL + new functions are primitive
recursive) is witnessed in :mod:`repro.primrec.godel`, which exhibits the
SRL primitives as primitive recursive functions on the sets-as-numbers
encoding; the paper composes those primitives by the same recursion scheme
used here.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count as _count

from repro.core import Atom, Database, EvaluationLimits, Program, Session, make_set
from repro.core import builders as b
from repro.core.values import SRLSet, Value

from .functions import Compose, Const, Identity, PRFunction, PrimRec, Proj, Succ, Zero

__all__ = ["TranslatedFunction", "primrec_to_srl", "nat_to_set", "set_to_nat", "run_translated"]


def nat_to_set(value: int) -> SRLSet:
    """The canonical set representing ``value`` (atoms 0..value-1)."""
    if value < 0:
        raise ValueError("naturals only")
    return make_set(*(Atom(i) for i in range(value)))


def set_to_nat(value: Value) -> int:
    """Decode a set back to the natural it represents (its cardinality)."""
    if not isinstance(value, SRLSet):
        raise TypeError(f"expected a set, got {value!r}")
    return len(value)


@dataclass
class TranslatedFunction:
    """The SRL + new program produced for one primitive recursive term."""

    program: Program
    entry_point: str
    arity: int


class _Translator:
    def __init__(self) -> None:
        self.program = Program()
        self._names = _count(1)
        self._cache: dict[int, str] = {}

    def fresh(self, hint: str) -> str:
        return f"{hint}-{next(self._names)}"

    def translate(self, function: PRFunction) -> str:
        """Return the name of a definition computing ``function``."""
        key = id(function)
        if key in self._cache:
            return self._cache[key]
        name = self._build(function)
        self._cache[key] = name
        return name

    def _params(self, arity: int) -> list[str]:
        return [f"x{i}" for i in range(1, arity + 1)]

    def _build(self, function: PRFunction) -> str:
        params = self._params(function.arity)
        if isinstance(function, Zero):
            name = self.fresh("zero")
            self.program.define(b.define(name, params, b.emptyset()))
            return name
        if isinstance(function, Succ):
            name = self.fresh("succ")
            self.program.define(
                b.define(name, params, b.insert(b.new(b.var("x1")), b.var("x1")))
            )
            return name
        if isinstance(function, (Proj, Identity)):
            index = function.index if isinstance(function, Proj) else 1
            name = self.fresh("proj")
            self.program.define(b.define(name, params, b.var(f"x{index}")))
            return name
        if isinstance(function, Const):
            name = self.fresh("const")
            body: object = b.emptyset()
            for _ in range(function.value):
                body = b.insert(b.new(body), body)  # type: ignore[arg-type]
            self.program.define(b.define(name, params, body))  # type: ignore[arg-type]
            return name
        if isinstance(function, Compose):
            outer_name = self.translate(function.outer)
            inner_names = [self.translate(g) for g in function.inner]
            name = self.fresh("compose")
            arguments = [b.call(inner, *(b.var(p) for p in params)) for inner in inner_names]
            self.program.define(b.define(name, params, b.call(outer_name, *arguments)))
            return name
        if isinstance(function, PrimRec):
            return self._build_primrec(function)
        raise TypeError(f"cannot translate {type(function).__name__}")

    def _build_primrec(self, function: PrimRec) -> str:
        base_name = self.translate(function.base)
        step_name = self.translate(function.step)
        parameter_count = function.base.arity
        params = self._params(function.arity)       # x1 = recursion argument
        parameter_vars = [b.var(p) for p in params[1:]]

        # extra = the tuple of parameters (or emptyset when there are none).
        extra = b.tup(*parameter_vars) if parameter_vars else b.emptyset()

        # Unpack the parameters from the app result `a = [element, extra]`.
        def step_parameter(index: int):
            packed = b.sel(2, b.var("a"))
            if parameter_count == 0:
                raise IndexError
            return b.sel(index, packed)

        step_args = [b.sel(2, b.var("r"))]            # s  = elements seen so far
        step_args += [step_parameter(i + 1) for i in range(parameter_count)]
        step_args += [b.sel(1, b.var("r"))]           # f(s, t)
        accumulator = b.lam(
            "a", "r",
            b.tup(
                b.call(step_name, *step_args),
                b.insert(b.sel(1, b.var("a")), b.sel(2, b.var("r"))),
            ),
        )
        base_call = b.call(base_name, *parameter_vars)
        body = b.sel(
            1,
            b.set_reduce(
                b.var(params[0]),
                b.lam("x", "e", b.tup(b.var("x"), b.var("e"))),
                accumulator,
                b.tup(base_call, b.emptyset()),
                extra,
            ),
        )
        name = self.fresh("primrec")
        self.program.define(b.define(name, params, body))
        return name


def primrec_to_srl(function: PRFunction) -> TranslatedFunction:
    """Translate a primitive recursive term into an SRL + new program."""
    translator = _Translator()
    entry = translator.translate(function)
    return TranslatedFunction(
        program=translator.program,
        entry_point=entry,
        arity=function.arity,
    )


def run_translated(translated: TranslatedFunction, *arguments: int,
                   limits: EvaluationLimits | None = None) -> int:
    """Evaluate the translated program on natural arguments and decode the
    resulting set back to a natural number."""
    if len(arguments) != translated.arity:
        raise TypeError(
            f"{translated.entry_point} expects {translated.arity} arguments, "
            f"got {len(arguments)}"
        )
    session = Session(translated.program, limits)
    values = [nat_to_set(argument) for argument in arguments]
    result = session.call(translated.entry_point, *values, database=Database())
    return set_to_nat(result)
