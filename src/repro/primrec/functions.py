"""Primitive recursive functions as combinator terms (Definition 5.1).

The class PrimRec is built from the initial functions

* ``succ(i) = i + 1``,
* the constant zero function ``n(i) = 0``,
* the projections ``p_k^n(i1, ..., in) = ik``,

closed under composition and primitive recursion::

    f(0, t)     = g(t)
    f(s + 1, t) = h(s, t, f(s, t))

Terms are plain data (so the Theorem 5.2 translation into SRL + new can walk
them) and evaluate iteratively, so deep recursions do not hit Python's
recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["PRFunction", "Zero", "Succ", "Proj", "Const", "Compose", "PrimRec", "Identity"]


class PRFunction:
    """Base class of primitive recursive function terms."""

    arity: int

    def __call__(self, *args: int) -> int:
        return self.apply(*args)

    def apply(self, *args: int) -> int:
        raise NotImplementedError

    def _check_arity(self, args: Sequence[int]) -> None:
        if len(args) != self.arity:
            raise TypeError(
                f"{type(self).__name__} expects {self.arity} argument(s), got {len(args)}"
            )
        for value in args:
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise TypeError(f"primitive recursive functions act on naturals, got {value!r}")


@dataclass(frozen=True)
class Zero(PRFunction):
    """The constant zero function of the given arity (``n(i) = 0``)."""

    arity: int = 1

    def apply(self, *args: int) -> int:
        self._check_arity(args)
        return 0


@dataclass(frozen=True)
class Succ(PRFunction):
    """``succ(i) = i + 1``."""

    arity: int = 1

    def apply(self, *args: int) -> int:
        self._check_arity(args)
        return args[0] + 1


@dataclass(frozen=True)
class Proj(PRFunction):
    """``p_k^n(i1, ..., in) = ik`` (1-based ``k``)."""

    index: int
    arity: int

    def __post_init__(self) -> None:
        if not 1 <= self.index <= self.arity:
            raise ValueError(f"projection index {self.index} out of range for arity {self.arity}")

    def apply(self, *args: int) -> int:
        self._check_arity(args)
        return args[self.index - 1]


@dataclass(frozen=True)
class Const(PRFunction):
    """The constant function ``const_c`` — definable from Zero and Succ, kept
    as a primitive for readability (it is obviously primitive recursive)."""

    value: int
    arity: int = 1

    def apply(self, *args: int) -> int:
        self._check_arity(args)
        return self.value


@dataclass(frozen=True)
class Identity(PRFunction):
    """``id(i) = i`` (= ``Proj(1, 1)``, named for readability)."""

    arity: int = 1

    def apply(self, *args: int) -> int:
        self._check_arity(args)
        return args[0]


@dataclass(frozen=True)
class Compose(PRFunction):
    """``Compose(f, (g1, ..., gm))(x̄) = f(g1(x̄), ..., gm(x̄))``."""

    outer: PRFunction
    inner: tuple[PRFunction, ...]

    def __post_init__(self) -> None:
        if len(self.inner) != self.outer.arity:
            raise ValueError(
                f"outer function expects {self.outer.arity} arguments but "
                f"{len(self.inner)} inner functions were given"
            )
        arities = {g.arity for g in self.inner}
        if len(arities) > 1:
            raise ValueError(f"inner functions disagree on arity: {sorted(arities)}")

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.inner[0].arity if self.inner else 0

    def apply(self, *args: int) -> int:
        self._check_arity(args)
        return self.outer.apply(*(g.apply(*args) for g in self.inner))


@dataclass(frozen=True)
class PrimRec(PRFunction):
    """Primitive recursion on the *first* argument (Definition 5.1)::

        f(0, t̄)     = g(t̄)
        f(s + 1, t̄) = h(s, t̄, f(s, t̄))

    ``g`` has arity ``k`` and ``h`` arity ``k + 2`` where ``k`` is the number
    of parameters ``t̄``; the defined ``f`` has arity ``k + 1``.
    Evaluation is an iterative loop from 0 up to ``s``.
    """

    base: PRFunction
    step: PRFunction

    def __post_init__(self) -> None:
        if self.step.arity != self.base.arity + 2:
            raise ValueError(
                f"step function must have arity base+2 = {self.base.arity + 2}, "
                f"got {self.step.arity}"
            )

    @property
    def arity(self) -> int:  # type: ignore[override]
        return self.base.arity + 1

    def apply(self, *args: int) -> int:
        self._check_arity(args)
        counter, parameters = args[0], args[1:]
        value = self.base.apply(*parameters)
        for stage in range(counter):
            value = self.step.apply(stage, *parameters, value)
        return value
