"""The arithmetic toolkit of Fact 5.4, built as primitive recursive terms.

Everything here is a genuine :class:`~repro.primrec.functions.PRFunction`
term (no Python arithmetic smuggled in), so the terms both *evaluate*
correctly and *witness* primitive-recursiveness, which is what the
Theorem 5.2 / Fact 5.4 argument needs: ``Bit``, ``Div``, ``Mod``, ``Log``,
``Rlog`` and ``Cond`` are the helpers the paper uses to show that the SRL
primitives (``insert``, ``choose``, ``rest``, ``new``) are primitive
recursive under the sets-as-numbers encoding.

The terms favour clarity over efficiency — evaluation cost grows quickly
with the magnitude of the arguments, which is fine for the unit tests and
the Theorem 5.2 benchmark sizes.
"""

from __future__ import annotations

from .functions import Compose, Const, Identity, PRFunction, PrimRec, Proj, Succ, Zero

__all__ = [
    "ADD", "MULT", "PRED", "MONUS", "SIGN", "IS_ZERO", "COND", "EQ", "LESS",
    "EXP", "MOD2", "DIV2", "DIV_POW2", "MOD_POW2", "BIT", "LOG", "RLOG",
]


def _swap2(f: PRFunction) -> PRFunction:
    """``swap(f)(x, y) = f(y, x)``."""
    return Compose(f, (Proj(2, 2), Proj(1, 2)))


#: ``ADD(s, t) = s + t`` — recursion on the first argument.
ADD: PRFunction = PrimRec(base=Proj(1, 1), step=Compose(Succ(), (Proj(3, 3),)))

#: ``MULT(s, t) = s * t``.
MULT: PRFunction = PrimRec(base=Zero(1), step=Compose(ADD, (Proj(3, 3), Proj(2, 3))))

#: ``PRED(s) = max(s - 1, 0)``.
PRED: PRFunction = PrimRec(base=Zero(0), step=Proj(1, 2))

#: ``MONUS(x, y) = max(x - y, 0)`` (truncated subtraction).
_MONUS_REV: PRFunction = PrimRec(base=Proj(1, 1), step=Compose(PRED, (Proj(3, 3),)))
MONUS: PRFunction = _swap2(_MONUS_REV)

#: ``SIGN(x) = 0`` if ``x = 0`` else ``1``.
SIGN: PRFunction = PrimRec(base=Zero(0), step=Const(1, 2))

#: ``IS_ZERO(x) = 1`` if ``x = 0`` else ``0``.
IS_ZERO: PRFunction = Compose(MONUS, (Const(1, 1), SIGN))

#: ``COND(b, i, j) = i`` if ``b >= 1`` else ``j`` (the paper's Cond, with a
#: numeric guard rather than a boolean sort).
COND: PRFunction = Compose(
    ADD,
    (
        Compose(MULT, (Compose(SIGN, (Proj(1, 3),)), Proj(2, 3))),
        Compose(MULT, (Compose(IS_ZERO, (Proj(1, 3),)), Proj(3, 3))),
    ),
)

#: ``EQ(x, y) = 1`` if ``x = y`` else ``0``.
EQ: PRFunction = Compose(
    IS_ZERO,
    (Compose(ADD, (MONUS, _swap2(MONUS))),),
)

#: ``LESS(x, y) = 1`` if ``x < y`` else ``0``.
LESS: PRFunction = Compose(SIGN, (_swap2(MONUS),))

#: ``EXP(n, i) = n ** i``.
_EXP_REV: PRFunction = PrimRec(
    base=Const(1, 1),
    step=Compose(MULT, (Proj(3, 3), Proj(2, 3))),
)
EXP: PRFunction = _swap2(_EXP_REV)

#: ``MOD2(x) = x mod 2``.
MOD2: PRFunction = PrimRec(
    base=Zero(0),
    step=Compose(MONUS, (Const(1, 2), Proj(2, 2))),
)

#: ``DIV2(x) = floor(x / 2)``.
DIV2: PRFunction = PrimRec(
    base=Zero(0),
    step=Compose(ADD, (Proj(2, 2), Compose(MOD2, (Proj(1, 2),)))),
)

#: ``DIV_POW2(n, j) = floor(n / 2**j)`` (the paper's ``Div(n, j)``).
_DIV_REV: PRFunction = PrimRec(base=Proj(1, 1), step=Compose(DIV2, (Proj(3, 3),)))
DIV_POW2: PRFunction = _swap2(_DIV_REV)

#: ``MOD_POW2(n, j) = n mod 2**j`` (the paper's ``Mod(n, j)``).
MOD_POW2: PRFunction = Compose(
    MONUS,
    (
        Proj(1, 2),
        Compose(MULT, (DIV_POW2, Compose(EXP, (Const(2, 2), Proj(2, 2))))),
    ),
)

#: ``BIT(n, i)`` — the ``i``-th bit of ``n`` (the paper's ``Bit``).
BIT: PRFunction = Compose(MOD2, (DIV_POW2,))

#: ``LOG(n)`` — the index of the most significant 1 bit (0 for n <= 1):
#: LOG(n) = sum over k = 1..n of SIGN(DIV_POW2(n, k)).
_LOG_SUM: PRFunction = PrimRec(
    base=Zero(1),
    step=Compose(
        ADD,
        (
            Proj(3, 3),
            Compose(SIGN, (Compose(DIV_POW2, (Proj(2, 3), Compose(Succ(), (Proj(1, 3),)))),)),
        ),
    ),
)
LOG: PRFunction = Compose(_LOG_SUM, (Identity(), Identity()))

#: ``RLOG(n)`` — the index of the least significant 1 bit (0 for n = 0):
#: RLOG(n) = sum over k = 0..n-1 of IS_ZERO(MOD_POW2(n, k + 1)).
_RLOG_SUM: PRFunction = PrimRec(
    base=Zero(1),
    step=Compose(
        ADD,
        (
            Proj(3, 3),
            Compose(
                IS_ZERO,
                (Compose(MOD_POW2, (Proj(2, 3), Compose(Succ(), (Proj(1, 3),)))),),
            ),
        ),
    ),
)
RLOG: PRFunction = Compose(_RLOG_SUM, (Identity(), Identity()))
