"""Primitive recursive functions and the Theorem 5.2 translations.

* :mod:`repro.primrec.functions` — the combinator representation of PrimRec
  (initial functions, composition, primitive recursion);
* :mod:`repro.primrec.arithmetic` — the Fact 5.4 toolkit (Bit, Div, Mod,
  Log, Rlog, Cond, ...) built as PrimRec terms;
* :mod:`repro.primrec.godel` — the sets-as-numbers encoding and the SRL
  primitives as primitive recursive functions (one half of Theorem 5.2);
* :mod:`repro.primrec.translate` — PrimRec → SRL + new (the other half).
"""

from .arithmetic import (
    ADD,
    BIT,
    COND,
    DIV2,
    DIV_POW2,
    EQ,
    EXP,
    IS_ZERO,
    LESS,
    LOG,
    MOD2,
    MOD_POW2,
    MONUS,
    MULT,
    PRED,
    RLOG,
    SIGN,
)
from .functions import Compose, Const, Identity, PRFunction, PrimRec, Proj, Succ, Zero
from .godel import (
    CHOOSE_PR,
    INSERT_PR,
    NEW_PR,
    REST_PR,
    choose_number,
    decode_element,
    decode_set,
    encode_element,
    encode_set,
    insert_number,
    new_number,
    rest_number,
)
from .translate import (
    TranslatedFunction,
    nat_to_set,
    primrec_to_srl,
    run_translated,
    set_to_nat,
)

__all__ = [name for name in dir() if not name.startswith("_")]
