"""The sets-as-numbers Gödel encoding of Section 5.

Given the ordered domain ``D = {d0 <= d1 <= ...}``, a finite subset ``S`` is
encoded as the number whose ``i``-th bit is 1 iff ``d_i`` is in ``S``; the
singleton ``{d_i}`` is the number ``2**i``.  Under this encoding the SRL
primitives become primitive recursive (the second half of Theorem 5.2):

* ``choose(S) = Exp(2, Rlog(S))`` — the least set bit is the minimal element;
* ``rest(S)``  — clear the least set bit (the paper phrases this as a right
  shift, which conflates element identities; clearing the bit preserves them
  and is the faithful reading — see DESIGN.md);
* ``insert(x, S) = Cond(Bit(S, Log(x)), S, S + x)`` for a singleton code ``x``;
* ``new(S) = Exp(2, Log(S) + 1)`` — an element beyond everything in ``S``.

All four are provided both as plain Python helpers (for tests and the
benchmark harness) and as genuine primitive recursive terms built from the
Fact 5.4 toolkit, which is the actual content of the theorem.
"""

from __future__ import annotations

from typing import Iterable

from .arithmetic import ADD, BIT, COND, EXP, LOG, MONUS, RLOG
from .functions import Compose, Const, PRFunction, Proj, Succ

__all__ = [
    "encode_set",
    "decode_set",
    "encode_element",
    "decode_element",
    "CHOOSE_PR",
    "REST_PR",
    "INSERT_PR",
    "NEW_PR",
    "choose_number",
    "rest_number",
    "insert_number",
    "new_number",
]


# ----------------------------------------------------------- plain encoding


def encode_set(ranks: Iterable[int]) -> int:
    """The number encoding the set of domain elements with the given ranks."""
    code = 0
    for rank in ranks:
        if rank < 0:
            raise ValueError("domain ranks are non-negative")
        code |= 1 << rank
    return code


def decode_set(code: int) -> frozenset[int]:
    """The set of ranks encoded by ``code``."""
    if code < 0:
        raise ValueError("set codes are non-negative")
    ranks = set()
    position = 0
    while code:
        if code & 1:
            ranks.add(position)
        code >>= 1
        position += 1
    return frozenset(ranks)


def encode_element(rank: int) -> int:
    """``d_rank`` as a singleton code (the number ``2**rank``)."""
    return 1 << rank


def decode_element(code: int) -> int:
    """Inverse of :func:`encode_element` (requires a power of two)."""
    if code <= 0 or code & (code - 1):
        raise ValueError(f"{code} is not the code of a single domain element")
    return code.bit_length() - 1


# --------------------------------------------------- the primitives, in PR

#: ``choose(S) = Exp(2, Rlog(S))``.
CHOOSE_PR: PRFunction = Compose(EXP, (Const(2, 1), RLOG))

#: ``rest(S) = S - choose(S)`` (clear the least significant set bit).
REST_PR: PRFunction = Compose(MONUS, (Proj(1, 1), CHOOSE_PR))

#: ``insert(x, S) = Cond(Bit(S, Log(x)), S, S + x)`` — ``x`` a singleton code.
INSERT_PR: PRFunction = Compose(
    COND,
    (
        Compose(BIT, (Proj(2, 2), Compose(LOG, (Proj(1, 2),)))),
        Proj(2, 2),
        Compose(ADD, (Proj(2, 2), Proj(1, 2))),
    ),
)

#: ``new(S) = Exp(2, Log(S) + 1)``.
NEW_PR: PRFunction = Compose(EXP, (Const(2, 1), Compose(Succ(), (LOG,))))


# ------------------------------------------------------- python references


def choose_number(code: int) -> int:
    """Reference implementation of ``choose`` on set codes."""
    if code <= 0:
        raise ValueError("choose applied to the empty set")
    return code & -code


def rest_number(code: int) -> int:
    """Reference implementation of ``rest`` on set codes."""
    if code <= 0:
        raise ValueError("rest applied to the empty set")
    return code & (code - 1)


def insert_number(element_code: int, set_code: int) -> int:
    """Reference implementation of ``insert`` on codes."""
    decode_element(element_code)  # validates that it is a singleton
    return set_code | element_code


def new_number(set_code: int) -> int:
    """Reference implementation of ``new`` on codes: an element strictly
    above everything in the set."""
    if set_code == 0:
        return 2  # matches NEW_PR's behaviour on the empty set (Log(0) = 0)
    return 1 << set_code.bit_length()
