"""A small library of concrete machines used by the tests and benchmarks.

All single-tape machines here run in time linear in the input length (one
left-to-right pass), which is what the Proposition 6.2 compiler targets:
DTIME(n) is expressible by an SRL expression of width 2 and depth 3.
"""

from __future__ import annotations

from .tm import BLANK, LogspaceMachine, RIGHT, STAY, TuringMachine

__all__ = [
    "parity_machine",
    "contains_ab_machine",
    "all_ones_machine",
    "last_symbol_one_machine",
    "parity_logspace_machine",
]


def parity_machine() -> TuringMachine:
    """Accept binary strings with an even number of ``1`` symbols."""
    transitions = {
        ("even", "0"): ("even", "0", RIGHT),
        ("even", "1"): ("odd", "1", RIGHT),
        ("odd", "0"): ("odd", "0", RIGHT),
        ("odd", "1"): ("even", "1", RIGHT),
    }
    return TuringMachine(
        name="even-number-of-ones",
        states=("even", "odd"),
        input_alphabet=("0", "1"),
        tape_alphabet=("0", "1", BLANK),
        transitions=transitions,
        start_state="even",
        accept_states=frozenset({"even"}),
    )


def contains_ab_machine() -> TuringMachine:
    """Accept strings over {a, b} containing the substring ``ab``."""
    transitions = {
        ("start", "a"): ("seen_a", "a", RIGHT),
        ("start", "b"): ("start", "b", RIGHT),
        ("seen_a", "a"): ("seen_a", "a", RIGHT),
        ("seen_a", "b"): ("accept", "b", STAY),
    }
    return TuringMachine(
        name="contains-ab",
        states=("start", "seen_a", "accept"),
        input_alphabet=("a", "b"),
        tape_alphabet=("a", "b", BLANK),
        transitions=transitions,
        start_state="start",
        accept_states=frozenset({"accept"}),
    )


def all_ones_machine() -> TuringMachine:
    """Accept binary strings consisting entirely of ``1`` symbols (the empty
    string included): scan right; any ``0`` rejects."""
    transitions = {
        ("scan", "1"): ("scan", "1", RIGHT),
        ("scan", "0"): ("reject", "0", STAY),
    }
    return TuringMachine(
        name="all-ones",
        states=("scan", "reject"),
        input_alphabet=("0", "1"),
        tape_alphabet=("0", "1", BLANK),
        transitions=transitions,
        start_state="scan",
        accept_states=frozenset({"scan"}),
    )


def last_symbol_one_machine() -> TuringMachine:
    """Accept binary strings whose last symbol is ``1``: remember the most
    recent symbol while scanning right."""
    transitions = {
        ("last0", "0"): ("last0", "0", RIGHT),
        ("last0", "1"): ("last1", "1", RIGHT),
        ("last1", "0"): ("last0", "0", RIGHT),
        ("last1", "1"): ("last1", "1", RIGHT),
    }
    return TuringMachine(
        name="last-symbol-is-one",
        states=("last0", "last1"),
        input_alphabet=("0", "1"),
        tape_alphabet=("0", "1", BLANK),
        transitions=transitions,
        start_state="last0",
        accept_states=frozenset({"last1"}),
    )


def parity_logspace_machine() -> LogspaceMachine:
    """The parity language on the two-tape model: the work tape stores a
    single bit, so the machine runs in constant (a fortiori logarithmic)
    space — a tiny witness of the L-side machinery of Theorem 4.13."""
    transitions = {}
    for work in (BLANK, "0", "1"):
        current = "1" if work == "1" else "0"
        flipped = "0" if current == "1" else "1"
        transitions[("scan", "<", work)] = ("scan", work, 1, 0)
        transitions[("scan", "0", work)] = ("scan", work, 1, 0)
        transitions[("scan", "1", work)] = ("scan", flipped, 1, 0)
        transitions[("scan", ">", work)] = (
            "accept" if current == "0" else "reject", work, 0, 0,
        )
    return LogspaceMachine(
        name="parity-logspace",
        states=("scan", "accept", "reject"),
        input_alphabet=("0", "1"),
        work_alphabet=("0", "1", BLANK),
        transitions=transitions,
        start_state="scan",
        accept_states=frozenset({"accept"}),
    )
