"""Turing machines and the Proposition 6.2 compiler into SRL.

* :mod:`repro.machines.tm` — single-tape and logspace (two-tape) DTMs with
  step / space accounting;
* :mod:`repro.machines.programs` — concrete linear-time machines (parity,
  substring search, ...) used by tests and benchmarks;
* :mod:`repro.machines.compile_srl` — the width-2 / depth-3 SRL simulation
  of DTIME(n) machines (Proposition 6.2, Corollary 6.3).
"""

from .compile_srl import CompiledMachine, compile_machine
from .programs import (
    all_ones_machine,
    contains_ab_machine,
    last_symbol_one_machine,
    parity_logspace_machine,
    parity_machine,
)
from .tm import (
    BLANK,
    LEFT,
    LogspaceMachine,
    LogspaceRunResult,
    RIGHT,
    RunResult,
    STAY,
    TuringMachine,
)

__all__ = [name for name in dir() if not name.startswith("_")]
