"""Proposition 6.2: compiling a Turing machine into an SRL expression.

The paper shows that a DTIME(n) Turing machine can be simulated by an SRL
expression of width 2 and depth 3: the input is the set of pairs
``{[position, symbol]}``, the work tape is another set of pairs, and a
``set-reduce`` over the position domain iterates the machine's step
function once per element.  Corollary 6.3 extends the idea to DTIME(n^k)
with width k+1 and depth k+3 by nesting the iteration.

:func:`compile_machine` performs exactly that construction for any
single-tape :class:`~repro.machines.tm.TuringMachine`:

* the configuration is the width-3 tuple ``[TAPE, HEAD, STATE]`` where
  ``TAPE`` is a set of width-2 ``[position, symbol]`` pairs — the only sets
  the program builds have width-2 tuples, matching the paper's "width 2";
* one *pass* (``run-pass``) is a ``set-reduce`` over the position domain
  ``D`` that applies the machine's transition once per element, so a pass
  executes ``|D|`` machine steps; ``passes`` passes execute ``passes * |D|``
  steps (Corollary 6.3's ``n^k`` comes from nesting, which here is simply
  composing passes);
* the step function reads the scanned cell, looks the action up in the
  ``DELTA`` relation, writes, and moves the head using the
  increment/decrement scans of Proposition 4.5 — every helper has depth 1,
  a pass has depth 2 and the whole program depth 3, as the paper states.

The compiled program is an honest SRL program: it only uses the constructs
of Section 2 plus the standard library of Fact 2.4; all machine-specific
information (transition table, accepting states, blank symbol, move codes)
enters through the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core import (
    Atom,
    Database,
    EvaluationLimits,
    Program,
    Session,
    make_set,
    make_tuple,
    with_standard_library,
)
from repro.core import builders as b
from repro.core.analysis import ProgramAnalysis, analyze
from repro.core.typecheck import database_types

from .tm import BLANK, LEFT, RIGHT, STAY, TuringMachine

__all__ = ["CompiledMachine", "compile_machine"]


def _succ_pos_definition():
    """``succ-pos(p)``: the successor of ``p`` in the position domain ``D``
    (clamped at the maximum) — the Proposition 4.5 increment scan."""
    accumulator = b.lam(
        "a", "r",
        b.if_(
            b.and_(b.sel(1, b.var("r")), b.not_(b.sel(2, b.var("r")))),
            b.tup(b.true(), b.true(), b.sel(1, b.var("a"))),
            b.if_(
                b.eq(b.sel(1, b.var("a")), b.sel(2, b.var("a"))),
                b.tup(b.true(), b.sel(2, b.var("r")), b.sel(3, b.var("r"))),
                b.var("r"),
            ),
        ),
    )
    scan = b.set_reduce(
        b.var("D"),
        b.lam("d", "pp", b.tup(b.var("d"), b.var("pp"))),
        accumulator,
        b.tup(b.false(), b.false(), b.var("p")),
        b.var("p"),
    )
    return b.define("succ-pos", ["p"], b.sel(3, scan))


def _pred_pos_definition():
    """``pred-pos(p)``: the predecessor of ``p`` in ``D`` (clamped at the
    minimum) — the matching decrement scan."""
    accumulator = b.lam(
        "a", "r",
        b.if_(
            b.sel(1, b.var("r")),
            b.var("r"),
            b.if_(
                b.eq(b.sel(1, b.var("a")), b.sel(2, b.var("a"))),
                b.tup(
                    b.true(),
                    b.sel(2, b.var("r")),
                    b.sel(3, b.var("r")),
                    b.if_(b.sel(2, b.var("r")), b.sel(3, b.var("r")), b.sel(2, b.var("a"))),
                ),
                b.tup(b.false(), b.true(), b.sel(1, b.var("a")), b.sel(4, b.var("r"))),
            ),
        ),
    )
    scan = b.set_reduce(
        b.var("D"),
        b.lam("d", "pp", b.tup(b.var("d"), b.var("pp"))),
        accumulator,
        b.tup(b.false(), b.false(), b.var("p"), b.var("p")),
        b.var("p"),
    )
    return b.define("pred-pos", ["p"], b.sel(4, scan))


def _read_at_definition():
    """``read-at(T, p)``: the symbol at position ``p`` of tape ``T`` (blank
    when the cell is absent)."""
    accumulator = b.lam(
        "a", "r",
        b.if_(
            b.eq(b.sel(1, b.sel(1, b.var("a"))), b.sel(2, b.var("a"))),
            b.sel(2, b.sel(1, b.var("a"))),
            b.var("r"),
        ),
    )
    scan = b.set_reduce(
        b.var("T"),
        b.lam("c", "pp", b.tup(b.var("c"), b.var("pp"))),
        accumulator,
        b.var("BLANKSYM"),
        b.var("p"),
    )
    return b.define("read-at", ["T", "p"], scan)


def _write_at_definition():
    """``write-at(T, p, s)``: tape ``T`` with position ``p`` overwritten by
    symbol ``s``."""
    accumulator = b.lam(
        "a", "r",
        b.if_(
            b.eq(b.sel(1, b.sel(1, b.var("a"))), b.sel(1, b.sel(2, b.var("a")))),
            b.var("r"),
            b.insert(b.sel(1, b.var("a")), b.var("r")),
        ),
    )
    scan = b.set_reduce(
        b.var("T"),
        b.lam("c", "ps", b.tup(b.var("c"), b.var("ps"))),
        accumulator,
        b.insert(b.tup(b.var("p"), b.var("s")), b.emptyset()),
        b.tup(b.var("p"), b.var("s")),
    )
    return b.define("write-at", ["T", "p", "s"], scan)


def _lookup_delta_definition():
    """``lookup-delta(st, sym)``: the ``[new-state, write, move]`` triple for
    the current state and scanned symbol; defaults to "stay put, change
    nothing" so a missing transition is a halting fixpoint."""
    accumulator = b.lam(
        "a", "r",
        b.if_(
            b.and_(
                b.eq(b.sel(1, b.sel(1, b.var("a"))), b.sel(1, b.sel(2, b.var("a")))),
                b.eq(b.sel(2, b.sel(1, b.var("a"))), b.sel(2, b.sel(2, b.var("a")))),
            ),
            b.tup(
                b.sel(3, b.sel(1, b.var("a"))),
                b.sel(4, b.sel(1, b.var("a"))),
                b.sel(5, b.sel(1, b.var("a"))),
            ),
            b.var("r"),
        ),
    )
    scan = b.set_reduce(
        b.var("DELTA"),
        b.lam("t", "q", b.tup(b.var("t"), b.var("q"))),
        accumulator,
        b.tup(b.var("st"), b.var("sym"), b.var("MSTAY")),
        b.tup(b.var("st"), b.var("sym")),
    )
    return b.define("lookup-delta", ["st", "sym"], scan)


def _move_head_definition():
    return b.define(
        "move-head", ["p", "mv"],
        b.if_(
            b.eq(b.var("mv"), b.var("MLEFT")),
            b.call("pred-pos", b.var("p")),
            b.if_(
                b.eq(b.var("mv"), b.var("MRIGHT")),
                b.call("succ-pos", b.var("p")),
                b.var("p"),
            ),
        ),
    )


def _apply_action_definition():
    return b.define(
        "apply-action", ["C", "act"],
        b.tup(
            b.call("write-at", b.sel(1, b.var("C")), b.sel(2, b.var("C")), b.sel(2, b.var("act"))),
            b.call("move-head", b.sel(2, b.var("C")), b.sel(3, b.var("act"))),
            b.sel(1, b.var("act")),
        ),
    )


def _step_definition():
    return b.define(
        "step", ["C"],
        b.call(
            "apply-action",
            b.var("C"),
            b.call(
                "lookup-delta",
                b.sel(3, b.var("C")),
                b.call("read-at", b.sel(1, b.var("C")), b.sel(2, b.var("C"))),
            ),
        ),
    )


def _run_pass_definition():
    """One pass: ``|D|`` applications of the step function."""
    return b.define(
        "run-pass", ["C"],
        b.set_reduce(
            b.var("D"),
            b.lam("d", "e", b.var("d")),
            b.lam("a", "c", b.call("step", b.var("c"))),
            b.var("C"),
            b.emptyset(),
        ),
    )


@dataclass
class CompiledMachine:
    """The result of :func:`compile_machine`: an SRL program plus the
    encodings needed to build its input database."""

    machine: TuringMachine
    passes: int
    program: Program
    symbol_codes: Mapping[str, int]
    state_codes: Mapping[str, int]
    move_codes: Mapping[int, int] = field(
        default_factory=lambda: {LEFT: 0, STAY: 1, RIGHT: 2}
    )

    def tape_length_for(self, input_string: str) -> int:
        """One trailing blank cell is always provided so a rightward scan has
        somewhere to halt."""
        return max(len(input_string), 1) + 1

    def database_for(self, input_string: str,
                     tape_length: int | None = None) -> Database:
        """The database encoding the machine's transition table and the given
        input, ready to run the compiled program against."""
        if tape_length is None:
            tape_length = self.tape_length_for(input_string)
        positions = [Atom(i) for i in range(tape_length)]
        padded = (input_string + BLANK * tape_length)[:tape_length]
        tape = make_set(*(
            make_tuple(Atom(i), Atom(self.symbol_codes[symbol]))
            for i, symbol in enumerate(padded)
        ))
        delta_rows = []
        for (state, symbol), (new_state, write, move) in self.machine.transitions.items():
            delta_rows.append(make_tuple(
                Atom(self.state_codes[state]),
                Atom(self.symbol_codes[symbol]),
                Atom(self.state_codes[new_state]),
                Atom(self.symbol_codes[write]),
                Atom(self.move_codes[move]),
            ))
        database = Database({
            "D": make_set(*positions),
            "TAPE0": tape,
            "DELTA": make_set(*delta_rows),
            "START": Atom(self.state_codes[self.machine.start_state]),
            "ACCEPTING": make_set(*(
                Atom(self.state_codes[state]) for state in self.machine.accept_states
            )),
            "BLANKSYM": Atom(self.symbol_codes[BLANK]),
            "POS0": Atom(0),
            "MLEFT": Atom(self.move_codes[LEFT]),
            "MSTAY": Atom(self.move_codes[STAY]),
            "MRIGHT": Atom(self.move_codes[RIGHT]),
        })
        return database

    def run(self, input_string: str, tape_length: int | None = None,
            limits: EvaluationLimits | None = None,
            backend: str = "interp") -> bool:
        """Evaluate the compiled SRL program on ``input_string`` and return
        the acceptance verdict."""
        session = Session(self.program, limits, backend=backend)
        result = session.run(self.database_for(input_string, tape_length))
        assert isinstance(result, bool)
        return result

    def run_with_stats(self, input_string: str,
                       limits: EvaluationLimits | None = None,
                       backend: str = "interp"):
        """Like :meth:`run` but also return the engine statistics (used by
        the Proposition 6.2 benchmark to confirm the O(n^2) cost).

        The default backend stays the interpreter because the benchmark's
        step counts are defined in AST-node visits (Proposition 6.1's
        ``n^{ad}`` measure); pass ``backend="compiled"`` for raw speed.
        """
        session = Session(self.program, limits, backend=backend)
        accepted = session.run(self.database_for(input_string))
        return accepted, session.stats

    def analysis(self, input_string: str = "0") -> ProgramAnalysis:
        """The Section 6 syntactic analysis of the compiled program."""
        database = self.database_for(input_string)
        return analyze(self.program, input_types=database_types(database))


def compile_machine(machine: TuringMachine, passes: int = 1) -> CompiledMachine:
    """Compile a single-tape machine into an SRL program.

    ``passes`` controls how many times the per-pass ``set-reduce`` is
    composed: one pass executes ``tape_length`` machine steps, so linear-time
    machines need one pass and DTIME(n^k) machines need ``n^{k-1}`` passes in
    principle (the Corollary 6.3 construction nests the iteration instead;
    composing passes keeps the program size independent of the input while
    exposing the same behaviour for the machines shipped in
    :mod:`repro.machines.programs`).
    """
    if passes < 1:
        raise ValueError("passes must be at least 1")

    symbol_codes = {symbol: index for index, symbol in enumerate(machine.tape_alphabet)}
    if BLANK not in symbol_codes:
        symbol_codes[BLANK] = len(symbol_codes)
    state_codes = {state: index for index, state in enumerate(machine.states)}

    program = Program()
    for definition in (
        _succ_pos_definition(),
        _pred_pos_definition(),
        _read_at_definition(),
        _write_at_definition(),
        _lookup_delta_definition(),
        _move_head_definition(),
        _apply_action_definition(),
        _step_definition(),
        _run_pass_definition(),
    ):
        program.define(definition)
    with_standard_library(program)

    configuration = b.tup(b.var("TAPE0"), b.var("POS0"), b.var("START"))
    for _ in range(passes):
        configuration = b.call("run-pass", configuration)
    program.main = b.call("member", b.sel(3, configuration), b.var("ACCEPTING"))

    return CompiledMachine(
        machine=machine,
        passes=passes,
        program=program,
        symbol_codes=symbol_codes,
        state_codes=state_codes,
    )
