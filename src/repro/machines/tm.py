"""Deterministic Turing machines (the Section 4/6 machine models).

Two machine models are provided:

* :class:`TuringMachine` — a single-tape DTM with step accounting, used for
  the DTIME(n^k) simulations of Proposition 6.2 / Corollary 6.3;
* :class:`LogspaceMachine` — a two-tape machine with a read-only input tape
  and a separately-accounted work tape, the model behind L = BASRL
  (Theorem 4.13, Lemma 4.12).

Machines are plain data (states and transition tables), so the Prop. 6.2
compiler can translate them into SRL programs symbol by symbol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["BLANK", "LEFT", "RIGHT", "STAY", "RunResult", "TuringMachine",
           "LogspaceRunResult", "LogspaceMachine"]

BLANK = "_"
LEFT, STAY, RIGHT = -1, 0, 1


@dataclass
class RunResult:
    """The outcome of running a single-tape machine."""

    accepted: bool
    halted: bool
    steps: int
    tape: str
    head: int
    state: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic single-tape Turing machine.

    ``transitions`` maps ``(state, symbol)`` to ``(new_state, write, move)``
    with ``move`` one of :data:`LEFT`, :data:`STAY`, :data:`RIGHT`.  Missing
    transitions halt the machine in place.  ``accept_states`` decide
    acceptance at halting time (or when the step budget runs out, which is
    the reading Proposition 6.2 uses: the machine runs for a fixed number of
    steps on a tape of fixed length).
    """

    name: str
    states: tuple[str, ...]
    input_alphabet: tuple[str, ...]
    tape_alphabet: tuple[str, ...]
    transitions: Mapping[tuple[str, str], tuple[str, str, int]]
    start_state: str
    accept_states: frozenset[str]

    def __post_init__(self) -> None:
        if self.start_state not in self.states:
            raise ValueError(f"start state {self.start_state} not among the states")
        for state in self.accept_states:
            if state not in self.states:
                raise ValueError(f"accept state {state} not among the states")
        for (state, symbol), (new_state, write, move) in self.transitions.items():
            if state not in self.states or new_state not in self.states:
                raise ValueError(f"transition {(state, symbol)} uses an unknown state")
            if symbol not in self.tape_alphabet or write not in self.tape_alphabet:
                raise ValueError(f"transition {(state, symbol)} uses an unknown symbol")
            if move not in (LEFT, STAY, RIGHT):
                raise ValueError(f"transition {(state, symbol)} has an invalid move {move}")

    def is_halting(self, state: str, symbol: str) -> bool:
        return (state, symbol) not in self.transitions

    def run(self, input_string: str, max_steps: int | None = None,
            tape_length: int | None = None) -> RunResult:
        """Run the machine on ``input_string``.

        ``tape_length`` pads (or bounds) the working portion of the tape —
        Proposition 6.2 simulates a machine whose tape has exactly ``n``
        cells; the head is clamped to that window.  ``max_steps`` defaults
        to ``len(tape) ** 2`` which is ample for the linear-time machines in
        :mod:`repro.machines.programs`.
        """
        for symbol in input_string:
            if symbol not in self.input_alphabet:
                raise ValueError(f"input symbol {symbol!r} not in the input alphabet")
        # One trailing blank by default, so a rightward scan has a cell with
        # no transition to halt on (Prop. 6.2 fixes the window explicitly).
        length = tape_length if tape_length is not None else len(input_string) + 1
        tape = list((input_string + BLANK * length)[:length])
        if max_steps is None:
            max_steps = max(length * length, 16)

        state = self.start_state
        head = 0
        steps = 0
        halted = False
        while steps < max_steps:
            symbol = tape[head]
            action = self.transitions.get((state, symbol))
            if action is None:
                halted = True
                break
            state, write, move = action
            tape[head] = write
            head = min(max(head + move, 0), length - 1)
            steps += 1
        return RunResult(
            accepted=state in self.accept_states,
            halted=halted,
            steps=steps,
            tape="".join(tape),
            head=head,
            state=state,
        )

    def accepts(self, input_string: str, **kwargs) -> bool:
        return self.run(input_string, **kwargs).accepted


@dataclass
class LogspaceRunResult:
    """The outcome of running a two-tape (logspace) machine."""

    accepted: bool
    halted: bool
    steps: int
    work_cells_used: int
    state: str


@dataclass(frozen=True)
class LogspaceMachine:
    """A deterministic machine with a read-only input tape and a work tape.

    ``transitions`` maps ``(state, input_symbol, work_symbol)`` to
    ``(new_state, work_write, input_move, work_move)``.  ``work_bound`` (a
    function of the input length) lets callers assert the logarithmic space
    bound; exceeding it raises ``RuntimeError`` so tests can certify that a
    machine really is logspace on the inputs exercised.
    """

    name: str
    states: tuple[str, ...]
    input_alphabet: tuple[str, ...]
    work_alphabet: tuple[str, ...]
    transitions: Mapping[tuple[str, str, str], tuple[str, str, int, int]]
    start_state: str
    accept_states: frozenset[str]

    def run(self, input_string: str, max_steps: int | None = None,
            work_bound: int | None = None) -> LogspaceRunResult:
        n = max(len(input_string), 1)
        # End markers make "off the input" explicit without extra states.
        tape = "<" + input_string + ">"
        work: dict[int, str] = {}
        state = self.start_state
        input_head, work_head = 0, 0
        max_work_head = 0
        steps = 0
        if max_steps is None:
            max_steps = 64 * n * n
        halted = False
        while steps < max_steps:
            input_symbol = tape[input_head] if 0 <= input_head < len(tape) else ">"
            work_symbol = work.get(work_head, BLANK)
            action = self.transitions.get((state, input_symbol, work_symbol))
            if action is None:
                halted = True
                break
            state, work_write, input_move, work_move = action
            work[work_head] = work_write
            input_head = min(max(input_head + input_move, 0), len(tape) - 1)
            work_head = max(work_head + work_move, 0)
            max_work_head = max(max_work_head, work_head)
            if work_bound is not None and max_work_head + 1 > work_bound:
                raise RuntimeError(
                    f"{self.name}: work tape exceeded the bound of {work_bound} cells"
                )
            steps += 1
        return LogspaceRunResult(
            accepted=state in self.accept_states,
            halted=halted,
            steps=steps,
            work_cells_used=max_work_head + 1 if work else 0,
            state=state,
        )

    def accepts(self, input_string: str, **kwargs) -> bool:
        return self.run(input_string, **kwargs).accepted
