#!/usr/bin/env python3
"""The role of ordering (Section 7), end to end.

* EVEN is computed three ways: the ordered BASRL toggle, the proper-hom
  count of Proposition 7.6, and the Python baseline — all agree, and the
  SRL program is provably independent of the order it secretly uses.
* The paper's Purple(First(S)) pattern is shown to be order-dependent, with
  the witnessing permutation printed.
* A 1-WL-indistinguishable pair of graphs (the cheap stand-in for the
  Cai-Fürer-Immerman structures of Theorem 7.7) is separated by an
  order-independent polynomial-time SRL query (connectivity).

Run with:  python examples/order_independence.py
"""

import _bootstrap  # noqa: F401  (puts src/ on sys.path for checkout runs)

from repro.core import run_program
from repro.core.order import certify_order_independence, probe_order_independence
from repro.queries import even_database, even_program, even_via_counting
from repro.queries.relational import build_company_data, company_database, first_employee_is_senior_program
from repro.queries.transitive_closure import graph_database, reachability_program
from repro.structures import colored_graph_to_structure, cycle_pair, wl1_indistinguishable


def even_three_ways() -> None:
    print("=== EVEN three ways (Fact 7.5 / Proposition 7.6) ===")
    print(f"{'n':>3} {'BASRL toggle':>13} {'proper hom count':>17} {'baseline':>9}")
    for size in range(3, 9):
        srl = run_program(even_program(), even_database(size))
        hom = even_via_counting(range(size))
        base = size % 2 == 0
        print(f"{size:>3} {str(srl):>13} {str(hom):>17} {str(base):>9}")
    report = probe_order_independence(even_program(), even_database(7), trials=20)
    print("EVEN is empirically order-independent over 20 random orders:",
          report.independent)


def purple_first() -> None:
    print("\n=== the order-dependent query Purple(First(S)) ===")
    data = build_company_data(num_employees=10, seed=3)
    database = company_database(data)
    program = first_employee_is_senior_program()
    certificate = certify_order_independence(program)
    report = probe_order_independence(program, database, trials=40)
    print("structural certificate:", certificate.status)
    print("reasons:", "; ".join(certificate.reasons))
    print("empirical verdict: independent =", report.independent)
    if not report.independent:
        print("witnessing permutation of the domain order:",
              report.witness_permutation[:10], "...")
        print("answer under the natural order:", report.baseline,
              "| answer under the witness order:", report.witness_value)


def theorem_7_7_shape() -> None:
    print("\n=== Theorem 7.7's shape: counting logic vs ordered SRL ===")
    pair = cycle_pair(5)
    print(pair.description)
    print("1-WL (2-variable counting logic) distinguishes them:",
          not wl1_indistinguishable(pair.untwisted, pair.twisted))
    single = colored_graph_to_structure(pair.untwisted)
    double = colored_graph_to_structure(pair.twisted)
    one = run_program(reachability_program(), graph_database(single))
    two = run_program(reachability_program(), graph_database(double))
    print("SRL reachability 0 ->", single.size - 1, "on the single cycle:", one)
    print("SRL reachability 0 ->", double.size - 1, "on the two cycles:  ", two)
    print("An order-independent polynomial-time SRL query separates what the")
    print("bounded-variable counting logic cannot.")


if __name__ == "__main__":
    even_three_ways()
    purple_first()
    theorem_7_7_shape()
