#!/usr/bin/env python3
"""A relational workload: the database reading of the paper.

A synthetic company database (employees, departments, seniority levels) is
queried with the Fact 2.4 relational operators — selection, projection,
join, universal quantification — all written as SRL programs, and the
Section 7 order-independence question is asked of each query.

Run with:  python examples/company_database.py
"""

import _bootstrap  # noqa: F401  (puts src/ on sys.path for checkout runs)

from repro.core import run_program
from repro.core.order import certify_order_independence, probe_order_independence
from repro.core.values import value_to_python
from repro.queries import (
    build_company_data,
    colleague_pairs_program,
    company_database,
    departments_fully_senior_program,
    employees_in_department_program,
    first_employee_is_senior_program,
)


def main() -> None:
    data = build_company_data(num_employees=14, num_departments=4, seed=7)
    database = company_database(data)

    print("=== employees per department (selection + projection) ===")
    for department in data.departments:
        result = run_program(employees_in_department_program(department), database)
        print(f"department {department}: {sorted(value_to_python(result))}")

    print("\n=== departments whose staff are all senior (forall) ===")
    result = run_program(departments_fully_senior_program(), database)
    print("fully senior departments:", sorted(value_to_python(result)))

    print("\n=== colleague pairs (join) ===")
    pairs = run_program(colleague_pairs_program(), database)
    print(f"{len(pairs)} ordered pairs of colleagues")

    print("\n=== order (in)dependence of the queries (Section 7) ===")
    queries = {
        "employees in department 0": employees_in_department_program(0),
        "fully senior departments": departments_fully_senior_program(),
        "colleague pairs": colleague_pairs_program(),
        "the FIRST employee is senior": first_employee_is_senior_program(),
    }
    print(f"{'query':<32} {'certificate':>12} {'empirical':>10}")
    for name, program in queries.items():
        certificate = certify_order_independence(program)
        probe = probe_order_independence(program, database, trials=25)
        verdict = "independent" if probe.independent else "DEPENDENT"
        print(f"{name:<32} {certificate.status:>12} {verdict:>10}")
    print("\nThe last query is the paper's Purple(First(S)) pattern: its answer")
    print("depends on which employee the implementation order happens to list")
    print("first, and both the structural certifier and the empirical probe say so.")


if __name__ == "__main__":
    main()
