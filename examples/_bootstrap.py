"""Make ``repro`` importable when an example is run straight from a
checkout (``python examples/<name>.py``) without installing the package.

Python puts the script's own directory on ``sys.path``, so every example
just does ``import _bootstrap`` as its first import.
"""

import pathlib
import sys

_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
