#!/usr/bin/env python3
"""Quickstart: write, type-check, audit and run SRL programs.

This walks through the core workflow of the library:

1. parse an SRL program from the s-expression surface syntax;
2. run it against a database (a structure encoded as sets of atoms/tuples);
3. type-check it and read its complexity off its syntax (Section 6);
4. check which language restriction it falls into (SRL / BASRL / ...);
5. ask whether its answer depends on the implementation order (Section 7).

Run with:  python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  (puts src/ on sys.path for checkout runs)

from repro.core import (
    Atom,
    Database,
    Session,
    analyze,
    certify_order_independence,
    make_set,
    make_tuple,
    parse_program,
    probe_order_independence,
    run_program,
    with_standard_library,
)
from repro.core.restrictions import BASRL, SRL, strictest_restriction
from repro.core.typecheck import check_program, database_types


def main() -> None:
    # ------------------------------------------------------------------ 1.
    # An SRL program: is there an edge out of every node?  The standard
    # library (Fact 2.4) provides `member`, `and`, `or`, ...; `forall` /
    # `forsome` style quantification is just a set-reduce with a boolean
    # accumulator.
    program = parse_program("""
    ; every node has a successor
    (define (has-successor x)
      (set-reduce EDGES (lambda (e xx) (= (sel 1 e) xx))
                        (lambda (a r) (or a r))
                        false x))

    (set-reduce NODES (lambda (x e) (has-successor x))
                      (lambda (a r) (and a r))
                      true emptyset)
    """)
    with_standard_library(program)

    # ------------------------------------------------------------------ 2.
    # The input database: a little directed graph.
    edges = [(0, 1), (1, 2), (2, 0), (3, 1)]
    database = Database({
        "NODES": make_set(*(Atom(i) for i in range(4))),
        "EDGES": make_set(*(make_tuple(Atom(u), Atom(v)) for u, v in edges)),
    })
    print("every node has a successor:", run_program(program, database))

    # ------------------------------------------------------------------ 3.
    # Type checking and the Section 6 syntactic audit.
    types = database_types(database)
    report = check_program(program, input_types=types)
    print("result type:", report.result_type)

    analysis = analyze(program, input_types=types)
    print("\n--- complexity read off the syntax (Section 6) ---")
    print(analysis.summary())

    # ------------------------------------------------------------------ 4.
    # Which restriction does the program satisfy?
    print("\nin SRL?  ", SRL.is_member(program, types))
    print("in BASRL?", BASRL.is_member(program, types))
    print("strictest restriction:", strictest_restriction(program, types).name)

    # ------------------------------------------------------------------ 5.
    # Order-independence (Section 7): structurally certified and empirically
    # probed under random permutations of the implementation order.
    certificate = certify_order_independence(program)
    probe = probe_order_independence(program, database, trials=10)
    print("\nstructural certificate:", certificate.status)
    print("empirical probe (10 random orders): independent =", probe.independent)

    # ------------------------------------------------------------------ 6.
    # Instrumented evaluation through the engine facade: a Session compiles
    # the program once (AST -> register IR -> Python closures) and can also
    # run it on the tree-walking interpreter for per-node step counts.
    session = Session(program)  # backend="compiled" is the default
    session.run(database)
    print("\ncompiled-engine statistics:", session.stats.as_dict())
    interp = Session(program, backend="interp")
    interp.run(database)
    print("interpreter statistics:   ", interp.stats.as_dict())


if __name__ == "__main__":
    main()
