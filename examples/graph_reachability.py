#!/usr/bin/env python3
"""Alternating and plain reachability: the Theorem 3.10 / Section 4 workloads.

Three ways of answering the same questions, which the paper proves
equivalent in expressive power, are run side by side:

* the SRL programs (Lemma 3.6's AGAP and the Section 4 TC/DTC closures),
* the logic evaluator (FO + LFP / TC / DTC formulas),
* direct Python baselines.

Run with:  python examples/graph_reachability.py
"""

import _bootstrap  # noqa: F401  (puts src/ on sys.path for checkout runs)

from repro.core import run_program
from repro.logic import evaluate
from repro.logic.queries import agap_formula, reachability_dtc, reachability_tc
from repro.queries import (
    agap_baseline,
    agap_database,
    agap_program,
    deterministic_reachability_program,
    deterministic_reachable_baseline,
    graph_database,
    reachability_program,
    reachable_baseline,
)
from repro.structures import functional_graph, random_alternating_graph, random_graph


def reachability_demo() -> None:
    print("=== plain reachability (GAP): SRL closure vs FO+TC vs baseline ===")
    print(f"{'n':>4} {'seed':>4} {'SRL':>6} {'FO+TC':>6} {'baseline':>9}")
    for size in (6, 8, 10):
        for seed in (0, 1):
            graph = random_graph(size, seed=seed)
            srl = run_program(reachability_program(), graph_database(graph))
            logic = evaluate(reachability_tc(), graph)
            base = reachable_baseline(graph)
            print(f"{size:>4} {seed:>4} {str(srl):>6} {str(logic):>6} {str(base):>9}")


def deterministic_demo() -> None:
    print("\n=== deterministic reachability (DTC, the L workload) ===")
    print(f"{'n':>4} {'seed':>4} {'SRL':>6} {'FO+DTC':>7} {'baseline':>9}")
    for size in (6, 8, 10):
        for seed in (0, 1):
            graph = functional_graph(size, seed=seed)
            srl = run_program(deterministic_reachability_program(), graph_database(graph))
            logic = evaluate(reachability_dtc(), graph)
            base = deterministic_reachable_baseline(graph)
            print(f"{size:>4} {seed:>4} {str(srl):>6} {str(logic):>7} {str(base):>9}")


def agap_demo() -> None:
    print("\n=== alternating reachability (AGAP, the P-complete workload) ===")
    print(f"{'n':>4} {'seed':>4} {'SRL':>6} {'FO+LFP':>7} {'baseline':>9}")
    for size in (5, 6, 7):
        for seed in (0, 1):
            graph = random_alternating_graph(size, seed=seed)
            srl = run_program(agap_program(), agap_database(graph))
            logic = evaluate(agap_formula(), graph)
            base = agap_baseline(graph)
            print(f"{size:>4} {seed:>4} {str(srl):>6} {str(logic):>7} {str(base):>9}")


if __name__ == "__main__":
    reachability_demo()
    deterministic_demo()
    agap_demo()
