#!/usr/bin/env python3
"""Reading a program's complexity off its syntax (Section 6).

Every program in the query library is put through the syntactic audit:
depth, width, set-height, the Proposition 6.1 time bound, the strictest
language restriction it satisfies, and the machine class that restriction
captures.

Run with:  python examples/complexity_audit.py
"""

import _bootstrap  # noqa: F401  (puts src/ on sys.path for checkout runs)

from repro.complexity import classify_program
from repro.core.typecheck import database_types
from repro.machines import compile_machine, parity_machine
from repro.queries import (
    agap_database,
    agap_program,
    even_database,
    even_program,
    im_database,
    im_program,
    powerset_database,
    powerset_program,
)
from repro.queries.powerset import doubling_list_program
from repro.structures import random_alternating_graph, random_permutations
from repro.core import Atom


def main() -> None:
    graph = random_alternating_graph(5, seed=0)
    perms = random_permutations(3, 4, seed=0)
    im_db = im_database(perms, 0)
    im_db.bind("TARGET", Atom(0))
    compiled = compile_machine(parity_machine())

    workloads = [
        ("EVEN (parity toggle)", even_program(), even_database(6)),
        ("IM_Sn (Lemma 4.10)", im_program(), im_db),
        ("AGAP (Lemma 3.6)", agap_program(), agap_database(graph)),
        ("TM simulation (Prop 6.2)", compiled.program, compiled.database_for("0101")),
        ("powerset (Example 3.12)", powerset_program(), powerset_database(3)),
        ("doubling list (LRL)", doubling_list_program(), powerset_database(3)),
    ]

    header = f"{'program':<28} {'d':>2} {'a':>2} {'h':>2} {'restriction':<16} {'class':<10} {'Prop 6.1 bound'}"
    print(header)
    print("-" * len(header))
    for name, program, database in workloads:
        verdict = classify_program(program, database_types(database))
        analysis = verdict.analysis
        machine = verdict.machine_class.name if verdict.machine_class else (
            verdict.hierarchy.time_class if verdict.hierarchy else "?"
        )
        print(
            f"{name:<28} {analysis.depth:>2} {analysis.width:>2} {analysis.set_height:>2} "
            f"{verdict.restriction.name:<16} {machine:<10} {analysis.time_bound}"
        )

    print("\nThe table is the Section 6 story: flat accumulators put a program in")
    print("L, set-height 1 keeps it in P, set-height 2 (powerset) escapes to")
    print("exponential time, and lists or invented values escape to PrimRec.")


if __name__ == "__main__":
    main()
